"""Docstring-coverage check for the public API of ``core/`` and ``serving/``.

Mirrors ruff's pydocstyle rules D100-D103 (undocumented public module /
class / method / function) over the enforced packages, so the docs CI job
can fail on regressions even where ruff is unavailable, and local runs need
no extra dependency.  "Public" follows pydocstyle: names without a leading
underscore, methods of public classes, skipping magic methods (D105 and
D107 are deliberately out of scope — ``__init__`` semantics live on the
class docstring in this codebase).

Run from the repository root::

    python tools/check_docstrings.py            # check, exit 1 on gaps
    python tools/check_docstrings.py --stats    # coverage summary only
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

ENFORCED = ("src/repro/core", "src/repro/serving")


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _missing_in_file(path: Path) -> tuple[list[str], int, int]:
    """``(violations, documented, total)`` for one module's public API."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    violations: list[str] = []
    documented = 0
    total = 1  # the module itself
    if ast.get_docstring(tree) is None:
        violations.append(f"{path}:1 undocumented public module")
    else:
        documented += 1

    def visit(node: ast.AST, prefix: str, inside_class: bool) -> None:
        nonlocal documented, total
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = child.name
                if not _is_public(name):
                    continue
                kind = "method" if inside_class else "function"
                total += 1
                if ast.get_docstring(child) is None:
                    violations.append(
                        f"{path}:{child.lineno} undocumented public "
                        f"{kind} {prefix}{name}"
                    )
                else:
                    documented += 1
            elif isinstance(child, ast.ClassDef):
                if not _is_public(child.name):
                    continue
                total += 1
                if ast.get_docstring(child) is None:
                    violations.append(
                        f"{path}:{child.lineno} undocumented public class "
                        f"{prefix}{child.name}"
                    )
                else:
                    documented += 1
                visit(child, f"{prefix}{child.name}.", inside_class=True)

    visit(tree, "", inside_class=False)
    return violations, documented, total


def main(argv: list[str] | None = None) -> int:
    """Check every enforced package; print gaps and the coverage ratio."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--stats", action="store_true", help="print the summary only, never fail"
    )
    args = parser.parse_args(argv)

    root = Path(__file__).resolve().parent.parent
    all_violations: list[str] = []
    documented = total = 0
    for package in ENFORCED:
        for path in sorted((root / package).rglob("*.py")):
            violations, file_documented, file_total = _missing_in_file(path)
            all_violations.extend(violations)
            documented += file_documented
            total += file_total

    coverage = 100.0 * documented / total if total else 100.0
    print(
        f"docstring coverage over {', '.join(ENFORCED)}: "
        f"{documented}/{total} public objects ({coverage:.1f}%)"
    )
    if args.stats:
        return 0
    for violation in all_violations:
        print(violation)
    if all_violations:
        print(f"FAIL: {len(all_violations)} undocumented public objects")
        return 1
    print("docstring coverage check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
