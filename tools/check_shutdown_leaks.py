"""Shutdown-leak check for the multi-process serving tier.

Drives a full serving lifecycle — publish a synopsis into shared memory,
serve queries through an :class:`~repro.serving.server.MPServingPool` and
its HTTP front end, flip the epoch once, tear everything down — and then
asserts that teardown actually finished:

* no live worker processes (``multiprocessing.active_children()`` empty);
* no leaked shared-memory segments (nothing matching ``pass-*`` under
  ``/dev/shm`` that this process created);
* no background threads beyond the interpreter's bookkeeping ones (the
  auditor / HTTP serving threads must have joined).

Every resource the tier allocates is owned by exactly one ``close()``;
this script is the CI tripwire for a teardown path that quietly stops
releasing one of them.  Run from the repository root::

    python tools/check_shutdown_leaks.py
"""

from __future__ import annotations

import glob
import multiprocessing
import sys
import threading
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core.builder import build_pass
from repro.core.config import PASSConfig
from repro.data.table import Table
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery
from repro.serving import MPHTTPServer, MPServingPool, SynopsisPublisher
from repro.serving.server import query_to_payload

SHM_GLOB = "/dev/shm/pass-*"


def _build(seed: int):
    rng = np.random.default_rng(seed)
    table = Table(
        {
            "key": rng.uniform(0.0, 100.0, size=5000),
            "value": np.abs(rng.lognormal(1.0, 0.6, size=5000)),
        },
        name="leakcheck",
    )
    return build_pass(
        table,
        "value",
        ["key"],
        PASSConfig(n_partitions=16, sample_rate=0.02, opt_sample_size=400, seed=0),
    )


def _queries(n: int) -> list[AggregateQuery]:
    rng = np.random.default_rng(3)
    out = []
    for _ in range(n):
        low, high = sorted(rng.uniform(0.0, 100.0, size=2))
        out.append(
            AggregateQuery(
                ("SUM", "COUNT", "AVG")[int(rng.integers(3))],
                "value",
                RectPredicate.from_bounds(key=(float(low), float(high))),
            )
        )
    return out


def _post(url: str, payload: dict) -> None:
    import json

    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        response.read()


def main() -> int:
    """Run the lifecycle, then fail on any leaked process/segment/thread."""
    shm_before = set(glob.glob(SHM_GLOB))
    threads_before = {thread.name for thread in threading.enumerate()}

    with SynopsisPublisher() as publisher:
        publisher.publish("leak_main", _build(seed=1), table_name="leakcheck")
        with MPServingPool(publisher.register_name, n_workers=2) as pool:
            pool.execute_batch(_queries(64))
            server = MPHTTPServer(pool, max_pending=8)
            base = server.serve_in_thread()
            try:
                for query in _queries(8):
                    _post(f"{base}/query", query_to_payload(query))
                # One epoch flip mid-serve: re-attach must not strand the
                # previous generation's segment.
                publisher.publish("leak_main", _build(seed=2), table_name="leakcheck")
                pool.execute_batch(_queries(32))
            finally:
                server.close()

    failures = []
    children = multiprocessing.active_children()
    if children:
        failures.append(f"live worker processes after close: {children}")
    shm_leaked = set(glob.glob(SHM_GLOB)) - shm_before
    if shm_leaked:
        failures.append(f"leaked shared-memory segments: {sorted(shm_leaked)}")
    threads_leaked = [
        thread.name
        for thread in threading.enumerate()
        if thread.name not in threads_before
        and thread.name not in ("QueueFeederThread",)
    ]
    if threads_leaked:
        failures.append(f"background threads still running: {threads_leaked}")

    if failures:
        for failure in failures:
            print(f"LEAK: {failure}")
        return 1
    print(
        "shutdown-leak check passed: no worker processes, no pass-* shared-"
        "memory segments, no stray threads after teardown"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
