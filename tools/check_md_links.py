"""Fail on broken intra-repository links in the repo's Markdown files.

Scans every tracked ``*.md`` file for inline links and images
(``[text](target)``), resolves relative targets against the linking file,
and reports targets that do not exist — including ``#fragment`` anchors
against the target file's headings (GitHub's slug rules: lowercase,
punctuation stripped, spaces to dashes).  External links (``http(s)://``,
``mailto:``) are out of scope: CI must not depend on network availability.

Run from the repository root::

    python tools/check_md_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading: strip punctuation, dash spaces."""
    text = re.sub(r"[`*_~\[\]()]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    """All anchor slugs a Markdown file exposes (fences stripped first)."""
    text = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    for match in HEADING_RE.finditer(text):
        slug = github_slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_file(path: Path, root: Path) -> list[str]:
    """Broken-link messages for one Markdown file."""
    text = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    errors: list[str] = []
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL_PREFIXES) or target.startswith("<"):
            continue
        target, _, fragment = target.partition("#")
        if not target:  # same-file anchor
            resolved = path
        else:
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                errors.append(f"{path.relative_to(root)}: broken link -> {target}")
                continue
        if fragment and resolved.suffix == ".md":
            if fragment not in heading_slugs(resolved):
                errors.append(
                    f"{path.relative_to(root)}: broken anchor -> "
                    f"{target or path.name}#{fragment}"
                )
    return errors


def main() -> int:
    """Check every Markdown file outside hidden/vendored directories."""
    root = Path(__file__).resolve().parent.parent
    errors: list[str] = []
    checked = 0
    for path in sorted(root.rglob("*.md")):
        if any(part.startswith(".") for part in path.relative_to(root).parts):
            continue
        checked += 1
        errors.extend(check_file(path, root))
    print(f"checked {checked} Markdown files")
    for error in errors:
        print(error)
    if errors:
        print(f"FAIL: {len(errors)} broken intra-repo links")
        return 1
    print("markdown link check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
