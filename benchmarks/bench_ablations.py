"""Ablation benchmarks for the design choices called out in DESIGN.md.

These have no direct counterpart in the paper's figures; they isolate the
effect of individual design decisions inside PASS:

* the leaf partitioner (ADP vs equal-depth vs AQP++-style hill climbing);
* the 0-variance MCF rule for AVG queries (Section 3.4);
* the per-leaf sample allocation policy under a bounded storage budget;
* the optimization sample size ``m`` driving the ADP partitioner.
"""

from __future__ import annotations

from conftest import run_once

from repro.evaluation.experiments import (
    ablation_opt_sample_size,
    ablation_partitioners,
    ablation_sample_allocation,
    ablation_zero_variance_rule,
)


def test_ablation_partitioners(benchmark, scale):
    run_once(
        benchmark,
        ablation_partitioners,
        n_rows=scale["n_rows"],
        n_queries=scale["n_queries"],
        n_partitions=scale["n_partitions"],
        sample_rate=scale["sample_rate"],
    )


def test_ablation_zero_variance_rule(benchmark, scale):
    run_once(
        benchmark,
        ablation_zero_variance_rule,
        n_rows=scale["n_rows"],
        n_queries=scale["n_queries"],
        n_partitions=scale["n_partitions"],
        sample_rate=scale["sample_rate"],
    )


def test_ablation_sample_allocation(benchmark, scale):
    run_once(
        benchmark,
        ablation_sample_allocation,
        n_rows=scale["n_rows"],
        n_queries=scale["n_queries"],
        n_partitions=scale["n_partitions"],
        sample_rate=scale["sample_rate"],
    )


def test_ablation_opt_sample_size(benchmark, scale):
    run_once(
        benchmark,
        ablation_opt_sample_size,
        n_rows=scale["n_rows"],
        n_queries=scale["n_queries"],
        n_partitions=scale["n_partitions"],
        sample_rate=scale["sample_rate"],
    )
