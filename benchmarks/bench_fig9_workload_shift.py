"""Benchmark regenerating Figure 9: workload shift with 2-D aggregates.

Paper reference: Figure 9 — the synopsis built for the 2-D query template
answering the 1D-5D templates; KD-PASS keeps benefiting from data skipping on
the shared attributes while KD-US degrades.
"""

from __future__ import annotations

from conftest import run_once

from repro.evaluation.experiments import figure9_workload_shift


def test_figure9_workload_shift(benchmark, scale):
    run_once(
        benchmark,
        figure9_workload_shift,
        n_rows=scale["n_rows"],
        n_leaves=scale["kd_leaves"],
        n_queries=scale["n_queries_multidim"],
        sample_rate=scale["sample_rate"],
    )
