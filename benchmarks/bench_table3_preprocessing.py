"""Benchmark regenerating Table 3: preprocessing cost vs number of partitions.

Paper reference: Table 3 — PASS construction cost, mean / max query latency,
and median relative error on the NYC dataset for k = 4 ... 128 with the ADP
partitioner.
"""

from __future__ import annotations

from conftest import run_once

from repro.evaluation.experiments import table3_preprocessing_cost


def test_table3_preprocessing_cost(benchmark, scale):
    run_once(
        benchmark,
        table3_preprocessing_cost,
        partition_counts=scale["partition_counts"],
        n_rows=scale["n_rows"],
        n_queries=scale["n_queries"],
        sample_rate=scale["sample_rate"],
    )
