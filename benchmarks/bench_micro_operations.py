"""Micro-benchmarks of the core operations (not tied to a paper figure).

These measure the hot paths downstream users care about when sizing a
deployment: per-query latency of each synopsis, MCF lookups, ADP optimization
time, and dynamic-update throughput.  pytest-benchmark's statistics
(mean / stddev / ops) are meaningful here, so the operations run for many
rounds unlike the experiment reproductions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builder import build_pass
from repro.core.config import PASSConfig
from repro.core.updates import DynamicPASS
from repro.data.loaders import load_dataset
from repro.data.loaders import DatasetSpec
from repro.partitioning.dp import approximate_dp_partition
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery
from repro.sampling.stratified import StratifiedSampleSynopsis, equal_depth_boxes
from repro.sampling.uniform import UniformSampleSynopsis

N_ROWS = 60_000


@pytest.fixture(scope="module")
def intel_spec() -> DatasetSpec:
    spec = load_dataset("intel", N_ROWS)
    return DatasetSpec(
        table=spec.table, value_column=spec.value_column, predicate_columns=("time",)
    )


@pytest.fixture(scope="module")
def sum_query(intel_spec) -> AggregateQuery:
    low, high = np.quantile(intel_spec.table.column("time"), [0.2, 0.6])
    return AggregateQuery.sum(
        intel_spec.value_column,
        RectPredicate.from_bounds(time=(float(low), float(high))),
    )


@pytest.fixture(scope="module")
def pass_synopsis(intel_spec):
    return build_pass(
        intel_spec.table,
        intel_spec.value_column,
        intel_spec.predicate_columns,
        PASSConfig(n_partitions=64, sample_rate=0.005, opt_sample_size=1000, seed=0),
    )


def test_pass_query_latency(benchmark, pass_synopsis, sum_query):
    benchmark(pass_synopsis.query, sum_query)


def test_uniform_query_latency(benchmark, intel_spec, sum_query):
    synopsis = UniformSampleSynopsis(
        intel_spec.table,
        intel_spec.value_column,
        intel_spec.predicate_columns,
        sample_rate=0.005,
        rng=0,
    )
    benchmark(synopsis.query, sum_query)


def test_stratified_query_latency(benchmark, intel_spec, sum_query):
    synopsis = StratifiedSampleSynopsis(
        intel_spec.table,
        intel_spec.value_column,
        intel_spec.predicate_columns,
        equal_depth_boxes(intel_spec.table, "time", 64),
        sample_rate=0.005,
        rng=0,
    )
    benchmark(synopsis.query, sum_query)


def test_mcf_lookup_latency(benchmark, pass_synopsis, sum_query):
    benchmark(pass_synopsis.lookup, sum_query)


def test_adp_partitioning_time(benchmark, intel_spec):
    benchmark.pedantic(
        lambda: approximate_dp_partition(
            intel_spec.table,
            intel_spec.value_column,
            "time",
            64,
            opt_sample_size=1000,
            rng=0,
        ),
        rounds=3,
        iterations=1,
    )


def test_pass_build_time(benchmark, intel_spec):
    benchmark.pedantic(
        lambda: build_pass(
            intel_spec.table,
            intel_spec.value_column,
            intel_spec.predicate_columns,
            PASSConfig(
                n_partitions=64, sample_rate=0.005, opt_sample_size=1000, seed=0
            ),
        ),
        rounds=3,
        iterations=1,
    )


def test_dynamic_insert_throughput(benchmark, intel_spec):
    dynamic = DynamicPASS(
        intel_spec.table,
        intel_spec.value_column,
        intel_spec.predicate_columns,
        config=PASSConfig(
            n_partitions=32, sample_rate=0.005, partitioner="equal", seed=0
        ),
        rng=0,
    )
    rng = np.random.default_rng(3)

    def insert_one():
        dynamic.insert({"time": float(rng.uniform(0, 3)), "light": 123.0})

    benchmark(insert_one)
