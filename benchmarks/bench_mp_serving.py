"""Multi-process serving tier: scaling over one shared-memory synopsis.

The multi-process tier exists for CPU-bound query traffic that one
interpreter cannot serve past roughly a single core: the publisher lays the
flat synopsis out in shared memory once, and a spawn-based worker pool
answers queries over zero-copy views.  This benchmark measures what that
buys and verifies what it must not cost:

* **Worker scaling** — the same large query batch is timed through an
  :class:`~repro.serving.server.MPServingPool` with 1 worker and with 4
  workers (fresh pools each round; pool spin-up and segment attach happen
  in an untimed warm-up batch).  Rounds are paired and the median
  per-round ratio reported, same estimator as the async-tier benchmark:
  machine drift moves both sides of a round together.  ``--check``
  asserts the acceptance floor — **>= 3x queries/s at 4 workers vs 1** —
  when the machine has at least 4 cores, and prints an explicit skip note
  otherwise (a 1-core container cannot exhibit process-level scaling).
* **Bit-identity** — a sample of the workload is answered both by the
  pool and by an in-process :class:`~repro.serving.engine.ServingEngine`
  over the same synopsis; every :class:`~repro.result.AQPResult` must be
  field-identical (NaN-aware).  This is asserted on every run, check mode
  or not: shared-memory serving is only correct if it is indistinguishable
  from in-process serving.

Standalone modes for CI::

    python benchmarks/bench_mp_serving.py --tiny --check --json OUT
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core.builder import build_pass
from repro.core.config import PASSConfig
from repro.data.loaders import load_dataset
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery
from repro.serving import (
    MPServingPool,
    ServingEngine,
    SynopsisCatalog,
    SynopsisPublisher,
)

N_ROWS = 200_000
N_QUERIES = 4096
AGGS = ("SUM", "COUNT", "AVG", "MIN", "MAX")
SCALE_WORKERS = 4


def _build(n_rows: int, n_partitions: int):
    spec = load_dataset("intel", n_rows)
    synopsis = build_pass(
        spec.table,
        spec.value_column,
        [spec.default_predicate_column],
        PASSConfig(
            n_partitions=n_partitions, sample_rate=0.005, opt_sample_size=1000, seed=0
        ),
    )
    return spec, synopsis


def query_workload(spec, n_queries: int, seed: int = 0) -> list[AggregateQuery]:
    """Random range-aggregate traffic over the predicate column's domain."""
    rng = np.random.default_rng(seed)
    times = spec.table.column(spec.default_predicate_column)
    low, high = float(times.min()), float(times.max())
    queries = []
    for _ in range(n_queries):
        a, b = sorted(rng.uniform(low, high, size=2))
        predicate = RectPredicate.from_bounds(time=(float(a), float(b)))
        queries.append(
            AggregateQuery(
                AGGS[int(rng.integers(len(AGGS)))], spec.value_column, predicate
            )
        )
    return queries


def _pool_seconds(register_name: str, queries, n_workers: int) -> float:
    """One timed batch through a fresh pool; spawn + attach stay untimed.

    The warm-up batch forces worker start-up, the first epoch-register
    read, and the shared-segment attach outside the measured region, so
    the timed number is steady-state serving throughput.
    """
    with MPServingPool(register_name, n_workers=n_workers) as pool:
        pool.execute_batch(queries[: 16 * n_workers])
        start = time.perf_counter()
        pool.execute_batch(queries)
        return time.perf_counter() - start


def paired_scaling(register_name: str, queries, rounds: int = 3):
    """Median per-round ratio of 1-worker time to 4-worker time."""
    ratios = []
    best_one = best_four = float("inf")
    for _ in range(rounds):
        one = _pool_seconds(register_name, queries, n_workers=1)
        four = _pool_seconds(register_name, queries, n_workers=SCALE_WORKERS)
        ratios.append(one / four)
        best_one = min(best_one, one)
        best_four = min(best_four, four)
    n_queries = len(queries)
    return float(np.median(ratios)), n_queries / best_one, n_queries / best_four


def identity_mismatches(register_name: str, spec, synopsis, queries) -> int:
    """Count pool answers that differ from the in-process engine's."""
    catalog = SynopsisCatalog()
    catalog.register("intel_light", synopsis, table_name=spec.table.name)
    catalog.register_table(spec.table)
    engine = ServingEngine(catalog, cache_size=0)
    with MPServingPool(register_name, n_workers=2) as pool:
        pooled = pool.execute_batch(queries)
    mismatches = 0
    for query, from_pool in zip(queries, pooled):
        from_engine = engine.execute(query)
        for field in dataclasses.fields(from_pool):
            a = getattr(from_pool, field.name)
            b = getattr(from_engine, field.name)
            same_nan = (
                isinstance(a, float)
                and isinstance(b, float)
                and math.isnan(a)
                and math.isnan(b)
            )
            if a != b and not same_nan:
                mismatches += 1
                break
    return mismatches


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=N_ROWS, help="table size")
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="CI smoke configuration: a few thousand rows, seconds of runtime",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="assert bit-identity always, and the >=3x 4-worker scaling floor "
        "when the machine has >= 4 cores (exit 1 on failure)",
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="OUT",
        help="write perf-gate metrics (see benchmarks/perf_gate.py) to OUT",
    )
    args = parser.parse_args(argv)
    n_rows = 20_000 if args.tiny else args.rows
    n_partitions = 32 if args.tiny else 64
    n_queries = 2048 if args.tiny else N_QUERIES

    print(f"building synopsis over {n_rows:,} rows ...")
    spec, synopsis = _build(n_rows, n_partitions)
    queries = query_workload(spec, n_queries)

    with SynopsisPublisher() as publisher:
        epoch = publisher.publish(
            "intel_light", synopsis, table_name=spec.table.name
        )
        print(f"published one shared-memory generation (epoch {epoch})")

        scaling, one_qps, four_qps = paired_scaling(
            publisher.register_name, queries
        )
        print(
            f"1 worker: {one_qps:,.0f} q/s | {SCALE_WORKERS} workers: "
            f"{four_qps:,.0f} q/s | scaling {scaling:.2f}x "
            f"(machine has {os.cpu_count()} cores)"
        )

        sample = queries[: 256 if args.tiny else 512]
        mismatches = identity_mismatches(
            publisher.register_name, spec, synopsis, sample
        )
        print(
            f"bit-identity vs in-process engine: {mismatches} mismatches "
            f"over {len(sample)} queries"
        )

    if args.json:
        metrics = {
            "mp_serving_scaling_4w": {"value": scaling, "direction": "higher"},
            "mp_serving_pool_qps": {"value": four_qps, "direction": "higher"},
        }
        Path(args.json).write_text(json.dumps({"metrics": metrics}, indent=2) + "\n")
        print(f"wrote {args.json}")

    if args.check:
        failed = False
        if mismatches:
            print(
                f"CHECK FAILED: {mismatches} pool results differ from the "
                "in-process engine (shared-memory serving must be bit-identical)"
            )
            failed = True
        cores = os.cpu_count() or 1
        if cores >= SCALE_WORKERS:
            if scaling < 3.0:
                print(
                    f"CHECK FAILED: {SCALE_WORKERS}-worker scaling "
                    f"{scaling:.2f}x < 3.0x (1 worker {one_qps:,.0f} q/s, "
                    f"{SCALE_WORKERS} workers {four_qps:,.0f} q/s)"
                )
                failed = True
            else:
                print(f"scaling check passed: {scaling:.2f}x >= 3.0x")
        else:
            print(
                f"scaling check skipped: machine has {cores} core(s) < "
                f"{SCALE_WORKERS}; process-level scaling cannot manifest "
                "(bit-identity was still asserted)"
            )
        if failed:
            return 1
        print("check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
