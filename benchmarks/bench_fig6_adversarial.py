"""Benchmark regenerating Figure 6: ADP vs EQ partitioning on adversarial data.

Paper reference: Figure 6 — median CI ratio of the approximate-DP (ADP) and
equal-depth (EQ) partitioners on the synthetic adversarial dataset, for
random queries over the whole dataset and for challenging queries confined to
the high-variance tail.
"""

from __future__ import annotations

from conftest import run_once

from repro.evaluation.experiments import figure6_adp_vs_eq_adversarial


def test_figure6_adp_vs_eq_adversarial(benchmark, scale):
    run_once(
        benchmark,
        figure6_adp_vs_eq_adversarial,
        partition_counts=scale["partition_counts"],
        n_rows=scale["n_rows"],
        n_queries=scale["n_queries"],
        sample_rate=scale["sample_rate"],
    )
