"""Benchmark regenerating Figure 5: median CI ratio vs sample rate.

Paper reference: Figure 5 — the confidence-interval ratio counterpart of
Figure 4 (same workload, same sweeps).
"""

from __future__ import annotations

from conftest import run_once

from repro.evaluation.experiments import figure5_ci_vs_sample_rate


def test_figure5_ci_vs_sample_rate(benchmark, scale):
    run_once(
        benchmark,
        figure5_ci_vs_sample_rate,
        sample_rates=scale["sample_rates"],
        n_rows=scale["n_rows_sweep"],
        n_queries=scale["n_queries"],
        n_partitions=scale["n_partitions"],
    )
