"""Grouped-execution benchmarks: shared-mask group-by vs naive per-group loops.

A G-group, A-aggregate query compiles into G x A canonical queries.  The
naive executor answers them one by one — G x A index lookups and G x A mask
passes over the touched leaf samples.  The grouped executor
(:func:`repro.core.batching.grouped_query`) shares one frontier and one
vectorized mask pass per group cell, so its cost scales with G rather than
G x A, and empty cells are pruned from frontier statistics before any mask
work.  This benchmark measures that gap on a single synopsis and the same
shape through the sharded scatter-gather path.

Run standalone::

    python benchmarks/bench_groupby.py            # full: 1M rows
    python benchmarks/bench_groupby.py --tiny     # CI smoke: seconds
    python benchmarks/bench_groupby.py --check    # assert >= 3x at 64 groups
    python benchmarks/bench_groupby.py --json OUT # write perf-gate metrics

(Like ``bench_distributed.py`` this is a plain script, not a
pytest-benchmark suite, so CI can smoke it directly.)
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core.batching import grouped_query
from repro.core.builder import build_pass
from repro.core.config import PASSConfig
from repro.data.table import Table
from repro.distributed.parallel import build_sharded_pass
from repro.query.groupby import AggregateSpec, GroupByQuery, GroupingColumn

KEY_HIGH = 1000.0
AGGREGATES = ("SUM", "COUNT", "AVG")


def generate_table(n_rows: int, seed: int = 0) -> Table:
    rng = np.random.default_rng(seed)
    key = rng.uniform(0.0, KEY_HIGH, size=n_rows)
    value = np.abs(rng.normal(50.0, 15.0, size=n_rows) + 0.05 * key)
    return Table({"key": key, "value": value}, name="bench_groupby")


def make_groupby(n_groups: int) -> GroupByQuery:
    edges = np.linspace(0.0, KEY_HIGH, n_groups + 1)
    return GroupByQuery(
        groupings=(GroupingColumn.bins("key", [float(e) for e in edges]),),
        aggregates=tuple(AggregateSpec(agg, "value") for agg in AGGREGATES),
    )


def make_quantile_groupby(n_groups: int) -> GroupByQuery:
    """A percentile-dashboard shape: p50 / p95 / p99 per group."""
    edges = np.linspace(0.0, KEY_HIGH, n_groups + 1)
    return GroupByQuery(
        groupings=(GroupingColumn.bins("key", [float(e) for e in edges]),),
        aggregates=tuple(
            AggregateSpec("QUANTILE", "value", q) for q in (0.5, 0.95, 0.99)
        ),
    )


def _timed(run) -> float:
    start = time.perf_counter()
    run()
    return time.perf_counter() - start


def bench_single_synopsis(
    synopsis, group_counts: list[int], repeats: int
) -> list[dict]:
    """Naive per-group loop vs shared-mask grouped execution, per group count."""
    rows = []
    print(f"\n== Grouped execution: {len(AGGREGATES)} aggregates per group ==")
    print(f"  {'groups':>6} {'naive ms':>10} {'grouped ms':>11} {'speedup':>8}")
    for n_groups in group_counts:
        plan = make_groupby(n_groups).compile()
        flat = plan.queries()

        # Best-of-repeats: the perf gate tracks these timings, and minima
        # are far less noise-sensitive than means on shared CI runners.
        naive_ms = 1e3 * min(
            _timed(lambda: [synopsis.query(q) for q in flat]) for _ in range(repeats)
        )
        grouped = grouped_query(synopsis, plan)
        assert len(grouped) == n_groups
        grouped_ms = 1e3 * min(
            _timed(lambda: grouped_query(synopsis, plan)) for _ in range(repeats)
        )
        speedup = naive_ms / grouped_ms
        rows.append(
            {
                "groups": n_groups,
                "naive_ms": naive_ms,
                "grouped_ms": grouped_ms,
                "speedup": speedup,
            }
        )
        print(f"  {n_groups:>6} {naive_ms:>10.2f} {grouped_ms:>11.2f} {speedup:>7.1f}x")
    return rows


def bench_quantile_groupby(synopsis, n_groups: int, repeats: int) -> dict:
    """Sketch-aggregate group-by latency: p50/p95/p99 per group, one frontier
    per cell, answered from the mergeable per-leaf quantile sketches."""
    plan = make_quantile_groupby(n_groups).compile()
    grouped = grouped_query(synopsis, plan)
    assert len(grouped) == n_groups
    elapsed_ms = 1e3 * min(
        _timed(lambda: grouped_query(synopsis, plan)) for _ in range(repeats)
    )
    print(
        f"\n== Quantile group-by: {n_groups} groups x 3 percentiles: "
        f"{elapsed_ms:.2f} ms ({elapsed_ms / n_groups:.3f} ms/group) =="
    )
    return {"groups": n_groups, "total_ms": elapsed_ms}


def bench_sharded(
    table: Table, config: PASSConfig, n_shards: int, n_groups: int
) -> dict:
    """Grouped scatter-gather latency through ShardedSynopsis.query_grouped."""
    sharded = build_sharded_pass(
        table, "value", "key", n_shards=n_shards, config=config, executor="serial"
    )
    plan = make_groupby(n_groups).compile()
    grouped = sharded.query_grouped(plan)
    assert len(grouped) == n_groups
    elapsed_ms = 1e3 * min(
        _timed(lambda: sharded.query_grouped(plan)) for _ in range(3)
    )
    print(
        f"\n== Sharded grouped: {n_groups} groups x {len(AGGREGATES)} aggregates "
        f"over {n_shards} shards: {elapsed_ms:.2f} ms "
        f"({elapsed_ms / n_groups:.3f} ms/group) =="
    )
    return {"shards": n_shards, "groups": n_groups, "total_ms": elapsed_ms}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=1_000_000, help="table size")
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="CI smoke configuration: a few thousand rows, seconds of runtime",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="assert the grouped path beats the naive loop >= 3x at 64 groups",
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="OUT",
        help="write perf-gate metrics (see benchmarks/perf_gate.py) to OUT",
    )
    args = parser.parse_args(argv)

    if args.tiny:
        n_rows, group_counts, repeats, n_shards = 30_000, [8, 64], 3, 4
        config = PASSConfig(
            n_partitions=32, sample_rate=0.02, opt_sample_size=500, seed=0
        )
    else:
        n_rows, group_counts, repeats, n_shards = args.rows, [8, 16, 64, 128], 3, 8
        config = PASSConfig(
            n_partitions=64, sample_rate=0.005, opt_sample_size=2000, seed=0
        )

    print(f"generating {n_rows:,} rows ...")
    table = generate_table(n_rows)
    synopsis = build_pass(table, "value", ["key"], config)

    rows = bench_single_synopsis(synopsis, group_counts, repeats)
    quantile_row = bench_quantile_groupby(synopsis, 64, repeats)
    sharded_row = bench_sharded(table, config, n_shards, max(group_counts))

    at_64 = next((row for row in rows if row["groups"] == 64), rows[-1])
    print(f"\nshared-mask speedup at {at_64['groups']} groups: {at_64['speedup']:.1f}x")

    if args.json:
        metrics = {
            "groupby_speedup_64_groups": {
                "value": at_64["speedup"],
                "direction": "higher",
            },
            "groupby_grouped_ms_64_groups": {
                "value": at_64["grouped_ms"],
                "direction": "lower",
            },
            "groupby_sharded_ms_per_group": {
                "value": sharded_row["total_ms"] / sharded_row["groups"],
                "direction": "lower",
            },
            "groupby_quantile_ms_64_groups": {
                "value": quantile_row["total_ms"],
                "direction": "lower",
            },
        }
        Path(args.json).write_text(json.dumps({"metrics": metrics}, indent=2))
        print(f"wrote {args.json}")

    if args.check and at_64["speedup"] < 3.0:
        print(f"FAIL: expected >= 3x at 64 groups, measured {at_64['speedup']:.1f}x")
        return 1
    if args.check:
        print("grouped speedup check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
