"""Benchmark regenerating Figure 7: ADP vs EQ on challenging real-data queries.

Paper reference: Figure 7 — median CI ratio of ADP vs EQ partitioning on
challenging queries (drawn from the maximum-variance window) of the Intel,
Instacart and NYC datasets.
"""

from __future__ import annotations

from conftest import run_once

from repro.evaluation.experiments import figure7_adp_vs_eq_real


def test_figure7_adp_vs_eq_real(benchmark, scale):
    run_once(
        benchmark,
        figure7_adp_vs_eq_real,
        partition_counts=scale["partition_counts"],
        n_rows=scale["n_rows"],
        n_queries=scale["n_queries"],
        sample_rate=scale["sample_rate"],
    )
