"""Benchmark regenerating Figure 3: median relative error vs number of partitions.

Paper reference: Figure 3 — 2000 random SUM queries, 0.5% sample rate, the
number of partitions varied from 4 to 128 on the three datasets.
"""

from __future__ import annotations

from conftest import run_once

from repro.evaluation.experiments import figure3_error_vs_partitions


def test_figure3_error_vs_partitions(benchmark, scale):
    run_once(
        benchmark,
        figure3_error_vs_partitions,
        partition_counts=scale["partition_counts"],
        n_rows=scale["n_rows"],
        n_queries=scale["n_queries"],
        sample_rate=scale["sample_rate"],
    )
