"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
experiment functions take seconds to minutes, so each benchmark runs exactly
one round (``benchmark.pedantic``) and prints the experiment's sections so the
numbers land in the benchmark log (``bench_output.txt``).

Scale knobs: the ``BENCH_SCALE`` dictionary below defines the row / query /
partition counts used by the benchmarks.  They are reduced from the paper's
sizes (3M–7.7M rows, 2000 queries) so the full suite finishes in minutes; pass
``--paper-scale`` to pytest to run the original sizes.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="Run the benchmarks at the paper's original dataset sizes.",
    )


#: Reduced scale used by default (keeps the whole suite to a few minutes).
REDUCED_SCALE = {
    "n_rows": 60_000,
    "n_rows_sweep": 40_000,
    "n_queries": 150,
    "n_queries_multidim": 100,
    "n_partitions": 64,
    "kd_leaves": 256,
    "partition_counts": (4, 8, 16, 32, 64, 128),
    "sample_rates": (0.1, 0.25, 0.5, 0.75, 1.0),
    "sample_rate": 0.005,
}

#: The paper's original experiment scale (hours of runtime in pure Python).
PAPER_SCALE = {
    "n_rows": 3_000_000,
    "n_rows_sweep": 3_000_000,
    "n_queries": 2_000,
    "n_queries_multidim": 1_000,
    "n_partitions": 64,
    "kd_leaves": 1_024,
    "partition_counts": (4, 8, 16, 32, 64, 128),
    "sample_rates": (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    "sample_rate": 0.005,
}


@pytest.fixture(scope="session")
def scale(request) -> dict:
    """The active scale configuration for this benchmark run."""
    if request.config.getoption("--paper-scale"):
        return dict(PAPER_SCALE)
    return dict(REDUCED_SCALE)


def run_once(benchmark, fn, **kwargs):
    """Run an experiment exactly once under pytest-benchmark and print it."""
    result = benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)
    print()
    print(result.to_text())
    return result
