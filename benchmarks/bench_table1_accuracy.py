"""Benchmark regenerating Table 1: headline accuracy and construction cost.

Paper reference: Table 1 — median relative error of US / ST / AQP++ /
PASS-ESS / PASS-BSS2x / PASS-BSS10x over 2000 random COUNT / SUM / AVG
queries on the Intel, Instacart and NYC datasets, with the mean construction
cost per approach.
"""

from __future__ import annotations

from conftest import run_once

from repro.evaluation.experiments import table1_accuracy


def test_table1_accuracy(benchmark, scale):
    run_once(
        benchmark,
        table1_accuracy,
        n_rows=scale["n_rows"],
        n_queries=scale["n_queries"],
        sample_rate=scale["sample_rate"],
        n_partitions=scale["n_partitions"],
    )
