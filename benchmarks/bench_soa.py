"""Array-native execution benchmarks: SoA engine vs per-leaf object path.

The object path answers a query by walking `PartitionNode` objects and
masking per-leaf `Stratum` samples one Python object at a time.  The SoA
engine (:mod:`repro.core.soa`) answers the *same* query — bit-identically —
over contiguous geometry/stats arrays and CSR leaf samples: the frontier is
a closed-form vectorized classification and the partial-leaf moments are a
handful of batched ufunc calls over gathered CSR segments.

The workload is the multi-dimensional shape the paper targets (Section 4.4):
a 2-D k-d partitioning where a rectangular predicate partially overlaps a
whole *boundary* of leaves, so per-leaf Python overhead dominates the object
path.  Two metrics gate the engine:

- ``soa_single_query_speedup``: mean single-query latency of the object path
  divided by the SoA path over a mixed SUM / AVG / COUNT workload.
- ``soa_grouped_speedup``: the naive per-cell object-path loop divided by
  one ``grouped_query`` call on the SoA engine for a binned 2-D group-by.

Run standalone::

    python benchmarks/bench_soa.py            # full: 200k rows, 1024 leaves
    python benchmarks/bench_soa.py --tiny     # CI smoke: seconds
    python benchmarks/bench_soa.py --check    # assert single-query >= 3x
    python benchmarks/bench_soa.py --json OUT # write perf-gate metrics

(Like the other serving benchmarks this is a plain script, not a
pytest-benchmark suite, so CI can smoke it directly.)
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core.batching import grouped_query
from repro.core.builder import build_pass
from repro.core.config import PASSConfig
from repro.data.generators import uniform_random
from repro.query.groupby import AggregateSpec, GroupByQuery, GroupingColumn
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery

AGGREGATES = ("SUM", "AVG", "COUNT")
PREDICATE_COLUMNS = ("c0", "c1")


def build_synopsis(n_rows: int, n_partitions: int, seed: int = 3):
    """A 2-D k-d synopsis over uniform data (samples but no sketches)."""
    table = uniform_random(
        n_rows=n_rows, n_predicate_columns=len(PREDICATE_COLUMNS), seed=7
    )
    config = PASSConfig(
        n_partitions=n_partitions,
        sample_rate=0.02,
        partitioner="kd",
        with_sketches=False,
        seed=seed,
    )
    synopsis = build_pass(table, "value", list(PREDICATE_COLUMNS), config)
    return table, synopsis


def make_predicates(table, n_predicates: int, seed: int = 11) -> list[RectPredicate]:
    """Random 2-D rectangles spanning 30-50% of each dimension's range."""
    rng = np.random.default_rng(seed)
    spans = {
        column: (float(table.column(column).min()), float(table.column(column).max()))
        for column in PREDICATE_COLUMNS
    }
    predicates = []
    for _ in range(n_predicates):
        bounds = {}
        for column in PREDICATE_COLUMNS:
            low, high = spans[column]
            width = high - low
            a = rng.uniform(0.0, 0.5)
            b = a + rng.uniform(0.3, 0.5)
            bounds[column] = (low + a * width, low + b * width)
        predicates.append(RectPredicate.from_bounds(**bounds))
    return predicates


def make_groupby(table, n_bins_c0: int, n_bins_c1: int) -> GroupByQuery:
    """A binned 2-D dashboard group-by with one aggregate row per cell."""
    groupings = []
    for column, n_bins in zip(PREDICATE_COLUMNS, (n_bins_c0, n_bins_c1)):
        values = table.column(column)
        edges = np.linspace(float(values.min()), float(values.max()), n_bins + 1)
        groupings.append(GroupingColumn.bins(column, [float(e) for e in edges]))
    return GroupByQuery(
        groupings=tuple(groupings),
        aggregates=tuple(AggregateSpec(agg, "value") for agg in AGGREGATES),
    )


def _best_of(run, repeats: int) -> float:
    """Best-of-repeats wall time; minima are least noise-sensitive on CI."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def bench_single_queries(synopsis, predicates, repeats: int) -> dict:
    """Mean per-query latency: SoA `query` vs object-path `query_object`."""
    queries = [
        AggregateQuery(agg, "value", predicate)
        for predicate in predicates
        for agg in AGGREGATES
    ]
    for query in queries[: len(AGGREGATES)]:  # warm caches / lazy builds
        synopsis.query(query)
        synopsis.query_object(query)
    soa_s = _best_of(lambda: [synopsis.query(q) for q in queries], repeats)
    object_s = _best_of(lambda: [synopsis.query_object(q) for q in queries], repeats)
    soa_us = 1e6 * soa_s / len(queries)
    object_us = 1e6 * object_s / len(queries)
    speedup = object_us / soa_us
    print(f"\n== Single queries: {len(queries)} mixed {'/'.join(AGGREGATES)} ==")
    print(f"  object path : {object_us:>8.1f} us/query")
    print(f"  soa path    : {soa_us:>8.1f} us/query")
    print(f"  speedup     : {speedup:>8.2f}x")
    return {"soa_us": soa_us, "object_us": object_us, "speedup": speedup}


def bench_grouped(synopsis, plan, repeats: int) -> dict:
    """One SoA `grouped_query` call vs the naive per-cell object loop."""
    cell_queries = plan.queries()
    grouped = grouped_query(synopsis, plan)  # warm-up + sanity
    assert grouped
    grouped_ms = 1e3 * _best_of(lambda: grouped_query(synopsis, plan), repeats)
    naive_ms = 1e3 * _best_of(
        lambda: [synopsis.query_object(q) for q in cell_queries], repeats
    )
    speedup = naive_ms / grouped_ms
    print(f"\n== Grouped: {len(cell_queries)} cell-aggregates ==")
    print(f"  naive object loop : {naive_ms:>8.2f} ms")
    print(f"  soa grouped_query : {grouped_ms:>8.2f} ms")
    print(f"  speedup           : {speedup:>8.2f}x")
    return {"grouped_ms": grouped_ms, "naive_ms": naive_ms, "speedup": speedup}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=200_000, help="table size")
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="CI smoke configuration: a few thousand rows, seconds of runtime",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="assert the soa single-query path beats the object path >= 3x",
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="OUT",
        help="write perf-gate metrics (see benchmarks/perf_gate.py) to OUT",
    )
    args = parser.parse_args(argv)

    if args.tiny:
        n_rows, n_partitions, n_predicates, repeats = 30_000, 256, 20, 2
        bins = (4, 2)
    else:
        n_rows, n_partitions, n_predicates, repeats = args.rows, 1024, 100, 3
        bins = (8, 4)

    print(f"building 2-D kd synopsis: {n_rows:,} rows, {n_partitions} leaves ...")
    table, synopsis = build_synopsis(n_rows, n_partitions)
    predicates = make_predicates(table, n_predicates)
    plan = make_groupby(table, *bins).compile()

    single = bench_single_queries(synopsis, predicates, repeats)
    grouped = bench_grouped(synopsis, plan, repeats)

    if args.json:
        metrics = {
            "soa_single_query_speedup": {
                "value": single["speedup"],
                "direction": "higher",
            },
            "soa_single_query_us": {
                "value": single["soa_us"],
                "direction": "lower",
            },
            "soa_grouped_speedup": {
                "value": grouped["speedup"],
                "direction": "higher",
            },
        }
        Path(args.json).write_text(json.dumps({"metrics": metrics}, indent=2))
        print(f"wrote {args.json}")

    if args.check and single["speedup"] < 3.0:
        print(
            "FAIL: expected soa single-query speedup >= 3x, "
            f"measured {single['speedup']:.2f}x"
        )
        return 1
    if args.check:
        print("soa speedup check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
