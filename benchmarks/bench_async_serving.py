"""Async serving tier: throughput and tail latency under concurrent load.

The async tier exists for one workload shape: many concurrent clients whose
queries overlap.  This benchmark drives exactly that shape and measures what
the tier buys over the PR-1 synchronous path:

* **Closed-loop speedup** — 64 concurrent clients issue waves of queries in
  which a fraction (``duplicate ratio``) duplicates the wave's hot query.
  The async tier (request coalescing + micro-batch scheduling into the
  vectorized ``execute_batch`` path) is compared against sequential
  ``ServingEngine.execute`` over the same request stream; both run with the
  result cache disabled, so the speedup isolates what coalescing and
  batching contribute beyond caching.  ``--check`` asserts the acceptance
  floor: **>= 3x at duplicate ratio 0.5 with 64 clients**.
* **Observability overhead** — the same closed-loop workload with full
  instrumentation (metrics + traces + query log) vs the disabled no-op
  path, order-alternated rounds compared best-of-N; ``--check`` asserts
  **<= 5%** overhead and the ``obs_overhead_pct`` metric feeds the perf
  gate.
* **Audit overhead** — the same workload with an attached
  :class:`~repro.obs.audit.AccuracyAuditor` (head sampling + background
  exact recomputation under the shared read lock) vs no auditor, measured
  the same way; ``--check`` asserts **<= 5%** and ``audit_overhead_pct``
  feeds the perf gate.
* **Open-loop tail latency** — a Poisson arrival process at increasing
  offered load (fractions of the measured capacity), plus the adversarial
  duplicate-stampede process, measured through
  :func:`repro.evaluation.harness.evaluate_async_workload`: p50 / p99
  latency, achieved throughput, coalescing counts, and Overloaded
  rejections under the bounded queue.

Standalone modes for CI::

    python benchmarks/bench_async_serving.py --tiny --check --json OUT
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core.builder import build_pass
from repro.core.config import PASSConfig
from repro.data.loaders import load_dataset
from repro.evaluation.harness import evaluate_async_workload
from repro.obs import Observability
from repro.obs.audit import AccuracyAuditor
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery
from repro.serving import AsyncServingEngine, ServingEngine, SynopsisCatalog

N_ROWS = 60_000
N_CLIENTS = 64
N_WAVES = 24
DUPLICATE_RATIO = 0.5
AGGS = ("SUM", "COUNT", "AVG")


def _build_catalog(n_rows: int, n_partitions: int):
    spec = load_dataset("intel", n_rows)
    synopsis = build_pass(
        spec.table,
        spec.value_column,
        [spec.default_predicate_column],
        PASSConfig(
            n_partitions=n_partitions, sample_rate=0.005, opt_sample_size=1000, seed=0
        ),
    )
    catalog = SynopsisCatalog()
    catalog.register("intel_light", synopsis, table_name=spec.table.name)
    catalog.register_table(spec.table)
    return spec, catalog


def wave_workload(
    spec, n_clients: int, n_waves: int, duplicate_ratio: float, seed: int = 0
) -> list[list[AggregateQuery]]:
    """Concurrent dashboard traffic: per wave, one hot query plus cold ones.

    Each of ``n_waves`` waves has a fresh "hot" canonical query; every
    client issues the hot query with probability ``duplicate_ratio`` and a
    unique cold query otherwise, so about that fraction of each wave's
    requests are concurrent duplicates — the shape request coalescing is
    built for, and one the result cache cannot help with (every wave is
    new).
    """
    rng = np.random.default_rng(seed)
    times = spec.table.column(spec.default_predicate_column)
    low, high = float(times.min()), float(times.max())

    def random_query() -> AggregateQuery:
        a, b = sorted(rng.uniform(low, high, size=2))
        predicate = RectPredicate.from_bounds(time=(float(a), float(b)))
        return AggregateQuery(
            AGGS[int(rng.integers(len(AGGS)))], spec.value_column, predicate
        )

    waves = []
    for _ in range(n_waves):
        hot = random_query()
        waves.append(
            [
                hot if rng.random() < duplicate_ratio else random_query()
                for _ in range(n_clients)
            ]
        )
    return waves


def _sequential_seconds(catalog, waves) -> float:
    engine = ServingEngine(catalog, cache_size=0)
    start = time.perf_counter()
    for wave in waves:
        for query in wave:
            engine.execute(query)
    return time.perf_counter() - start


def _async_tier_seconds(
    catalog, waves, obs: Observability | None = None, audit: bool = False
) -> tuple[float, object]:
    async def run():
        engine = ServingEngine(
            catalog, cache_size=0, vectorized_batches=True, obs=obs
        )
        auditor = None
        if audit:
            # Production defaults: 1-in-16 offers audited, 50 audits/s cap.
            # The rate cap is what bounds the worker's share of the
            # interpreter regardless of offered load, so the measured
            # overhead is dominated by the hot-path offer cost.
            auditor = AccuracyAuditor(engine)
        tier = AsyncServingEngine(engine, max_batch=len(waves[0]), batch_window=0.0)

        async def client(index: int) -> None:
            for wave in waves:
                await tier.execute(wave[index])

        try:
            async with tier:
                start = time.perf_counter()
                await asyncio.gather(*(client(i) for i in range(len(waves[0]))))
                return time.perf_counter() - start, tier.stats()
        finally:
            if auditor is not None:
                auditor.stop()

    return asyncio.run(run())


def paired_speedup(catalog, waves, rounds: int = 3):
    """Interleaved sequential / async rounds; the median per-round ratio.

    Machine-state drift (frequency scaling, co-tenant load) moves both
    paths of a round together, so pairing the measurements and taking the
    median ratio is far more stable than comparing two independent
    best-of-N numbers.
    """
    n_requests = sum(len(wave) for wave in waves)
    ratios = []
    best_seq = best_async = float("inf")
    stats = None
    for _ in range(rounds):
        seq_seconds = _sequential_seconds(catalog, waves)
        async_seconds, run_stats = _async_tier_seconds(catalog, waves)
        ratios.append(seq_seconds / async_seconds)
        best_seq = min(best_seq, seq_seconds)
        if async_seconds < best_async:
            best_async, stats = async_seconds, run_stats
    return (
        float(np.median(ratios)),
        n_requests / best_seq,
        n_requests / best_async,
        stats,
    )


def obs_overhead_pct(catalog, waves, rounds: int = 6) -> float:
    """Overhead (%) of full instrumentation over the no-op path, best-of-N.

    Each round runs the same closed-loop workload through the async tier
    both ways — once on the shared disabled :class:`Observability`
    singleton (the default), once with live metrics + tracing + query
    logging — alternating which goes first so warm-up and frequency drift
    cannot systematically favor either side.  The reported figure is the
    ratio of the best instrumented round to the best plain round:
    machine noise only ever *adds* time, so best-of-N (``timeit``'s
    estimator) converges on the true cost where a median of noisy pairs
    wanders.  The committed baseline plus the perf gate's 2x threshold cap
    the acceptable overhead at ~5%.
    """
    plain_times, instrumented_times = [], []
    for round_index in range(rounds):
        first_instrumented = bool(round_index % 2)
        for instrumented in (first_instrumented, not first_instrumented):
            obs = Observability() if instrumented else None
            seconds, _ = _async_tier_seconds(catalog, waves, obs=obs)
            (instrumented_times if instrumented else plain_times).append(seconds)
    return (min(instrumented_times) / min(plain_times) - 1.0) * 100.0


def audit_overhead_pct(catalog, waves, rounds: int = 6) -> float:
    """Overhead (%) of an attached accuracy auditor, best-of-N.

    Same estimator as :func:`obs_overhead_pct`: order-alternated rounds of
    the closed-loop workload with and without an auditor attached, best
    audited round over best plain round.  The measured cost is the hot-path
    offer (one lock + integer arithmetic per miss) plus whatever read-lock
    time the background worker's exact recomputations steal from serving —
    admission control and the rate limit are what keep that bounded.
    """
    plain_times, audited_times = [], []
    for round_index in range(rounds):
        first_audited = bool(round_index % 2)
        for audited in (first_audited, not first_audited):
            seconds, _ = _async_tier_seconds(catalog, waves, audit=audited)
            (audited_times if audited else plain_times).append(seconds)
    return (min(audited_times) / min(plain_times) - 1.0) * 100.0


def open_loop_rows(catalog, spec, capacity_qps: float, tiny: bool) -> list[dict]:
    """p50 / p99 latency vs offered load (Poisson) plus the adversarial case."""
    rng = np.random.default_rng(7)
    times = spec.table.column(spec.default_predicate_column)
    low, high = float(times.min()), float(times.max())
    pool = []
    for _ in range(512 if not tiny else 192):
        a, b = sorted(rng.uniform(low, high, size=2))
        pool.append(
            AggregateQuery(
                AGGS[int(rng.integers(len(AGGS)))],
                spec.value_column,
                RectPredicate.from_bounds(time=(float(a), float(b))),
            )
        )
    n_requests = 1536 if tiny else 4096
    rows = []
    for arrival, fraction in [
        ("poisson", 0.25),
        ("poisson", 0.5),
        ("poisson", 0.9),
        ("adversarial", 0.9),
    ]:
        rate = capacity_qps * fraction
        engine = ServingEngine(catalog, cache_size=0, vectorized_batches=True)
        tier = AsyncServingEngine(engine, max_batch=N_CLIENTS, batch_window=0.0005)
        report = evaluate_async_workload(
            tier,
            pool,
            rate=rate,
            n_requests=n_requests,
            arrival=arrival,
            duplicate_ratio=DUPLICATE_RATIO,
            seed=11,
        )
        rows.append(
            {
                "arrival": arrival,
                "offered_qps": report.offered_qps,
                "achieved_qps": report.achieved_qps,
                "p50_ms": report.p50_latency_ms,
                "p99_ms": report.p99_latency_ms,
                "coalesced": report.coalesced,
                "rejected": report.rejected,
            }
        )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=N_ROWS, help="table size")
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="CI smoke configuration: a few thousand rows, seconds of runtime",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="assert the >=3x speedup acceptance criterion (exit 1 on failure)",
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="OUT",
        help="write perf-gate metrics (see benchmarks/perf_gate.py) to OUT",
    )
    args = parser.parse_args(argv)
    n_rows = 20_000 if args.tiny else args.rows
    n_partitions = 32 if args.tiny else 64
    n_waves = N_WAVES if args.tiny else 2 * N_WAVES

    print(f"building catalog over {n_rows:,} rows ...")
    spec, catalog = _build_catalog(n_rows, n_partitions)
    waves = wave_workload(spec, N_CLIENTS, n_waves, DUPLICATE_RATIO)

    # A short warm-up stabilizes lazy one-time costs (tree geometry, numpy
    # dispatch paths) outside the timed rounds.
    _sequential_seconds(catalog, waves[:2])
    _async_tier_seconds(catalog, waves[:2])
    speedup, seq_qps, tier_qps, stats = paired_speedup(catalog, waves)
    print(
        f"sequential execute: {seq_qps:,.0f} q/s | async tier "
        f"({N_CLIENTS} clients, dup {DUPLICATE_RATIO}): {tier_qps:,.0f} q/s | "
        f"speedup {speedup:.2f}x"
    )
    print(
        f"  coalesced {stats.coalesced} requests, "
        f"{stats.scheduler.batches} micro-batches "
        f"(mean size {stats.scheduler.mean_batch_size:.1f})"
    )

    # Overhead is a small difference between two noisy wall-clock numbers;
    # a longer request stream than the speedup rounds need makes the
    # per-run constant costs (thread-pool spin-up, first-batch warm paths)
    # negligible against the measured region.
    overhead_waves = wave_workload(spec, N_CLIENTS, 4 * N_WAVES, DUPLICATE_RATIO, seed=1)
    overhead_pct = obs_overhead_pct(catalog, overhead_waves)
    print(
        f"observability overhead (metrics + traces + query log vs no-op): "
        f"{overhead_pct:+.2f}%"
    )
    audit_pct = audit_overhead_pct(catalog, overhead_waves)
    print(
        f"accuracy-audit overhead (1-in-16 sampling, rate-capped background "
        f"exact recompute vs none): {audit_pct:+.2f}%"
    )

    print("open-loop latency (offered load as a fraction of async capacity):")
    rows = open_loop_rows(catalog, spec, tier_qps, args.tiny)
    for row in rows:
        print(
            f"  {row['arrival']:<12} offered {row['offered_qps']:>8,.0f} q/s | "
            f"achieved {row['achieved_qps']:>8,.0f} q/s | "
            f"p50 {row['p50_ms']:6.2f} ms | p99 {row['p99_ms']:6.2f} ms | "
            f"coalesced {row['coalesced']:>5} | rejected {row['rejected']}"
        )

    if args.json:
        metrics = {
            "async_serving_speedup_dup50": {"value": speedup, "direction": "higher"},
            "async_serving_tier_qps": {"value": tier_qps, "direction": "higher"},
            # Clamped at a small positive floor so the perf gate's
            # multiplicative threshold stays meaningful when a lucky run
            # measures ~0% (or negative) overhead.
            "obs_overhead_pct": {
                "value": max(overhead_pct, 0.5),
                "direction": "lower",
            },
            "audit_overhead_pct": {
                "value": max(audit_pct, 0.5),
                "direction": "lower",
            },
        }
        Path(args.json).write_text(json.dumps({"metrics": metrics}, indent=2) + "\n")
        print(f"wrote {args.json}")

    if args.check:
        failed = False
        if speedup < 3.0:
            print(
                f"CHECK FAILED: async tier speedup {speedup:.2f}x < 3.0x "
                f"(sequential {seq_qps:,.0f} q/s, async {tier_qps:,.0f} q/s)"
            )
            failed = True
        if overhead_pct > 5.0:
            print(
                f"CHECK FAILED: observability overhead {overhead_pct:.2f}% > 5.0%"
            )
            failed = True
        if audit_pct > 5.0:
            print(f"CHECK FAILED: audit overhead {audit_pct:.2f}% > 5.0%")
            failed = True
        if failed:
            return 1
        print(
            f"check passed: {speedup:.2f}x >= 3.0x, "
            f"obs overhead {overhead_pct:+.2f}% <= 5.0%, "
            f"audit overhead {audit_pct:+.2f}% <= 5.0%"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
