"""Benchmark regenerating Figure 8: KD-PASS vs KD-US on 1D-5D query templates.

Paper reference: Figure 8 — median CI ratio of KD-PASS vs KD-US and the
KD-PASS skip rate on the NYC dataset for query templates of 1 to 5 predicate
columns (1024 leaves in the paper).
"""

from __future__ import annotations

from conftest import run_once

from repro.evaluation.experiments import figure8_multidim


def test_figure8_multidim(benchmark, scale):
    run_once(
        benchmark,
        figure8_multidim,
        n_rows=scale["n_rows"],
        n_leaves=scale["kd_leaves"],
        n_queries=scale["n_queries_multidim"],
        sample_rate=scale["sample_rate"],
    )
