"""Benchmark regenerating Figure 4: median relative error vs sample rate.

Paper reference: Figure 4 — 2000 random SUM queries, 64 partitions, the
sample rate varied from 10% to 100% on the three datasets.
"""

from __future__ import annotations

from conftest import run_once

from repro.evaluation.experiments import figure4_error_vs_sample_rate


def test_figure4_error_vs_sample_rate(benchmark, scale):
    run_once(
        benchmark,
        figure4_error_vs_sample_rate,
        sample_rates=scale["sample_rates"],
        n_rows=scale["n_rows_sweep"],
        n_queries=scale["n_queries"],
        n_partitions=scale["n_partitions"],
    )
