"""CI perf-regression gate: merge benchmark metrics, compare to a baseline.

Each smoke benchmark (``bench_serving_throughput.py``, ``bench_distributed.py``,
``bench_groupby.py``) writes a small JSON file of tracked metrics when run
with ``--json OUT``::

    {"metrics": {"<name>": {"value": 123.4, "direction": "higher" | "lower"}}}

This script merges those files into one report (``BENCH_pr.json``, uploaded
as a CI artifact on every run) and fails when any tracked metric regresses
more than ``--threshold`` (default 2x) against the committed
``benchmarks/BENCH_baseline.json``:

* ``direction: higher`` (throughputs, speedups, pruning rates) regresses
  when ``value < baseline / threshold``;
* ``direction: lower`` (latencies) regresses when
  ``value > baseline * threshold``.

The 2x headroom absorbs runner-to-runner hardware variance while still
catching the order-of-magnitude regressions a broken batch path produces.
Metrics missing from the baseline are reported but never fail the gate, so
adding a new benchmark does not require regenerating the baseline in the
same commit.  Refresh the baseline by re-running the smoke benchmarks and
passing ``--write-baseline``::

    python benchmarks/bench_serving_throughput.py --tiny --json /tmp/serving.json
    python benchmarks/bench_distributed.py --tiny --json /tmp/distributed.json
    python benchmarks/bench_groupby.py --tiny --json /tmp/groupby.json
    python benchmarks/perf_gate.py --inputs /tmp/serving.json /tmp/distributed.json \
        /tmp/groupby.json --write-baseline benchmarks/BENCH_baseline.json
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

DIRECTIONS = ("higher", "lower")


def load_metrics(paths: list[str]) -> dict[str, dict]:
    """Merge the ``metrics`` sections of several benchmark JSON files."""
    merged: dict[str, dict] = {}
    for path in paths:
        payload = json.loads(Path(path).read_text())
        for name, entry in payload.get("metrics", {}).items():
            if name in merged:
                raise ValueError(f"metric {name!r} appears in more than one input")
            direction = entry.get("direction")
            if direction not in DIRECTIONS:
                raise ValueError(
                    f"metric {name!r} has direction {direction!r}; "
                    f"expected one of {DIRECTIONS}"
                )
            merged[name] = {"value": float(entry["value"]), "direction": direction}
    return merged


def compare(
    current: dict[str, dict], baseline: dict[str, dict], threshold: float
) -> list[str]:
    """Human-readable comparison rows; regressions are marked ``REGRESSION``."""
    rows = []
    for name in sorted(baseline):
        if name not in current:
            # A baseline metric no benchmark emits any more is an unwatched
            # regression guard — fail loudly rather than shrink the gate.
            rows.append(f"  {name}: MISSING from current run -> REGRESSION")
    for name in sorted(current):
        entry = current[name]
        base = baseline.get(name)
        if base is None:
            rows.append(f"  {name}: {entry['value']:.4g} (no baseline; informational)")
            continue
        value, reference = entry["value"], float(base["value"])
        if entry["direction"] == "higher":
            regressed = value < reference / threshold
            ratio = reference / value if value else float("inf")
        else:
            regressed = value > reference * threshold
            ratio = value / reference if reference else float("inf")
        status = "REGRESSION" if regressed else "ok"
        rows.append(
            f"  {name}: {value:.4g} vs baseline {reference:.4g} "
            f"({ratio:.2f}x of allowed {threshold:.1f}x, {entry['direction']} "
            f"is better) -> {status}"
        )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--inputs", nargs="+", required=True, help="benchmark --json outputs to merge"
    )
    parser.add_argument(
        "--baseline",
        type=str,
        default="benchmarks/BENCH_baseline.json",
        help="committed baseline to gate against",
    )
    parser.add_argument(
        "--out",
        type=str,
        default="BENCH_pr.json",
        help="merged report to write (uploaded as a CI artifact)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="allowed regression factor before the gate fails (default 2x)",
    )
    parser.add_argument(
        "--write-baseline",
        type=str,
        default=None,
        metavar="PATH",
        help="write the merged metrics as a new baseline and exit",
    )
    args = parser.parse_args(argv)

    current = load_metrics(args.inputs)
    if args.write_baseline:
        Path(args.write_baseline).write_text(
            json.dumps({"metrics": current}, indent=2) + "\n"
        )
        print(f"wrote baseline with {len(current)} metrics to {args.write_baseline}")
        return 0

    Path(args.out).write_text(json.dumps({"metrics": current}, indent=2) + "\n")
    print(f"wrote {args.out} ({len(current)} metrics)")

    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"no baseline at {args.baseline}; gate passes vacuously")
        return 0
    baseline = json.loads(baseline_path.read_text()).get("metrics", {})

    rows = compare(current, baseline, args.threshold)
    print(f"perf gate vs {args.baseline} (threshold {args.threshold:.1f}x):")
    for row in rows:
        print(row)
    regressions = [row for row in rows if row.endswith("REGRESSION")]
    if regressions:
        print(f"FAIL: {len(regressions)} metric(s) regressed > {args.threshold:.1f}x")
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
