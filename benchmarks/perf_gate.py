"""CI perf-regression gate: merge benchmark metrics, compare to a baseline.

Each smoke benchmark (``bench_serving_throughput.py``, ``bench_distributed.py``,
``bench_groupby.py``) writes a small JSON file of tracked metrics when run
with ``--json OUT``::

    {"metrics": {"<name>": {"value": 123.4, "direction": "higher" | "lower"}}}

This script merges those files into one report (``BENCH_pr.json``, uploaded
as a CI artifact on every run) and fails when any tracked metric regresses
more than ``--threshold`` (default 2x) against the committed
``benchmarks/BENCH_baseline.json``:

* ``direction: higher`` (throughputs, speedups, pruning rates) regresses
  when ``value < baseline / threshold``;
* ``direction: lower`` (latencies) regresses when
  ``value > baseline * threshold``.

The 2x headroom absorbs runner-to-runner hardware variance while still
catching the order-of-magnitude regressions a broken batch path produces.
Metrics missing from the baseline are reported but never fail the gate, so
adding a new benchmark does not require regenerating the baseline in the
same commit.  A metric present in the baseline but *missing from the
current run* is reported as a missing metric and fails the gate — an
unwatched regression guard is itself a regression.  Refresh the baseline by
re-running the smoke benchmarks and passing ``--write-baseline``::

    python benchmarks/bench_serving_throughput.py --tiny --json /tmp/serving.json
    python benchmarks/bench_distributed.py --tiny --json /tmp/distributed.json
    python benchmarks/bench_groupby.py --tiny --json /tmp/groupby.json
    python benchmarks/bench_async_serving.py --tiny --json /tmp/async.json
    python benchmarks/perf_gate.py --inputs /tmp/serving.json /tmp/distributed.json \
        /tmp/groupby.json /tmp/async.json \
        --write-baseline benchmarks/BENCH_baseline.json

The nightly pipeline runs the same comparison in ``--trend`` mode: per-metric
drift is reported (and written to the ``--out`` report) without ever failing
the run, so gradual drift is visible in the nightly artifacts long before it
trips the 2x PR gate.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

DIRECTIONS = ("higher", "lower")


def load_metrics(paths: list[str]) -> dict[str, dict]:
    """Merge the ``metrics`` sections of several benchmark JSON files."""
    merged: dict[str, dict] = {}
    for path in paths:
        payload = json.loads(Path(path).read_text())
        for name, entry in payload.get("metrics", {}).items():
            if name in merged:
                raise ValueError(f"metric {name!r} appears in more than one input")
            direction = entry.get("direction")
            if direction not in DIRECTIONS:
                raise ValueError(
                    f"metric {name!r} has direction {direction!r}; "
                    f"expected one of {DIRECTIONS}"
                )
            if "value" not in entry:
                raise ValueError(f"metric {name!r} in {path} has no 'value' field")
            merged[name] = {"value": float(entry["value"]), "direction": direction}
    return merged


def compare(
    current: dict[str, dict], baseline: dict[str, dict], threshold: float
) -> tuple[list[str], list[str]]:
    """Comparison rows plus the names of failing metrics.

    A metric in the baseline that the current run did not produce is a
    *missing metric*: the benchmark emitting it broke or was disconnected
    from the gate, so it fails with an explicit message instead of silently
    shrinking the gate (or crashing on the absent entry).
    """
    rows = []
    failed = []
    for name in sorted(baseline):
        if name not in current:
            rows.append(
                f"  {name}: missing metric — present in the baseline but not "
                f"produced by this run -> REGRESSION"
            )
            failed.append(name)
    for name in sorted(current):
        entry = current[name]
        base = baseline.get(name)
        if base is None:
            rows.append(f"  {name}: {entry['value']:.4g} (no baseline; informational)")
            continue
        if "value" not in base:
            rows.append(f"  {name}: baseline entry has no 'value' field -> REGRESSION")
            failed.append(name)
            continue
        value, reference = entry["value"], float(base["value"])
        if entry["direction"] == "higher":
            regressed = value < reference / threshold
            ratio = reference / value if value else float("inf")
        else:
            regressed = value > reference * threshold
            ratio = value / reference if reference else float("inf")
        status = "REGRESSION" if regressed else "ok"
        if regressed:
            failed.append(name)
        rows.append(
            f"  {name}: {value:.4g} vs baseline {reference:.4g} "
            f"({ratio:.2f}x of allowed {threshold:.1f}x, {entry['direction']} "
            f"is better) -> {status}"
        )
    return rows, failed


def trend_report(current: dict[str, dict], baseline: dict[str, dict]) -> list[str]:
    """Per-metric drift vs the baseline (informational; never fails).

    Drift is signed so that positive always means *worse*: a throughput
    (``direction: higher``) that dropped and a latency (``direction:
    lower``) that rose both report positive drift.
    """
    rows = []
    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            rows.append(f"  {name}: missing metric (not produced by this run)")
            continue
        entry = current[name]
        base = baseline.get(name)
        if base is None or "value" not in base:
            rows.append(f"  {name}: {entry['value']:.4g} (new metric; no baseline)")
            continue
        value, reference = entry["value"], float(base["value"])
        if reference == 0 or value == 0:
            rows.append(f"  {name}: {value:.4g} vs {reference:.4g} (degenerate)")
            continue
        if entry["direction"] == "higher":
            drift = (reference / value - 1.0) * 100.0
        else:
            drift = (value / reference - 1.0) * 100.0
        tag = "worse" if drift > 0 else "better"
        rows.append(
            f"  {name}: {value:.4g} vs baseline {reference:.4g} "
            f"({abs(drift):.1f}% {tag})"
        )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--inputs", nargs="+", required=True, help="benchmark --json outputs to merge"
    )
    parser.add_argument(
        "--baseline",
        type=str,
        default="benchmarks/BENCH_baseline.json",
        help="committed baseline to gate against",
    )
    parser.add_argument(
        "--out",
        type=str,
        default="BENCH_pr.json",
        help="merged report to write (uploaded as a CI artifact)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="allowed regression factor before the gate fails (default 2x)",
    )
    parser.add_argument(
        "--write-baseline",
        type=str,
        default=None,
        metavar="PATH",
        help="write the merged metrics as a new baseline and exit",
    )
    parser.add_argument(
        "--trend",
        action="store_true",
        help="report per-metric drift vs the baseline without failing "
        "(the nightly pipeline's mode)",
    )
    args = parser.parse_args(argv)

    current = load_metrics(args.inputs)
    if args.write_baseline:
        Path(args.write_baseline).write_text(
            json.dumps({"metrics": current}, indent=2) + "\n"
        )
        print(f"wrote baseline with {len(current)} metrics to {args.write_baseline}")
        return 0

    Path(args.out).write_text(json.dumps({"metrics": current}, indent=2) + "\n")
    print(f"wrote {args.out} ({len(current)} metrics)")

    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"no baseline at {args.baseline}; gate passes vacuously")
        return 0
    baseline = json.loads(baseline_path.read_text()).get("metrics", {})

    if args.trend:
        print(f"perf trend vs {args.baseline} (informational, never fails):")
        for row in trend_report(current, baseline):
            print(row)
        return 0

    rows, failed = compare(current, baseline, args.threshold)
    print(f"perf gate vs {args.baseline} (threshold {args.threshold:.1f}x):")
    for row in rows:
        print(row)
    if failed:
        print(
            f"FAIL: {len(failed)} metric(s) regressed > {args.threshold:.1f}x "
            f"or went missing: {', '.join(failed)}"
        )
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
