"""Serving-layer throughput: batch vs sequential, cold vs warm cache.

These benchmarks measure what a deployment sizes against: queries/second
through the :class:`~repro.serving.engine.ServingEngine` front end.  Four
paths are compared on the same workload:

* sequential execution with the result cache disabled (the baseline — one
  MCF lookup plus per-leaf mask evaluation per query);
* batch execution with the cache disabled (vectorized mask evaluation);
* sequential execution against a warm cache;
* batch execution against a warm cache (the production fast path).

``test_warm_batch_vs_sequential_uncached_speedup`` asserts the serving
layer's headline property: warm-cache batch throughput at least 5x the
sequential uncached path.

Besides the pytest-benchmark suite, the module runs standalone for the CI
perf gate::

    python benchmarks/bench_serving_throughput.py --tiny --json OUT
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np
import pytest

from repro.core.builder import build_pass
from repro.core.config import PASSConfig
from repro.data.loaders import DatasetSpec, load_dataset
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery
from repro.serving.catalog import SynopsisCatalog
from repro.serving.engine import ServingEngine

N_ROWS = 60_000
N_QUERIES = 300


@pytest.fixture(scope="module")
def intel_spec() -> DatasetSpec:
    return load_dataset("intel", N_ROWS)


@pytest.fixture(scope="module")
def catalog(intel_spec) -> SynopsisCatalog:
    synopsis = build_pass(
        intel_spec.table,
        intel_spec.value_column,
        [intel_spec.default_predicate_column],
        PASSConfig(n_partitions=64, sample_rate=0.005, opt_sample_size=1000, seed=0),
    )
    catalog = SynopsisCatalog()
    catalog.register("intel_light", synopsis, table_name=intel_spec.table.name)
    catalog.register_table(intel_spec.table)
    return catalog


@pytest.fixture(scope="module")
def workload(intel_spec) -> list[AggregateQuery]:
    rng = np.random.default_rng(0)
    times = intel_spec.table.column(intel_spec.default_predicate_column)
    low, high = float(times.min()), float(times.max())
    queries = []
    for _ in range(N_QUERIES // 3):
        a, b = sorted(rng.uniform(low, high, size=2))
        predicate = RectPredicate.from_bounds(time=(float(a), float(b)))
        for agg in ("SUM", "COUNT", "AVG"):
            queries.append(AggregateQuery(agg, intel_spec.value_column, predicate))
    return queries


def test_sequential_uncached_throughput(benchmark, catalog, workload):
    engine = ServingEngine(catalog, cache_size=0)

    def run():
        for query in workload:
            engine.execute(query)

    benchmark(run)


def test_batch_uncached_throughput(benchmark, catalog, workload):
    engine = ServingEngine(catalog, cache_size=0)
    benchmark(engine.execute_batch, workload)


def test_sequential_warm_cache_throughput(benchmark, catalog, workload):
    engine = ServingEngine(catalog)
    for query in workload:
        engine.execute(query)

    def run():
        for query in workload:
            engine.execute(query)

    benchmark(run)


def test_batch_warm_cache_throughput(benchmark, catalog, workload):
    engine = ServingEngine(catalog)
    engine.execute_batch(workload)
    benchmark(engine.execute_batch, workload)


def _build_catalog(n_rows: int, n_partitions: int) -> tuple[SynopsisCatalog, list]:
    """Standalone-mode setup mirroring the pytest fixtures."""
    spec = load_dataset("intel", n_rows)
    synopsis = build_pass(
        spec.table,
        spec.value_column,
        [spec.default_predicate_column],
        PASSConfig(
            n_partitions=n_partitions, sample_rate=0.005, opt_sample_size=1000, seed=0
        ),
    )
    catalog = SynopsisCatalog()
    catalog.register("intel_light", synopsis, table_name=spec.table.name)
    catalog.register_table(spec.table)

    rng = np.random.default_rng(0)
    times = spec.table.column(spec.default_predicate_column)
    low, high = float(times.min()), float(times.max())
    queries = []
    for _ in range(N_QUERIES // 3):
        a, b = sorted(rng.uniform(low, high, size=2))
        predicate = RectPredicate.from_bounds(time=(float(a), float(b)))
        for agg in ("SUM", "COUNT", "AVG"):
            queries.append(AggregateQuery(agg, spec.value_column, predicate))
    return catalog, queries


def main(argv: list[str] | None = None) -> int:
    """Standalone serving-throughput smoke for the CI perf gate."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=N_ROWS, help="table size")
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="CI smoke configuration: a few thousand rows, seconds of runtime",
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="OUT",
        help="write perf-gate metrics (see benchmarks/perf_gate.py) to OUT",
    )
    args = parser.parse_args(argv)
    n_rows = 20_000 if args.tiny else args.rows
    n_partitions = 32 if args.tiny else 64

    print(f"building catalog over {n_rows:,} rows ...")
    catalog, workload = _build_catalog(n_rows, n_partitions)

    uncached = ServingEngine(catalog, cache_size=0)
    start = time.perf_counter()
    for query in workload:
        uncached.execute(query)
    sequential_seconds = time.perf_counter() - start

    start = time.perf_counter()
    uncached.execute_batch(workload)
    batch_seconds = time.perf_counter() - start

    warm = ServingEngine(catalog)
    warm.execute_batch(workload)
    start = time.perf_counter()
    warm.execute_batch(workload)
    warm_seconds = time.perf_counter() - start

    n = len(workload)
    sequential_qps = n / sequential_seconds
    batch_qps = n / batch_seconds
    warm_qps = n / max(warm_seconds, 1e-9)
    speedup = warm_qps / sequential_qps
    print(
        f"sequential uncached: {sequential_qps:,.0f} q/s | "
        f"batch uncached: {batch_qps:,.0f} q/s | "
        f"warm-cache batch: {warm_qps:,.0f} q/s | warm speedup: {speedup:.1f}x"
    )

    if args.json:
        metrics = {
            "serving_sequential_uncached_qps": {
                "value": sequential_qps,
                "direction": "higher",
            },
            "serving_batch_uncached_qps": {"value": batch_qps, "direction": "higher"},
            "serving_warm_batch_speedup": {"value": speedup, "direction": "higher"},
        }
        Path(args.json).write_text(json.dumps({"metrics": metrics}, indent=2))
        print(f"wrote {args.json}")
    return 0


def test_warm_batch_vs_sequential_uncached_speedup(catalog, workload):
    """Warm-cache batch serving must beat sequential uncached by >= 5x."""
    uncached = ServingEngine(catalog, cache_size=0)
    start = time.perf_counter()
    for query in workload:
        uncached.execute(query)
    sequential_seconds = time.perf_counter() - start

    warm = ServingEngine(catalog)
    warm.execute_batch(workload)  # warm the cache
    start = time.perf_counter()
    warm.execute_batch(workload)
    warm_seconds = time.perf_counter() - start

    sequential_qps = len(workload) / sequential_seconds
    warm_qps = len(workload) / max(warm_seconds, 1e-9)
    speedup = warm_qps / sequential_qps
    print(
        f"\nsequential uncached: {sequential_qps:,.0f} q/s | "
        f"warm-cache batch: {warm_qps:,.0f} q/s | speedup: {speedup:.1f}x"
    )
    assert speedup >= 5.0, f"warm batch path only {speedup:.1f}x faster"


if __name__ == "__main__":
    raise SystemExit(main())
