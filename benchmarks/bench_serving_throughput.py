"""Serving-layer throughput: batch vs sequential, cold vs warm cache.

These benchmarks measure what a deployment sizes against: queries/second
through the :class:`~repro.serving.engine.ServingEngine` front end.  Four
paths are compared on the same workload:

* sequential execution with the result cache disabled (the baseline — one
  MCF lookup plus per-leaf mask evaluation per query);
* batch execution with the cache disabled (vectorized mask evaluation);
* sequential execution against a warm cache;
* batch execution against a warm cache (the production fast path).

``test_warm_batch_vs_sequential_uncached_speedup`` asserts the serving
layer's headline property: warm-cache batch throughput at least 5x the
sequential uncached path.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.builder import build_pass
from repro.core.config import PASSConfig
from repro.data.loaders import DatasetSpec, load_dataset
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery
from repro.serving.catalog import SynopsisCatalog
from repro.serving.engine import ServingEngine

N_ROWS = 60_000
N_QUERIES = 300


@pytest.fixture(scope="module")
def intel_spec() -> DatasetSpec:
    return load_dataset("intel", N_ROWS)


@pytest.fixture(scope="module")
def catalog(intel_spec) -> SynopsisCatalog:
    synopsis = build_pass(
        intel_spec.table,
        intel_spec.value_column,
        [intel_spec.default_predicate_column],
        PASSConfig(n_partitions=64, sample_rate=0.005, opt_sample_size=1000, seed=0),
    )
    catalog = SynopsisCatalog()
    catalog.register("intel_light", synopsis, table_name=intel_spec.table.name)
    catalog.register_table(intel_spec.table)
    return catalog


@pytest.fixture(scope="module")
def workload(intel_spec) -> list[AggregateQuery]:
    rng = np.random.default_rng(0)
    times = intel_spec.table.column(intel_spec.default_predicate_column)
    low, high = float(times.min()), float(times.max())
    queries = []
    for _ in range(N_QUERIES // 3):
        a, b = sorted(rng.uniform(low, high, size=2))
        predicate = RectPredicate.from_bounds(time=(float(a), float(b)))
        for agg in ("SUM", "COUNT", "AVG"):
            queries.append(AggregateQuery(agg, intel_spec.value_column, predicate))
    return queries


def test_sequential_uncached_throughput(benchmark, catalog, workload):
    engine = ServingEngine(catalog, cache_size=0)

    def run():
        for query in workload:
            engine.execute(query)

    benchmark(run)


def test_batch_uncached_throughput(benchmark, catalog, workload):
    engine = ServingEngine(catalog, cache_size=0)
    benchmark(engine.execute_batch, workload)


def test_sequential_warm_cache_throughput(benchmark, catalog, workload):
    engine = ServingEngine(catalog)
    for query in workload:
        engine.execute(query)

    def run():
        for query in workload:
            engine.execute(query)

    benchmark(run)


def test_batch_warm_cache_throughput(benchmark, catalog, workload):
    engine = ServingEngine(catalog)
    engine.execute_batch(workload)
    benchmark(engine.execute_batch, workload)


def test_warm_batch_vs_sequential_uncached_speedup(catalog, workload):
    """Warm-cache batch serving must beat sequential uncached by >= 5x."""
    uncached = ServingEngine(catalog, cache_size=0)
    start = time.perf_counter()
    for query in workload:
        uncached.execute(query)
    sequential_seconds = time.perf_counter() - start

    warm = ServingEngine(catalog)
    warm.execute_batch(workload)  # warm the cache
    start = time.perf_counter()
    warm.execute_batch(workload)
    warm_seconds = time.perf_counter() - start

    sequential_qps = len(workload) / sequential_seconds
    warm_qps = len(workload) / max(warm_seconds, 1e-9)
    speedup = warm_qps / sequential_qps
    print(
        f"\nsequential uncached: {sequential_qps:,.0f} q/s | "
        f"warm-cache batch: {warm_qps:,.0f} q/s | speedup: {speedup:.1f}x"
    )
    assert speedup >= 5.0, f"warm batch path only {speedup:.1f}x faster"
