"""Distributed-layer benchmarks: parallel build speedup and scatter-gather latency.

Two measurements back the distributed subsystem's claims:

1. **Parallel build speedup** — wall-clock time to build the per-shard
   synopses of a fixed shard plan with 1, 2, and 4 process workers.  The
   per-shard work is embarrassingly parallel, so on a multi-core machine the
   speedup at 4 workers should exceed 1.5x (``--check`` asserts it; the
   assertion is skipped on machines with fewer than 2 cores, where no
   speedup is physically possible).
2. **Scatter-gather latency vs shard count** — per-query latency of a mixed
   SUM / COUNT / AVG workload through :meth:`ShardedSynopsis.query` and the
   batched :meth:`ShardedSynopsis.query_batch`, across increasing shard
   counts, with the shard-pruning rate recorded alongside.

Run standalone::

    python benchmarks/bench_distributed.py            # full: 1M rows
    python benchmarks/bench_distributed.py --tiny     # CI smoke: seconds
    python benchmarks/bench_distributed.py --check    # assert the speedup

(The other ``bench_*`` files are pytest-benchmark suites; this one is a
plain script so CI can smoke-test the multi-process path directly.)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core.config import PASSConfig
from repro.data.table import Table
from repro.distributed.parallel import ParallelBuilder
from repro.distributed.planner import ShardPlanner
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery

KEY_HIGH = 1000.0


def generate_table(n_rows: int, seed: int = 0) -> Table:
    """A generated table with keyed structure in the aggregation column."""
    rng = np.random.default_rng(seed)
    key = rng.uniform(0.0, KEY_HIGH, size=n_rows)
    value = np.abs(rng.normal(50.0, 15.0, size=n_rows) + 0.05 * key)
    return Table({"key": key, "value": value}, name="bench_distributed")


def make_workload(n_queries: int, seed: int = 1) -> list[AggregateQuery]:
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(n_queries // 3 + 1):
        low, high = sorted(rng.uniform(0.0, KEY_HIGH, size=2))
        predicate = RectPredicate.from_bounds(key=(float(low), float(high)))
        for agg in ("SUM", "COUNT", "AVG"):
            queries.append(AggregateQuery(agg, "value", predicate))
    return queries[:n_queries]


def bench_build_speedup(
    table: Table, config: PASSConfig, n_shards: int, worker_counts: list[int]
) -> dict[int, float]:
    """Wall-clock build seconds of the same shard plan per worker count."""
    plan = ShardPlanner(n_shards, "range").plan(table, "key")
    seconds: dict[int, float] = {}
    print(f"\n== Parallel build: {table.n_rows:,} rows, {plan.n_shards} shards ==")
    for workers in worker_counts:
        builder = ParallelBuilder(max_workers=workers, executor="process")
        start = time.perf_counter()
        sharded = builder.build(plan, "value", ["key"], config)
        elapsed = time.perf_counter() - start
        seconds[workers] = elapsed
        assert sharded.population_size == table.n_rows
        speedup = seconds[worker_counts[0]] / elapsed
        print(
            f"  workers={workers}: {elapsed:7.2f}s"
            f"  (speedup vs {worker_counts[0]} worker"
            f"{'s' if worker_counts[0] > 1 else ''}: {speedup:.2f}x)"
        )
    return seconds


def _timed(run) -> float:
    start = time.perf_counter()
    run()
    return time.perf_counter() - start


def bench_scatter_gather(
    table: Table,
    config: PASSConfig,
    shard_counts: list[int],
    n_queries: int,
) -> list[dict]:
    """Per-query scatter-gather latency and pruning rate per shard count."""
    workload = make_workload(n_queries)
    rows = []
    print(f"\n== Scatter-gather latency: {n_queries} queries ==")
    print(f"  {'shards':>6} {'seq ms/q':>10} {'batch ms/q':>11} {'pruned %':>9}")
    for n_shards in shard_counts:
        sharded = ParallelBuilder(executor="serial").build(
            ShardPlanner(n_shards, "range").plan(table, "key"),
            "value",
            ["key"],
            config,
        )
        # Best of 3 passes: single-shot timings of a small workload are
        # noise-dominated on shared CI runners, and the perf gate tracks them.
        sequential_seconds = min(
            _timed(lambda: [sharded.query(query) for query in workload])
            for _ in range(3)
        )
        sequential_ms = sequential_seconds / len(workload) * 1e3
        batch_seconds = min(
            _timed(lambda: sharded.query_batch(workload)) for _ in range(3)
        )
        batch_ms = batch_seconds / len(workload) * 1e3

        scanned = sum(len(sharded.surviving_shards(q)) for q in workload)
        pruned = 1.0 - scanned / (len(workload) * sharded.n_shards)
        rows.append(
            {
                "shards": sharded.n_shards,
                "sequential_ms": sequential_ms,
                "batch_ms": batch_ms,
                "pruned_fraction": pruned,
            }
        )
        print(
            f"  {sharded.n_shards:>6} {sequential_ms:>10.3f} {batch_ms:>11.3f}"
            f" {100 * pruned:>8.1f}%"
        )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rows", type=int, default=1_000_000, help="table size (default 1M)"
    )
    parser.add_argument(
        "--queries", type=int, default=120, help="workload size for the latency sweep"
    )
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="CI smoke configuration: a few thousand rows, seconds of runtime",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="assert build speedup > 1.5x at 4 workers (multi-core machines only)",
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="OUT",
        help="write perf-gate metrics (see benchmarks/perf_gate.py) to OUT",
    )
    args = parser.parse_args(argv)

    if args.tiny:
        n_rows, worker_counts, shard_counts, n_queries = (
            20_000,
            [1, 2],
            [1, 2, 4],
            30,
        )
        config = PASSConfig(
            n_partitions=16, sample_rate=0.01, opt_sample_size=500, seed=0
        )
    else:
        n_rows, worker_counts, shard_counts, n_queries = (
            args.rows,
            [1, 2, 4],
            [1, 2, 4, 8],
            args.queries,
        )
        config = PASSConfig(
            n_partitions=64, sample_rate=0.005, opt_sample_size=2000, seed=0
        )

    print(f"generating {n_rows:,} rows ...")
    table = generate_table(n_rows)

    build_seconds = bench_build_speedup(
        table, config, max(worker_counts), worker_counts
    )
    scatter_rows = bench_scatter_gather(table, config, shard_counts, n_queries)

    if args.json:
        widest = scatter_rows[-1]
        metrics = {
            "distributed_batch_ms_per_query": {
                "value": widest["batch_ms"],
                "direction": "lower",
            },
            "distributed_batch_vs_sequential_speedup": {
                "value": widest["sequential_ms"] / widest["batch_ms"],
                "direction": "higher",
            },
            "distributed_pruned_fraction": {
                "value": widest["pruned_fraction"],
                "direction": "higher",
            },
        }
        Path(args.json).write_text(json.dumps({"metrics": metrics}, indent=2))
        print(f"wrote {args.json}")

    max_workers = max(worker_counts)
    speedup = build_seconds[worker_counts[0]] / build_seconds[max_workers]
    cores = os.cpu_count() or 1
    print(
        f"\nbuild speedup at {max_workers} workers: {speedup:.2f}x "
        f"({cores} core{'s' if cores != 1 else ''} available)"
    )
    if args.check:
        if cores < 2:
            print("single-core machine: speedup check skipped")
        elif speedup <= 1.5:
            print(f"FAIL: expected speedup > 1.5x, measured {speedup:.2f}x")
            return 1
        else:
            print("speedup check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
