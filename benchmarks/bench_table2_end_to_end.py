"""Benchmark regenerating Table 2: end-to-end comparison with VerdictDB / DeepDB.

Paper reference: Table 2 — PASS-BSS1x/2x/10x vs VerdictDB scrambles (10% and
100%) vs DeepDB models (10% and 100% training data): query latency, storage,
construction time, and median relative error on the 1-D workloads plus the
NYC 2D-5D templates.
"""

from __future__ import annotations

from conftest import run_once

from repro.evaluation.experiments import table2_end_to_end


def test_table2_end_to_end(benchmark, scale):
    run_once(
        benchmark,
        table2_end_to_end,
        n_rows=scale["n_rows_sweep"],
        n_queries=scale["n_queries_multidim"],
        sample_rate=scale["sample_rate"],
        n_partitions=scale["n_partitions"],
        kd_leaves=scale["kd_leaves"],
    )
