"""Streaming updates: keep a PASS synopsis consistent under inserts and deletes.

Section 4.5 of the paper describes how PASS handles dynamic data: new tuples
are routed to their leaf partition, the aggregates on the root-to-leaf path
are updated in O(height) time, and the leaf's stratified sample is maintained
with reservoir sampling.  This example simulates a live sensor feed appending
readings to the Intel-Wireless-like table and shows that query answers track
the growing data without rebuilding the synopsis.

Run with::

    python examples/streaming_updates.py
"""

from __future__ import annotations

import numpy as np

from repro import AggregateQuery, ExactEngine, PASSConfig, RectPredicate, load_dataset
from repro.core.updates import DynamicPASS
from repro.data.table import Table

N_ROWS = 50_000
N_INSERTS = 5_000


def main() -> None:
    dataset = load_dataset("intel", n_rows=N_ROWS)
    table = dataset.table
    rng = np.random.default_rng(7)

    dynamic = DynamicPASS(
        table,
        dataset.value_column,
        [dataset.default_predicate_column],
        config=PASSConfig(
            n_partitions=32, sample_rate=0.01, partitioner="equal", seed=0
        ),
        rng=0,
    )
    print(
        f"Initial synopsis over {dynamic.population_size} rows "
        f"({dynamic.synopsis.n_partitions} partitions)."
    )

    # The monitored query: afternoon light levels.
    query = AggregateQuery.sum("light", RectPredicate.from_bounds(time=(0.5, 0.8)))
    before = dynamic.query(query)
    print(f"Before updates: estimate {before.estimate:,.0f}")

    # Simulate a stream of new afternoon readings from a bright new sensor.
    new_rows = []
    for _ in range(N_INSERTS):
        row = {
            "time": float(rng.uniform(0.5, 0.8)),
            "sensor_id": 99.0,
            "light": float(np.abs(rng.normal(700.0, 40.0))),
            "temperature": 25.0,
            "humidity": 40.0,
            "voltage": 2.6,
        }
        dynamic.insert(row)
        new_rows.append(row)
    print(
        f"Inserted {N_INSERTS} new readings "
        f"(updates since build: {dynamic.updates_since_build})."
    )

    after = dynamic.query(query)
    # Ground truth over the concatenation of the old table and the new rows.
    appended = Table(
        {
            column: np.concatenate(
                [table.column(column), np.array([row[column] for row in new_rows])]
            )
            for column in table.column_names
        }
    )
    truth = ExactEngine(appended).execute(query)
    print(f"After updates : estimate {after.estimate:,.0f} (exact {truth:,.0f})")
    print(f"Relative error after streaming inserts: {after.relative_error(truth):.3%}")

    # Delete a slice of the new readings again.
    for row in new_rows[:1_000]:
        dynamic.delete(row)
    print(f"Deleted 1000 readings; population now {dynamic.population_size} rows.")
    print(
        "When updates accumulate, `DynamicPASS.rebuild(table)` re-runs the "
        "partitioning optimizer from a fresh snapshot."
    )


if __name__ == "__main__":
    main()
