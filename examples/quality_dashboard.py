"""Quality dashboard: online accuracy auditing, bound calibration, and drift.

Builds a serving deployment with an :class:`~repro.obs.audit.AccuracyAuditor`
attached, serves a workload matching the build-time assumptions, then shifts
traffic to a hot corner of the key space and streams extremum deletions.
The quality layer turns all of that into numbers:

1. per-synopsis scorecards — audited relative error percentiles,
   certified-bound coverage (must stay 1.0: the bounds are *hard*),
   bound-tightness ratio, and staleness gauges;
2. workload-drift scores against the build-time fingerprint, with the hot
   ranges traffic moved into;
3. the catalog health rollup (``healthy`` / ``degraded`` / ``violating``)
   that a scraper alerts on via ``repro_quality_health``.

Run with::

    python examples/quality_dashboard.py

``--check`` switches to CI mode: no dumps, strict assertions on coverage,
drift and staleness signals, exposition validity, non-zero exit on any
violation.  ``--json PATH`` writes the full quality report (scorecards,
drift reports, health) as JSON — the nightly pipeline archives this.
"""

import argparse
import asyncio
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core.config import PASSConfig
from repro.core.updates import DynamicPASS
from repro.data.table import Table
from repro.obs import Observability, validate_exposition
from repro.obs.audit import AccuracyAuditor
from repro.obs.drift import WorkloadDriftDetector, WorkloadFingerprint
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery
from repro.serving import AsyncServingEngine, ServingEngine, SynopsisCatalog

N_ROWS = 20_000
TIME_DOMAIN = (0.0, 100.0)
N_MATCHED = 48
N_SHIFTED = 96
N_STAMPEDE = 24
DRIFT_THRESHOLD = 0.35


def build_engine(obs: Observability) -> ServingEngine:
    rng = np.random.default_rng(7)
    table = Table(
        {
            "time": rng.uniform(*TIME_DOMAIN, size=N_ROWS),
            "power": np.abs(rng.normal(40.0, 12.0, size=N_ROWS)),
        },
        name="sensors",
    )
    synopsis = DynamicPASS(
        table,
        "power",
        ["time"],
        PASSConfig(n_partitions=32, sample_rate=0.02, opt_sample_size=400, seed=0),
    )
    catalog = SynopsisCatalog()
    catalog.register("sensors_power", synopsis, table_name="sensors")
    catalog.register_table(table)
    return ServingEngine(catalog, vectorized_batches=True, obs=obs)


def matched_queries(rng: np.random.Generator, count: int) -> list[AggregateQuery]:
    """Broad ranges across the whole domain — the build-time traffic shape."""
    queries = []
    for _ in range(count):
        low = float(rng.uniform(0.0, 70.0))
        span = float(rng.uniform(10.0, 30.0))
        predicate = RectPredicate.from_bounds(time=(low, low + span))
        queries.append(AggregateQuery("SUM", "power", predicate))
    return queries


def shifted_queries(rng: np.random.Generator, count: int) -> list[AggregateQuery]:
    """Narrow ranges crammed into the top decile — drifted traffic."""
    queries = []
    for _ in range(count):
        low = float(rng.uniform(90.0, 98.0))
        predicate = RectPredicate.from_bounds(time=(low, low + 1.5))
        queries.append(AggregateQuery("SUM", "power", predicate))
    return queries


async def serve_workload(
    engine: ServingEngine, auditor: AccuracyAuditor
) -> WorkloadFingerprint:
    """Matched phase, then drifted phase with streaming extremum deletions."""
    rng = np.random.default_rng(11)
    matched = matched_queries(rng, N_MATCHED)
    baseline = WorkloadFingerprint.from_boxes(
        [query.predicate.canonical_key() for query in matched],
        {"time": TIME_DOMAIN},
    )
    table = engine.catalog.exact_engine("sensors").table
    times = table.column("time")
    powers = table.column("power")
    async with AsyncServingEngine(engine, batch_window=0.002) as tier:
        await asyncio.gather(*(tier.execute(q) for q in matched))
        # A stampede: the coalesced leader's offer carries the joiner weight.
        hot = matched[0]
        await asyncio.gather(*(tier.execute(hot) for _ in range(N_STAMPEDE)))
        # Drifted traffic plus deletions of the current power extrema — the
        # deletions leave MIN/MAX node stats conservative, which the
        # extrema-staleness gauge surfaces without any warning capture.
        order = np.argsort(powers)[::-1]
        for index in order[:3]:
            await tier.delete(
                "sensors_power",
                {"time": float(times[index]), "power": float(powers[index])},
            )
        await asyncio.gather(
            *(tier.execute(q) for q in shifted_queries(rng, N_SHIFTED))
        )
    auditor.flush()
    return baseline


def quality_report(
    obs: Observability, engine: ServingEngine, baseline: WorkloadFingerprint
) -> dict:
    """Scorecards + drift reports + health, JSON-ready."""
    detector = WorkloadDriftDetector(
        {"sensors_power": baseline},
        quality=obs.quality,
        threshold=DRIFT_THRESHOLD,
    )
    reports = detector.observe(obs.query_log)
    return {
        "health": engine.health(),
        "quality": obs.quality.snapshot(),
        "drift": {name: report.as_dict() for name, report in reports.items()},
    }


def check(report: dict, obs: Observability) -> int:
    """CI mode: assert every quality signal fired; 0 on success."""
    failures: list[str] = []
    card = report["quality"]["scorecards"].get("sensors_power")
    if card is None:
        failures.append("no scorecard for sensors_power")
        card = {}
    if card.get("audits", 0) <= 0:
        failures.append("auditor recorded no audits")
    if card.get("bound_violations", 0) != 0:
        failures.append(f"bound violations: {card.get('bound_violations')}")
    coverage = card.get("coverage_rate")
    if coverage != 1.0:
        failures.append(f"certified-bound coverage {coverage!r} != 1.0")
    if card.get("extrema_staleness", 0.0) <= 0.0:
        failures.append("extremum deletions did not raise extrema_staleness")
    drift = report["drift"].get("sensors_power", {})
    if drift.get("score", 0.0) < DRIFT_THRESHOLD:
        failures.append(f"drift score {drift.get('score')} below threshold")
    if not drift.get("recommend_rebuild"):
        failures.append("drifted workload did not trigger a rebuild recommendation")
    if report["health"]["status"] == "healthy":
        failures.append("health rollup stayed healthy despite drift + staleness")
    if report["health"]["status"] == "violating":
        failures.append("health rollup reports bound violations")

    try:
        families = validate_exposition(obs.prometheus_text())
    except Exception as exc:  # noqa: BLE001 - report, don't crash CI opaquely
        families = {}
        failures.append(f"exposition invalid: {exc}")
    for family in (
        "repro_quality_audits_total",
        "repro_quality_bound_violations_total",
        "repro_quality_coverage_rate",
        "repro_quality_error_p95",
        "repro_quality_drift_score",
        "repro_quality_health",
        "repro_audit_sampled_total",
        "repro_audit_rel_error",
        "repro_synopsis_staleness",
    ):
        if family not in families:
            failures.append(f"metric family missing from exposition: {family}")

    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print(
            f"quality check OK: {card['audits']} audits, coverage "
            f"{coverage}, drift {drift['score']:.3f}, "
            f"health {report['health']['status']}"
        )
    return 1 if failures else 0


def dump(report: dict) -> None:
    """Interactive mode: the quality report, human-readable."""
    print("=" * 72)
    print("Scorecards")
    print("=" * 72)
    for name, card in report["quality"]["scorecards"].items():
        print(f"{name}:")
        for key in sorted(card):
            print(f"  {key}: {card[key]}")
    print()
    print("=" * 72)
    print("Drift")
    print("=" * 72)
    for name, drift in report["drift"].items():
        print(json.dumps({name: drift}, indent=2))
    print()
    print(f"health rollup: {report['health']}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI mode: assert quality signals and exposition, exit non-zero",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write the full quality report as JSON to PATH",
    )
    options = parser.parse_args()

    obs = Observability()
    engine = build_engine(obs)
    auditor = AccuracyAuditor(engine, sample_every=2, max_rate=None)
    try:
        baseline = asyncio.run(serve_workload(engine, auditor))
        report = quality_report(obs, engine, baseline)
    finally:
        auditor.stop()

    if options.json:
        Path(options.json).write_text(json.dumps(report, indent=2, default=str))
        print(f"wrote {options.json}")
    if options.check:
        return check(report, obs)
    dump(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
