"""Sensor dashboard scenario: compare AQP synopses for interactive analytics.

The paper's motivating use case is interactive exploration over large sensor
or log tables, where exact answers are unnecessary but reliability matters.
This example mimics a dashboard issuing many time-range queries against the
Intel-Wireless-like dataset and compares four synopses under the same
per-query sampling budget:

* uniform sampling (US),
* equal-depth stratified sampling (ST),
* AQP++ (precomputed aggregates + a uniform sample for the gap), and
* PASS.

It reports the median relative error, the median CI ratio, the mean number of
sample tuples touched per query (the latency proxy), and how often the 99%
intervals actually contain the truth.

Run with::

    python examples/sensor_dashboard.py
"""

from __future__ import annotations

from repro import ExactEngine, PASSConfig, build_pass, load_dataset
from repro.baselines import AQPPlusPlus
from repro.evaluation.metrics import evaluate_workload
from repro.evaluation.reporting import format_table
from repro.query.workload import random_range_queries
from repro.sampling.stratified import StratifiedSampleSynopsis, equal_depth_boxes
from repro.sampling.uniform import UniformSampleSynopsis

N_ROWS = 100_000
N_QUERIES = 300
SAMPLE_RATE = 0.005
N_PARTITIONS = 64


def main() -> None:
    dataset = load_dataset("intel", n_rows=N_ROWS)
    table = dataset.table
    value, key = dataset.value_column, dataset.default_predicate_column
    engine = ExactEngine(table)

    workload = random_range_queries(
        table, value, [key], n_queries=N_QUERIES, agg="SUM", rng=1,
        min_fraction=0.02, max_fraction=0.5,
    )
    truths = [engine.execute(query) for query in workload.queries]
    print(
        f"Dashboard workload: {len(workload)} SUM queries over '{key}' on {table.name}"
    )

    synopses = {
        "US": UniformSampleSynopsis(
            table, value, [key], sample_rate=SAMPLE_RATE, rng=0
        ),
        "ST": StratifiedSampleSynopsis(
            table, value, [key],
            equal_depth_boxes(table, key, N_PARTITIONS),
            sample_rate=SAMPLE_RATE, rng=0,
        ),
        "AQP++": AQPPlusPlus(
            table,
            value,
            [key],
            n_partitions=N_PARTITIONS,
            sample_rate=SAMPLE_RATE,
            rng=0,
        ),
        "PASS": build_pass(
            table, value, [key],
            PASSConfig(n_partitions=N_PARTITIONS, sample_rate=SAMPLE_RATE, seed=0),
        ),
    }

    rows = []
    for name, synopsis in synopses.items():
        metrics = evaluate_workload(synopsis, workload.queries, engine, truths)
        rows.append(
            (
                name,
                metrics.median_relative_error,
                metrics.median_ci_ratio,
                metrics.mean_tuples_processed,
                metrics.ci_coverage,
            )
        )
    print()
    print(
        format_table(
            (
                "Synopsis",
                "Median rel err",
                "Median CI ratio",
                "Samples/query",
                "CI coverage",
            ),
            rows,
        )
    )
    print(
        "\nPASS answers the fully-covered part of every range exactly and only "
        "samples the two boundary partitions, which is why it achieves the "
        "lowest error at the same per-query budget."
    )


if __name__ == "__main__":
    main()
