"""Serving quickstart: build a synopsis catalog, persist it, reload, and serve.

Run with::

    python examples/serving_quickstart.py

The script walks the full serving lifecycle:

1. build a static PASS synopsis and a dynamic (update-accepting) one;
2. register both in a :class:`SynopsisCatalog` with an exact-scan fallback;
3. save the catalog to disk and load it back (simulating a process restart);
4. serve a query workload through the :class:`ServingEngine` — sequentially,
   then as a batch against the warm result cache;
5. apply streaming updates through the engine and show the cache
   invalidation and staleness telemetry.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    AggregateQuery,
    DynamicPASS,
    PASSConfig,
    RectPredicate,
    ServingEngine,
    SynopsisCatalog,
    build_pass,
    load_catalog,
    load_dataset,
    save_catalog,
)


def main() -> None:
    # 1. Build two synopses over the Intel-Wireless surrogate: a static one
    #    for light readings and a dynamic one that accepts inserts/deletes.
    dataset = load_dataset("intel", n_rows=100_000)
    table = dataset.table
    config = PASSConfig(n_partitions=64, sample_rate=0.005, seed=0)
    static = build_pass(table, "light", ["time"], config)
    dynamic = DynamicPASS(table, "temperature", ["time"], config)
    print(f"Built 2 synopses over {table.name} ({table.n_rows} rows)")

    # 2. Register them in a catalog.  The router sends each query to the
    #    best-matching synopsis; the registered table is the exact fallback.
    catalog = SynopsisCatalog()
    catalog.register("light_by_time", static, table_name=table.name)
    catalog.register("temp_by_time", dynamic, table_name=table.name)
    catalog.register_table(table)

    # 3. Persist and reload — builds survive process restarts.
    directory = Path(tempfile.mkdtemp()) / "catalog"
    save_catalog(catalog, directory)
    catalog = load_catalog(directory, tables={table.name: table})
    print(f"Saved and reloaded catalog from {directory}")

    # 4. Serve a workload.  The engine caches results on the canonical query
    #    form, so the second (batched) pass is answered from memory.
    engine = ServingEngine(catalog)
    rng = np.random.default_rng(7)
    times = table.column("time")
    queries = []
    for _ in range(50):
        low, high = sorted(rng.uniform(times.min(), times.max(), size=2))
        predicate = RectPredicate.from_bounds(time=(float(low), float(high)))
        queries.append(AggregateQuery.sum("light", predicate))
        queries.append(AggregateQuery.avg("temperature", predicate))

    for query in queries[:4]:
        result = engine.execute(query)
        print(
            f"  {query.agg.value}({query.value_column}) -> "
            f"{result.estimate:,.1f} +/- {result.ci_half_width:,.1f}"
        )
    engine.execute_batch(queries)  # cold misses execute with shared mask work
    engine.execute_batch(queries)  # warm: served from the result cache

    # 5. Stream updates through the engine: it takes the write lock, applies
    #    the update, and drops exactly the cached results whose region the
    #    update touched.
    for _ in range(100):
        engine.insert(
            "temp_by_time",
            {
                "time": float(rng.uniform(times.min(), times.max())),
                "temperature": float(rng.normal(22.0, 3.0)),
            },
        )
    print(f"Cache after updates: {engine.cache_info()}")

    print("Serving telemetry:")
    for name, snapshot in engine.stats().items():
        print(
            f"  {name}: {snapshot.queries} queries, "
            f"hit rate {snapshot.hit_rate:.0%}, "
            f"p50 {snapshot.p50_latency_ms:.3f} ms, "
            f"p99 {snapshot.p99_latency_ms:.3f} ms, "
            f"staleness {snapshot.staleness:.4f}, "
            f"{snapshot.invalidations} invalidations"
        )


if __name__ == "__main__":
    main()
