"""Multi-dimensional predicates and workload shift on the NYC-taxi-like data.

Section 5.4 of the paper evaluates PASS with k-d tree partitionings when
queries constrain several predicate columns (1D to 5D templates), and shows
that a synopsis built for one template keeps helping other templates that
share attributes ("workload shift").  This example reproduces both behaviours
at a small scale:

1. build KD-PASS over (pickup_time, pickup_date) with 256 leaves;
2. answer query templates of increasing dimensionality;
3. report accuracy and the fraction of tuples skipped per template.

Run with::

    python examples/taxi_multidim.py
"""

from __future__ import annotations

from repro import ExactEngine, PASSConfig, build_pass, load_dataset
from repro.evaluation.metrics import evaluate_workload, nan_mean
from repro.evaluation.reporting import format_table
from repro.partitioning.kdtree import kd_partition
from repro.query.workload import template_queries

N_ROWS = 100_000
N_LEAVES = 256
N_QUERIES = 150
SAMPLE_RATE = 0.005
BUILT_DIMENSIONS = 2


def main() -> None:
    dataset = load_dataset("nyc", n_rows=N_ROWS)
    table = dataset.table
    engine = ExactEngine(table)
    built_columns = list(dataset.predicate_columns[:BUILT_DIMENSIONS])
    print(
        f"Building KD-PASS over {built_columns} with {N_LEAVES} leaves "
        f"({table.n_rows} rows)..."
    )

    # Partition on the 2-D template, but keep every predicate column inside the
    # leaf samples so higher-dimensional predicates remain answerable.
    partitioning = kd_partition(
        table,
        dataset.value_column,
        built_columns,
        N_LEAVES,
        policy="max_variance",
        rng=0,
    )
    synopsis = build_pass(
        table,
        dataset.value_column,
        list(dataset.predicate_columns),
        PASSConfig(
            n_partitions=N_LEAVES, sample_rate=SAMPLE_RATE, partitioner="kd", seed=0
        ),
        leaf_boxes=partitioning.boxes,
    )
    print(
        f"Synopsis ready: {synopsis.n_partitions} leaves, "
        f"{synopsis.sample_size} stored samples."
    )

    rows = []
    for dims in range(1, len(dataset.predicate_columns) + 1):
        workload = template_queries(
            table,
            dataset.value_column,
            dataset.predicate_columns,
            n_dimensions=dims,
            n_queries=N_QUERIES,
            agg="SUM",
            rng=dims,
        )
        truths = [engine.execute(query) for query in workload.queries]
        metrics = evaluate_workload(synopsis, workload.queries, engine, truths)
        skip = nan_mean(synopsis.skip_rate(query) for query in workload.queries)
        rows.append(
            (
                f"{dims}D",
                metrics.median_relative_error,
                metrics.median_ci_ratio,
                skip,
            )
        )

    print()
    print(
        format_table(
            ("Template", "Median rel err", "Median CI ratio", "Mean skip rate"), rows
        )
    )
    print(
        "\nEven though the partitioning only spans the first two predicate "
        "columns, templates that share those columns still benefit from "
        "aggressive data skipping — the workload-shift behaviour of Figure 9."
    )


if __name__ == "__main__":
    main()
