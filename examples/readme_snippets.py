"""Executes the README's code blocks so the quickstarts can never go stale.

Each section below is the corresponding README snippet, verbatim up to the
small amounts of scaffolding a standalone script needs (a temp directory
instead of a literal path, a generated table for the distributed snippet,
reduced row counts).  CI runs this with ``--check``; if a README block
drifts from the current API this script breaks, and the README section it
mirrors is named in the failure.

Run standalone::

    python examples/readme_snippets.py [--check]
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np


def quickstart_and_serving() -> None:
    """README 'Quickstart': build, query, persist, serve."""
    from repro import (
        AggregateQuery,
        PASSConfig,
        RectPredicate,
        ServingEngine,
        SynopsisCatalog,
        build_pass,
        load_catalog,
        load_dataset,
        save_catalog,
    )

    dataset = load_dataset("intel", n_rows=20_000)
    synopsis = build_pass(
        dataset.table,
        "light",
        ["time"],
        PASSConfig(n_partitions=64, sample_rate=0.005),
    )

    query = AggregateQuery.sum(
        "light", RectPredicate.from_bounds(time=(0.5, 2.0))
    )
    result = synopsis.query(query)
    assert result.hard_lower <= result.hard_upper

    catalog = SynopsisCatalog()
    catalog.register("light_by_time", synopsis, table_name=dataset.table.name)
    catalog.register_table(dataset.table)
    with tempfile.TemporaryDirectory() as catalog_dir:
        save_catalog(catalog, catalog_dir)
        engine = ServingEngine(
            load_catalog(catalog_dir, tables={dataset.table.name: dataset.table})
        )
        engine.execute(query)
        engine.execute_batch([query] * 100)
    print("quickstart + serving snippet ok")


def distributed() -> None:
    """README 'Distributed layer': sharded build + scatter-gather query."""
    from repro import AggregateQuery, PASSConfig, RectPredicate, build_sharded_pass
    from repro.data.table import Table

    rng = np.random.default_rng(0)
    table = Table(
        {
            "key": rng.uniform(0.0, 100.0, size=20_000),
            "value": np.abs(rng.normal(50.0, 15.0, size=20_000)),
        },
        name="sensors",
    )
    sharded = build_sharded_pass(
        table,
        "value",
        shard_column="key",
        n_shards=8,
        config=PASSConfig(n_partitions=32),
        dynamic=True,
        max_workers=8,
    )
    result = sharded.query(
        AggregateQuery.sum("value", RectPredicate.from_bounds(key=(10, 20)))
    )
    assert result.hard_lower <= result.estimate <= result.hard_upper
    print("distributed snippet ok")

    groupby(sharded, table)


def groupby(sharded, table) -> None:
    """README 'Group-by / multi-aggregate queries': compile + execute."""
    from repro.core.batching import grouped_query
    from repro.core.builder import build_pass
    from repro.query import AggregateSpec, GroupByQuery, GroupingColumn

    groupby_query = GroupByQuery(
        groupings=(GroupingColumn.bins("key", [0, 25, 50, 75, 100]),),
        aggregates=(
            AggregateSpec("SUM", "value"),
            AggregateSpec("COUNT", "value"),
            AggregateSpec("AVG", "value"),
        ),
    )
    grouped = sharded.query_grouped(groupby_query.compile())
    synopsis = build_pass(table, "value", ["key"])
    grouped_single = grouped_query(synopsis, groupby_query.compile(table))
    assert len(grouped) == len(grouped_single) == 4
    for labels, results in grouped:
        assert len(labels) == 1 and len(results) == 3
    print("groupby snippet ok")


def async_serving() -> None:
    """README 'Async serving': coalescing tier over the serving engine."""
    from repro import AggregateQuery, PASSConfig, RectPredicate
    from repro.data.table import Table
    from repro.serving import AsyncServingEngine, ServingEngine, SynopsisCatalog

    rng = np.random.default_rng(1)
    table = Table(
        {
            "time": rng.uniform(0.0, 100.0, size=10_000),
            "power": np.abs(rng.normal(40.0, 10.0, size=10_000)),
        },
        name="sensors",
    )
    from repro.core.updates import DynamicPASS

    dynamic = DynamicPASS(
        table, "power", ["time"], config=PASSConfig(n_partitions=32)
    )
    catalog = SynopsisCatalog()
    # `tier.insert` routes to the owning DynamicPASS, so the catalog entry
    # must be dynamic (a static synopsis raises TypeError on writes).
    catalog.register("sensors_power", dynamic, table_name="sensors")

    async def drive() -> None:
        dashboard_queries = [
            AggregateQuery.sum(
                "power", RectPredicate.from_bounds(time=(float(i), float(i + 10)))
            )
            for i in range(0, 50, 10)
        ]
        async with AsyncServingEngine(
            ServingEngine(catalog, vectorized_batches=True)
        ) as tier:
            await asyncio.gather(*(tier.execute(q) for q in dashboard_queries))
            await tier.insert("sensors_power", {"time": 20.0, "power": 55.0})

    asyncio.run(drive())
    print("async serving snippet ok")


def main(argv: list[str] | None = None) -> int:
    """Run every README snippet; any API drift raises."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on any snippet failure (CI mode; same behavior)",
    )
    parser.parse_args(argv)
    quickstart_and_serving()
    distributed()
    async_serving()
    print("all README snippets executed against the current API")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
