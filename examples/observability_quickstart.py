"""Observability quickstart: metrics, trace spans, and the structured query log.

Builds a small serving deployment with an enabled
:class:`~repro.obs.Observability` context, pushes a mixed async workload
through it (coalesced stampedes, distinct micro-batched queries, cache
hits, streaming updates), then prints what the instruments captured:

1. the Prometheus text exposition of every registered metric family;
2. the slowest request traces as rendered span trees — one ``serve.request``
   root per query, decomposed into cache probe, queue wait, batch window,
   plan compile, frontier descent, and vectorized execution;
3. the structured query-log tail: per-request outcome, predicate box,
   per-stage latencies, and error-bound width.

Run with::

    python examples/observability_quickstart.py

``--check`` switches to CI mode: no dumps, strict validation of the
exposition format and the span trees, non-zero exit on any violation.
"""

import argparse
import asyncio
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core.config import PASSConfig
from repro.core.updates import DynamicPASS
from repro.data.table import Table
from repro.obs import Observability, validate_exposition
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery
from repro.serving import AsyncServingEngine, ServingEngine, SynopsisCatalog

N_ROWS = 20_000
N_STAMPEDE = 32


def build_engine(obs: Observability) -> ServingEngine:
    rng = np.random.default_rng(7)
    table = Table(
        {
            "time": rng.uniform(0.0, 100.0, size=N_ROWS),
            "power": np.abs(rng.normal(40.0, 12.0, size=N_ROWS)),
        },
        name="sensors",
    )
    synopsis = DynamicPASS(
        table,
        "power",
        ["time"],
        PASSConfig(n_partitions=32, sample_rate=0.01, opt_sample_size=400, seed=0),
    )
    catalog = SynopsisCatalog()
    catalog.register("sensors_power", synopsis, table_name="sensors")
    catalog.register_table(table)
    return ServingEngine(catalog, vectorized_batches=True, obs=obs)


async def serve_workload(engine: ServingEngine) -> None:
    """A workload that exercises every instrumented code path."""
    rng = np.random.default_rng(11)
    hot = AggregateQuery("AVG", "power", RectPredicate.from_bounds(time=(10.0, 30.0)))
    async with AsyncServingEngine(engine, batch_window=0.002) as tier:
        # A stampede of identical queries: one leader, the rest coalesce.
        await asyncio.gather(*(tier.execute(hot) for _ in range(N_STAMPEDE)))
        # Distinct queries dispatch as vectorized micro-batches.
        distinct = []
        for _ in range(16):
            low = float(rng.uniform(0.0, 80.0))
            predicate = RectPredicate.from_bounds(time=(low, low + 15.0))
            for agg in ("SUM", "COUNT", "AVG"):
                distinct.append(AggregateQuery(agg, "power", predicate))
        await asyncio.gather(*(tier.execute(q) for q in distinct))
        # Cache hits: the stampede query is resident now.
        await tier.execute(hot)
        # A streaming write, serialized through the scheduler.
        await tier.insert("sensors_power", {"time": 20.0, "power": 41.5})
        await tier.execute(hot)


def check(obs: Observability) -> int:
    """CI mode: validate the exposition and the span trees; 0 on success."""
    failures: list[str] = []
    try:
        families = validate_exposition(obs.prometheus_text())
    except Exception as exc:  # noqa: BLE001 - report, don't crash CI opaquely
        families = {}
        failures.append(f"exposition invalid: {exc}")
    for family in (
        "repro_serving_cache_hits_total",
        "repro_serving_cache_misses_total",
        "repro_serving_query_latency_seconds",
        "repro_scheduler_batches_total",
        "repro_async_coalesced_total",
        "repro_catalog_route_total",
    ):
        if family not in families:
            failures.append(f"metric family missing from exposition: {family}")

    traces = obs.tracer.finished()
    if not traces:
        failures.append("no finished traces retained")
    executed = [
        t
        for t in traces
        if t.attributes.get("outcome") == "executed"
        and t.find("serving.execute_batch") is not None
    ]
    if not executed:
        failures.append("no executed request trace with a serving.execute_batch span")
    for root in executed[:1]:
        stage_ms = root.stage_durations_ms()
        # Fixed per-request stages are *stamped* onto the root (cheap dict
        # entries), while variable-depth engine work appears as child spans;
        # stage_durations_ms merges both views.
        for stage in ("cache.probe", "queue.wait"):
            if stage not in stage_ms:
                failures.append(f"stamped stage {stage!r} missing from a trace")
        for span_name in ("plan.compile", "frontier.descent"):
            if root.find(span_name) is None:
                failures.append(f"span {span_name!r} missing from an executed trace")
        child_ms = sum(stage_ms.values())
        if child_ms > root.duration_ms * 1.001:
            failures.append(
                f"stage durations exceed the root span: {child_ms:.3f} > "
                f"{root.duration_ms:.3f} ms"
            )

    records = obs.query_log.tail(obs.query_log.capacity)
    outcomes = {record.outcome for record in records}
    for expected in ("miss", "cache_hit", "coalesced"):
        if expected not in outcomes:
            failures.append(f"query-log outcome {expected!r} never recorded")
    if not any(record.predicate_box for record in records):
        failures.append("no query-log record carries a predicate box")
    # Concurrent duplicates are summarized: one ``coalesced`` record per
    # leader-with-joiners whose coalesced_waiters carries the join count.
    summarized = sum(
        record.coalesced_waiters
        for record in records
        if record.outcome == "coalesced"
    )
    if summarized < N_STAMPEDE - 1:
        failures.append(
            f"coalesce summaries cover {summarized} joiners, expected at "
            f"least {N_STAMPEDE - 1}"
        )

    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print(
            f"observability check OK: {len(families)} metric families, "
            f"{len(traces)} traces, {len(records)} query-log records"
        )
    return 1 if failures else 0


def dump(obs: Observability) -> None:
    """Interactive mode: show what the instruments captured."""
    print("=" * 72)
    print("Prometheus exposition")
    print("=" * 72)
    print(obs.prometheus_text())

    print("=" * 72)
    print("Slowest request traces")
    print("=" * 72)
    for root in obs.tracer.slowest(3):
        print(root.render())
        print()

    print("=" * 72)
    print("Query-log tail")
    print("=" * 72)
    for record in obs.query_log.tail(5):
        print(json.dumps(record.as_dict(), default=str))

    counts = obs.query_log.outcome_counts()
    print()
    print(f"outcomes: {counts}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI mode: validate exposition and span trees, exit non-zero on failure",
    )
    options = parser.parse_args()

    # Full-fidelity tracing: the serving default head-samples span trees
    # (1-in-64), which is right for production QPS but not for a demo that
    # wants to render every request's trace.
    obs = Observability(trace_sample_rate=1.0)
    engine = build_engine(obs)
    asyncio.run(serve_workload(engine))

    if options.check:
        return check(obs)
    dump(obs)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
