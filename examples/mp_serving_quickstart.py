"""Multi-process serving quickstart: shared memory, worker pool, HTTP.

Builds a small PASS synopsis, publishes its flat buffers into shared
memory once, and walks the full multi-process serving story:

1. a spawn-based worker pool answers queries over zero-copy read-only
   views — bit-identical to the in-process ``ServingEngine``;
2. the owner republishes a rebuilt synopsis; workers notice the epoch
   flip and re-attach without ever serving a torn generation;
3. a stdlib HTTP front end maps a JSON protocol onto the pool, with
   ``/healthz`` and Prometheus ``/metrics`` riding along.

Run with::

    python examples/mp_serving_quickstart.py
"""

import dataclasses
import json
import sys
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core.builder import build_pass
from repro.core.config import PASSConfig
from repro.data.table import Table
from repro.obs import Observability
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery
from repro.serving import (
    MPHTTPServer,
    MPServingPool,
    ServingEngine,
    SynopsisCatalog,
    SynopsisPublisher,
)
from repro.serving.server import query_to_payload, result_from_payload


def build_synopsis(seed: int):
    rng = np.random.default_rng(seed)
    table = Table(
        {
            "time": rng.uniform(0.0, 100.0, size=40_000),
            "power": np.abs(rng.normal(40.0, 12.0, size=40_000)),
        },
        name="sensors",
    )
    return table, build_pass(
        table,
        "power",
        ["time"],
        PASSConfig(n_partitions=32, sample_rate=0.01, opt_sample_size=500, seed=0),
    )


def post(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read().decode("utf-8"))


def main() -> None:
    table, synopsis = build_synopsis(seed=7)
    query = AggregateQuery(
        "AVG", "power", RectPredicate.from_bounds(time=(10.0, 30.0))
    )

    obs = Observability()
    with SynopsisPublisher() as publisher:
        # 1. Publish once; every worker maps the same shared segment.
        epoch = publisher.publish("sensors_power", synopsis, table_name="sensors")
        print(f"published generation at epoch {epoch}")

        with MPServingPool(
            publisher.register_name, n_workers=2, obs=obs
        ) as pool:
            pooled = pool.execute(query)
            catalog = SynopsisCatalog()
            catalog.register("sensors_power", synopsis, table_name="sensors")
            catalog.register_table(table)
            in_process = ServingEngine(catalog, cache_size=0).execute(query)
            match = all(
                getattr(pooled, field.name) == getattr(in_process, field.name)
                for field in dataclasses.fields(pooled)
            )
            print(
                f"pool AVG {pooled.estimate:.2f} "
                f"(bit-identical to in-process: {match})"
            )

            # 2. Republish a rebuilt synopsis; workers re-attach on the
            #    next request — no restart, no torn reads.
            _, rebuilt = build_synopsis(seed=8)
            epoch = publisher.publish(
                "sensors_power", rebuilt, table_name="sensors"
            )
            fresh = pool.execute(query)
            print(
                f"after republish (epoch {epoch}): AVG {fresh.estimate:.2f}, "
                f"pool observed epoch {pool.epoch}"
            )

            # 3. The HTTP front end speaks JSON over the same pool.
            server = MPHTTPServer(pool, max_pending=16, obs=obs)
            base = server.serve_in_thread()
            try:
                answer = post(f"{base}/query", query_to_payload(query))
                result = result_from_payload(answer["result"])
                health = json.loads(
                    urllib.request.urlopen(f"{base}/healthz", timeout=30)
                    .read()
                    .decode("utf-8")
                )
                print(
                    f"HTTP AVG {result.estimate:.2f} | healthz {health} | "
                    "metrics at GET /metrics"
                )
            finally:
                server.close()


if __name__ == "__main__":
    main()
