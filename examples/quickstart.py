"""Quickstart: build a PASS synopsis and answer approximate aggregate queries.

Run with::

    python examples/quickstart.py

The script loads a small surrogate of the Intel Wireless sensor dataset,
builds a PASS synopsis (64 partitions, 0.5% per-query sampling budget), and
answers a handful of SUM / COUNT / AVG range queries, printing the estimate,
the 99% confidence interval, the deterministic hard bounds, and the exact
answer for comparison.
"""

from __future__ import annotations

from repro import (
    AggregateQuery,
    ExactEngine,
    PASSConfig,
    RectPredicate,
    build_pass,
    load_dataset,
)


def main() -> None:
    # 1. Load data.  `load_dataset` returns the table plus the column roles the
    #    paper uses: aggregate `light` filtered by predicates on `time`.
    dataset = load_dataset("intel", n_rows=100_000)
    table = dataset.table
    print(f"Loaded {table.name}: {table.n_rows} rows, columns {table.column_names}")

    # 2. Build the synopsis.  The construction budget is expressed through the
    #    number of leaf partitions (more partitions -> more precomputation but
    #    better accuracy) and the per-query sampling budget.
    config = PASSConfig(n_partitions=64, sample_rate=0.005, partitioner="adp", seed=0)
    synopsis = build_pass(
        table, dataset.value_column, [dataset.default_predicate_column], config
    )
    print(
        f"Built PASS in {synopsis.build_seconds:.2f}s: "
        f"{synopsis.n_partitions} partitions, {synopsis.sample_size} stored samples, "
        f"{synopsis.storage_bytes() / 1024:.1f} KiB"
    )

    # 3. Answer queries.  Estimates carry CLT confidence intervals and
    #    deterministic hard bounds; queries aligned with the partitioning are
    #    answered exactly.
    engine = ExactEngine(table)
    queries = [
        (
            "morning light (SUM)",
            AggregateQuery.sum("light", RectPredicate.from_bounds(time=(0.25, 0.5))),
        ),
        (
            "afternoon rows (COUNT)",
            AggregateQuery.count("light", RectPredicate.from_bounds(time=(0.5, 0.75))),
        ),
        (
            "evening brightness (AVG)",
            AggregateQuery.avg("light", RectPredicate.from_bounds(time=(0.6, 0.9))),
        ),
        (
            "whole day (SUM, exact)",
            AggregateQuery.sum("light", RectPredicate.everything()),
        ),
    ]
    for label, query in queries:
        result = synopsis.query(query)
        truth = engine.execute(query)
        print(f"\n{label}")
        print(f"  estimate      : {result.estimate:,.1f}")
        print(f"  99% interval  : [{result.ci_lower:,.1f}, {result.ci_upper:,.1f}]")
        print(f"  hard bounds   : [{result.hard_lower:,.1f}, {result.hard_upper:,.1f}]")
        print(f"  exact answer  : {truth:,.1f}")
        print(f"  relative error: {result.relative_error(truth):.4%}")
        print(
            f"  answered exactly: {result.exact}; "
            f"samples touched: {result.tuples_processed}"
        )


if __name__ == "__main__":
    main()
