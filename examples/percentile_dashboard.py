"""Percentile-dashboard quickstart: p50/p95/p99 latency + distinct users.

The workload every service dashboard runs::

    SELECT bin(time), P50(latency), P95(latency), P99(latency)
    FROM requests GROUP BY bin(time)

    SELECT COUNT(DISTINCT user_id) FROM requests WHERE time BETWEEN ...

Neither aggregate is linear, so the classic PASS partition statistics cannot
answer them — the mergeable per-leaf sketches (``src/repro/sketches/``) can:

1. build a synopsis over a synthetic request log (sketches are attached per
   leaf by default),
2. read single percentile / distinct-count queries with certified bounds,
3. run the grouped p50/p95/p99 dashboard through the serving engine (each
   percentile caches under its own canonical key), and
4. shard the log and show scatter-gather answers staying inside the
   single-synopsis certified bounds.

Run::

    PYTHONPATH=src python examples/percentile_dashboard.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core.builder import build_pass
from repro.core.config import PASSConfig
from repro.data.table import Table
from repro.distributed.parallel import build_sharded_pass
from repro.query.groupby import AggregateSpec, GroupByQuery, GroupingColumn
from repro.query.predicate import Interval, RectPredicate
from repro.query.query import AggregateQuery, ExactEngine
from repro.serving.catalog import SynopsisCatalog
from repro.serving.engine import ServingEngine


def make_request_log(n_rows: int = 400_000, seed: int = 0) -> Table:
    """A synthetic request log: timestamps, lognormal latencies, user ids."""
    rng = np.random.default_rng(seed)
    hour = rng.uniform(0.0, 24.0, size=n_rows)
    # Latency worsens during the evening peak; heavy lognormal tail.
    latency = np.round(
        rng.lognormal(3.0, 0.5, size=n_rows) * (1.0 + 0.4 * (hour > 18)), 1
    )
    user = np.floor(rng.zipf(1.3, size=n_rows) % 25_000).astype(float)
    return Table(
        {"hour": hour, "latency_ms": latency, "user_id": user}, name="requests"
    )


def main() -> None:
    table = make_request_log()
    config = PASSConfig(
        n_partitions=48,
        sample_rate=0.005,
        partitioner="equal",
        sketch_quantile_k=200,
        sketch_distinct_k=4096,
    )

    print(f"building synopses over {table.n_rows:,} requests ...")
    latency_synopsis = build_pass(table, "latency_ms", ["hour"], config)
    users_synopsis = build_pass(table, "user_id", ["hour"], config)
    exact = ExactEngine(table)

    # ------------------------------------------------------------------
    # Single queries with certified bounds
    # ------------------------------------------------------------------
    evening = RectPredicate({"hour": Interval(18.0, 24.0)})
    print("\n== Evening window (18:00-24:00) ==")
    for q in (0.5, 0.95, 0.99):
        query = AggregateQuery("QUANTILE", "latency_ms", evening, quantile=q)
        result = latency_synopsis.query(query)
        truth = exact.execute(query)
        print(
            f"  p{q * 100:g} latency: {result.estimate:8.1f} ms  "
            f"(certified [{result.hard_lower:.1f}, {result.hard_upper:.1f}], "
            f"exact {truth:.1f})"
        )
    distinct_query = AggregateQuery.count_distinct("user_id", evening)
    result = users_synopsis.query(distinct_query)
    truth = exact.execute(distinct_query)
    print(
        f"  distinct users:  {result.estimate:8.0f}     "
        f"(envelope [{result.hard_lower:.0f}, {result.hard_upper:.0f}], "
        f"exact {truth:.0f})"
    )

    # ------------------------------------------------------------------
    # The grouped dashboard through the serving engine
    # ------------------------------------------------------------------
    catalog = SynopsisCatalog()
    catalog.register("latency", latency_synopsis, table_name="requests")
    catalog.register_table(table, "requests")
    engine = ServingEngine(catalog)

    dashboard = GroupByQuery(
        groupings=(GroupingColumn.bins("hour", list(range(0, 25, 3))),),
        aggregates=(
            AggregateSpec("QUANTILE", "latency_ms", 0.5),
            AggregateSpec("QUANTILE", "latency_ms", 0.95),
            AggregateSpec("QUANTILE", "latency_ms", 0.99),
        ),
    )
    start = time.perf_counter()
    grouped = engine.execute_grouped(dashboard, table="requests")
    cold_ms = 1e3 * (time.perf_counter() - start)
    start = time.perf_counter()
    engine.execute_grouped(dashboard, table="requests")
    warm_ms = 1e3 * (time.perf_counter() - start)

    print("\n== Hourly latency dashboard (p50 / p95 / p99, ms) ==")
    for record in grouped.to_records():
        low, high = record["hour"]
        print(
            f"  {low:5.0f}-{high:<5.0f} "
            f"p50={record['P50(latency_ms)']:7.1f}  "
            f"p95={record['P95(latency_ms)']:7.1f}  "
            f"p99={record['P99(latency_ms)']:7.1f}"
        )
    print(f"  cold {cold_ms:.1f} ms -> warm (cached) {warm_ms:.1f} ms")

    # ------------------------------------------------------------------
    # Sharded scatter-gather stays inside the certified bounds
    # ------------------------------------------------------------------
    sharded = build_sharded_pass(
        table, "latency_ms", "hour", n_shards=4, config=config, executor="serial"
    )
    print("\n== 4-shard scatter-gather vs single synopsis (p95, evening) ==")
    query = AggregateQuery("QUANTILE", "latency_ms", evening, quantile=0.95)
    single = latency_synopsis.query(query)
    merged = sharded.query(query)
    print(
        f"  single : {single.estimate:.1f} ms  "
        f"[{single.hard_lower:.1f}, {single.hard_upper:.1f}]"
    )
    print(
        f"  sharded: {merged.estimate:.1f} ms  "
        f"[{merged.hard_lower:.1f}, {merged.hard_upper:.1f}]"
    )
    overlap = max(single.hard_lower, merged.hard_lower) <= min(
        single.hard_upper, merged.hard_upper
    )
    print(f"  certified intervals overlap: {overlap}")


if __name__ == "__main__":
    main()
