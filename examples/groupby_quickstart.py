"""Group-by quickstart: compile a GROUP BY into boxes, serve it three ways.

The walkthrough mirrors a dashboard query::

    SELECT bin(time), SUM(light), COUNT(light), AVG(light)
    FROM sensors GROUP BY bin(time)

1. declare a :class:`GroupByQuery` (bin edges for ``time``),
2. answer it on a single synopsis through the vectorized grouped executor,
3. answer it through a serving engine (per-group result caching), and
4. answer it by scatter-gather over a sharded synopsis,

comparing every estimate against exact per-group aggregation.

Run::

    PYTHONPATH=src python examples/groupby_quickstart.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core.batching import grouped_query
from repro.core.builder import build_pass
from repro.core.config import PASSConfig
from repro.data.loaders import load_dataset
from repro.distributed.parallel import build_sharded_pass
from repro.query.groupby import AggregateSpec, GroupByQuery, GroupingColumn
from repro.query.query import ExactEngine
from repro.serving.catalog import SynopsisCatalog
from repro.serving.engine import ServingEngine


def main() -> None:
    dataset = load_dataset("intel", n_rows=40_000)
    table = dataset.table
    value = dataset.value_column
    key = dataset.default_predicate_column
    low, high = table.column_bounds(key)

    # 1. Declare the grouped query: 8 equal-width time bins, 3 aggregates.
    groupby = GroupByQuery(
        groupings=(
            GroupingColumn.bins(key, [float(e) for e in np.linspace(low, high, 9)]),
        ),
        aggregates=(
            AggregateSpec("SUM", value),
            AggregateSpec("COUNT", value),
            AggregateSpec("AVG", value),
        ),
    )
    plan = groupby.compile(table)
    print(
        f"Compiled {len(plan.cells)} group cells x {len(plan.aggregates)} "
        f"aggregates into {plan.n_queries} canonical queries."
    )

    # 2. Single synopsis: one frontier + one mask pass per group cell.
    config = PASSConfig(n_partitions=64, sample_rate=0.01, opt_sample_size=800, seed=0)
    synopsis = build_pass(table, value, [key], config)
    start = time.perf_counter()
    grouped = grouped_query(synopsis, plan)
    elapsed = (time.perf_counter() - start) * 1e3
    exact = ExactEngine(table)
    print(f"\nGrouped execution on one synopsis ({elapsed:.1f} ms):")
    header = f"{'time bin':>22} " + "".join(
        f"{spec.name:>16}" for spec in plan.aggregates
    )
    print(header)
    for (labels, results), (_, cell) in zip(grouped, plan.live_cells()):
        bin_low, bin_high = labels[0]
        row = "".join(f"{result.estimate:>16,.1f}" for result in results)
        truth = exact.execute(plan.cell_query(cell, plan.aggregates[1]))
        print(f"  [{bin_low:8.2f}, {bin_high:8.2f}) {row}   (exact count {truth:,.0f})")

    # 3. Serving engine: compiled queries get per-group cache keys.
    catalog = SynopsisCatalog()
    catalog.register("light_by_time", synopsis, table_name=table.name)
    catalog.register_table(table)
    engine = ServingEngine(catalog)
    engine.execute_grouped(groupby, table=table.name)  # cold: fills the cache
    start = time.perf_counter()
    engine.execute_grouped(groupby, table=table.name)  # warm: all cache hits
    warm_ms = (time.perf_counter() - start) * 1e3
    info = engine.cache_info()
    print(
        f"\nServed grouped query twice: {info['size']} cached per-group results, "
        f"warm pass {warm_ms:.2f} ms."
    )

    # 4. Sharded scatter-gather: exact mergeable per-group aggregation.
    sharded = build_sharded_pass(
        table, value, key, n_shards=4, config=config, executor="serial"
    )
    grouped_sharded = sharded.query_grouped(plan)
    worst = max(
        abs(row[1].estimate - exact.execute(plan.cell_query(cell, plan.aggregates[1])))
        for (_, row), (_, cell) in zip(
            iter(grouped_sharded), plan.live_cells()
        )
    )
    print(
        f"Sharded grouped execution over {sharded.n_shards} shards: "
        f"worst per-group COUNT deviation from exact = {worst:,.1f}."
    )


if __name__ == "__main__":
    main()
