"""Async serving quickstart: coalescing, micro-batching, backpressure.

Builds a small PASS synopsis, fronts it with the asyncio serving tier, and
demonstrates the three behaviors the tier adds on top of the synchronous
``ServingEngine``:

1. a stampede of concurrent identical queries coalesces onto one execution;
2. distinct concurrent queries dispatch as one vectorized micro-batch;
3. streaming updates serialize through the same scheduler, so a read issued
   after an awaited insert always observes it.

Run with::

    python examples/async_serving_quickstart.py
"""

import asyncio
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core.config import PASSConfig
from repro.core.updates import DynamicPASS
from repro.data.table import Table
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery
from repro.serving import AsyncServingEngine, ServingEngine, SynopsisCatalog


def build_engine() -> ServingEngine:
    rng = np.random.default_rng(7)
    table = Table(
        {
            "time": rng.uniform(0.0, 100.0, size=50_000),
            "power": np.abs(rng.normal(40.0, 12.0, size=50_000)),
        },
        name="sensors",
    )
    synopsis = DynamicPASS(
        table,
        "power",
        ["time"],
        PASSConfig(n_partitions=32, sample_rate=0.01, opt_sample_size=500, seed=0),
    )
    catalog = SynopsisCatalog()
    catalog.register("sensors_power", synopsis, table_name="sensors")
    catalog.register_table(table)
    # vectorized_batches: micro-batches cost one moments pass per leaf.
    return ServingEngine(catalog, vectorized_batches=True)


async def main() -> None:
    engine = build_engine()
    hot = AggregateQuery("AVG", "power", RectPredicate.from_bounds(time=(10.0, 30.0)))

    async with AsyncServingEngine(engine, batch_window=0.002) as tier:
        # 1. A dashboard stampede: 100 concurrent copies of one query.
        results = await asyncio.gather(*(tier.execute(hot) for _ in range(100)))
        stats = tier.stats()
        print(f"stampede: {len(results)} answers, {stats.coalesced} coalesced,")
        print(
            f"  {stats.scheduler.dispatched} executed "
            f"-> AVG {results[0].estimate:.2f}"
        )

        # 2. Distinct panels batch into one vectorized pass.
        panels = [
            AggregateQuery(
                agg, "power", RectPredicate.from_bounds(time=(float(t), float(t + 20)))
            )
            for t in range(0, 80, 10)
            for agg in ("SUM", "COUNT", "AVG")
        ]
        answers = await tier.execute_many(panels)
        stats = tier.stats()
        print(
            f"panels: {len(answers)} queries in {stats.scheduler.batches} "
            f"micro-batches (largest {stats.scheduler.max_batch_size})"
        )

        # 3. Writes serialize through the scheduler and invalidate in-flight
        #    coalesced futures whose region overlaps the updated partition.
        count = AggregateQuery("COUNT", "power", RectPredicate.everything())
        before = (await tier.execute(count)).estimate
        await tier.insert("sensors_power", {"time": 20.0, "power": 55.0})
        after = (await tier.execute(count)).estimate
        print(f"write visibility: COUNT {before:.0f} -> {after:.0f}")


if __name__ == "__main__":
    asyncio.run(main())
