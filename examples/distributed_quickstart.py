"""Distributed quickstart: shard, build in parallel, scatter-gather, stream.

Run with::

    PYTHONPATH=src python examples/distributed_quickstart.py

(or just ``python examples/distributed_quickstart.py`` after
``pip install -e .``.)

The script walks the distributed lifecycle end to end:

1. split a generated table into range shards with a :class:`ShardPlanner`;
2. build one dynamic PASS synopsis per shard across CPU cores with a
   :class:`ParallelBuilder`;
3. answer queries by scatter-gather through the :class:`ShardedSynopsis` —
   watch shard pruning skip work for selective predicates;
4. serve the sharded synopsis through the regular :class:`ServingEngine`
   catalog/routing machinery;
5. stream inserts through a :class:`StreamingShardRouter` until one shard
   drifts past the staleness threshold and is rebuilt in place — without
   pausing reads on the other shards.
"""

from __future__ import annotations

import numpy as np

from repro import (
    AggregateQuery,
    ParallelBuilder,
    RectPredicate,
    PASSConfig,
    ServingEngine,
    ShardPlanner,
    StreamingShardRouter,
    SynopsisCatalog,
    Table,
)


def main() -> None:
    # 1. Generate a table and split it into range shards on `key`.
    rng = np.random.default_rng(0)
    n = 200_000
    key = rng.uniform(0.0, 100.0, size=n)
    value = np.abs(rng.normal(50.0, 15.0, size=n) + 0.3 * key)
    table = Table({"key": key, "value": value}, name="events")

    planner = ShardPlanner(n_shards=4, strategy="range")
    plan = planner.plan(table, "key")
    print(f"Planned {plan.n_shards} range shards over {table.n_rows:,} rows:")
    for box, chunk in zip(plan.key_boxes, plan.tables):
        print(f"  {chunk.name}: {chunk.n_rows:,} rows, key ∈ {box.interval('key')!r}")

    # 2. Build one dynamic synopsis per shard, in parallel across processes.
    config = PASSConfig(n_partitions=32, sample_rate=0.01, opt_sample_size=1000, seed=0)
    builder = ParallelBuilder(max_workers=4, executor="process")
    sharded = builder.build(plan, "value", ["key"], config, dynamic=True)
    print(
        f"\nBuilt {sharded.n_shards} shards in {sharded.build_seconds:.2f}s "
        f"({sharded.n_partitions} partitions, {sharded.sample_size:,} samples total)"
    )

    # 3. Scatter-gather queries.  A selective predicate prunes the shards
    #    whose key range cannot match.
    wide = AggregateQuery("AVG", "value", RectPredicate.from_bounds(key=(5.0, 95.0)))
    narrow = AggregateQuery("SUM", "value", RectPredicate.from_bounds(key=(12.0, 15.0)))
    for name, query in (("wide", wide), ("narrow", narrow)):
        survivors = sharded.surviving_shards(query)
        result = sharded.query(query)
        print(
            f"{name} query touched {len(survivors)}/{sharded.n_shards} shards: "
            f"estimate={result.estimate:,.2f} ±{result.ci_half_width:,.2f}, "
            f"skipped {result.tuples_skipped:,} tuples"
        )

    # Batches share per-shard mask evaluation across all queries.
    workload = [
        AggregateQuery(agg, "value", RectPredicate.from_bounds(key=(low, low + 20.0)))
        for agg in ("SUM", "COUNT", "AVG")
        for low in np.linspace(0.0, 75.0, 6)
    ]
    results = sharded.query_batch(workload)
    print(
        f"Batch of {len(workload)} queries answered; first={results[0].estimate:,.1f}"
    )

    # 4. The serving layer treats a sharded synopsis like any other: register
    #    it in a catalog and serve it with routing + caching.
    catalog = SynopsisCatalog()
    catalog.register("events_value", sharded, table_name="events")
    engine = ServingEngine(catalog)
    served = engine.execute(wide, table="events")
    print(f"Served through the engine: {served.estimate:,.2f} (cached on repeat)")

    # 5. Stream updates through the shard router.  Concentrated inserts age
    #    one shard past the threshold and trigger a rebuild of just that
    #    shard; the other shards' synopses are untouched (reads never pause).
    #    The router is the single writer for the synopsis — so after a burst
    #    of router-applied updates, drop the serving engine's cached results
    #    (updates applied through the engine itself invalidate automatically).
    router = StreamingShardRouter(sharded, plan.tables, rebuild_threshold=0.01)
    owner = sharded.shard_for_value(12.5)
    others_before = [s for i, s in enumerate(sharded.shards) if i != owner]
    target = int(sharded.shards[owner].population_size * 0.011) + 1
    for step in range(target):
        router.insert({"key": 12.5, "value": 60.0 + (step % 7)})
    stats = router.stats()
    print(
        f"\nStreamed {target:,} inserts into shard {owner}: "
        f"rebuilds={stats[owner].rebuilds}, staleness={stats[owner].staleness:.4f}"
    )
    others_after = [s for i, s in enumerate(sharded.shards) if i != owner]
    untouched = all(a is b for a, b in zip(others_before, others_after))
    print(f"Other shards untouched by the rebuild: {untouched}")
    dropped = engine.invalidate("events_value")
    refreshed = engine.execute(narrow, table="events")
    print(
        f"Narrow query after streaming (cache dropped {dropped} stale results): "
        f"{refreshed.estimate:,.2f}"
    )


if __name__ == "__main__":
    main()
