"""Grouped execution through the serving engine and sharded scatter-gather.

The acceptance property of the grouped planner stack: a group-by query over
a (sharded) synopsis built with full per-leaf samples returns per-group
SUM / COUNT / AVG / MIN / MAX equal to exact per-group aggregation on the
raw table, the serving engine caches grouped answers per (cell, aggregate),
and the planner prunes provably empty cells before dispatch.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.builder import build_pass
from repro.core.config import PASSConfig
from repro.data.table import Table
from repro.distributed.parallel import build_sharded_pass
from repro.evaluation.harness import evaluate_grouped_workload
from repro.query.groupby import AggregateSpec, GroupByQuery, GroupingColumn
from repro.query.predicate import RectPredicate
from repro.query.query import ExactEngine
from repro.serving.catalog import SynopsisCatalog
from repro.serving.engine import ServingEngine
from repro.serving.planner import GroupByPlanner

ALL_AGGS = ("SUM", "COUNT", "AVG", "MIN", "MAX")

#: Full sampling: every leaf stores all of its tuples, so every estimate
#: equals the exact aggregate (modulo floating-point summation order).
FULL_CONFIG = PASSConfig(n_partitions=16, sample_rate=1.0, opt_sample_size=300, seed=1)


@pytest.fixture(scope="module")
def table() -> Table:
    rng = np.random.default_rng(11)
    n = 9000
    return Table(
        {
            "key": rng.uniform(0.0, 80.0, size=n),
            "cat": rng.integers(0, 3, size=n).astype(float),
            "value": np.abs(rng.normal(30.0, 9.0, size=n)),
        },
        name="grouped_serving",
    )


@pytest.fixture(scope="module")
def groupby() -> GroupByQuery:
    return GroupByQuery(
        groupings=(
            GroupingColumn.bins("key", [0.0, 20.0, 40.0, 60.0, 80.0]),
            GroupingColumn.distinct("cat"),
        ),
        aggregates=tuple(AggregateSpec(agg, "value") for agg in ALL_AGGS),
    )


@pytest.fixture(scope="module")
def sharded(table):
    return build_sharded_pass(
        table,
        "value",
        "key",
        n_shards=4,
        predicate_columns=["key", "cat"],
        config=FULL_CONFIG,
        executor="serial",
    )


@pytest.fixture(scope="module")
def engine(table, sharded) -> ServingEngine:
    catalog = SynopsisCatalog()
    catalog.register("grouped_shards", sharded, table_name=table.name)
    catalog.register_table(table)
    return ServingEngine(catalog)


def _exact_grouped(table: Table, plan) -> dict[int, list[float]]:
    exact = ExactEngine(table)
    return {
        index: [exact.execute(plan.cell_query(cell, spec)) for spec in plan.aggregates]
        for index, cell in plan.live_cells()
    }


def _assert_rows_match(result_row, truth_row):
    for result, truth in zip(result_row, truth_row):
        if math.isnan(truth):
            assert math.isnan(result.estimate)
        else:
            assert result.estimate == pytest.approx(truth, rel=1e-9)


def test_sharded_grouped_equals_exact_per_group(table, sharded, groupby):
    plan = groupby.compile(table)
    truth = _exact_grouped(table, plan)
    grouped = sharded.query_grouped(plan)
    assert len(grouped) == 4 * 3
    for index, row in truth.items():
        _assert_rows_match(grouped.cells[index], row)


def test_sharded_grouped_compiles_explicit_groupings(sharded):
    explicit = GroupByQuery(
        groupings=(GroupingColumn.bins("key", [0.0, 40.0, 80.0]),),
        aggregates=(AggregateSpec("COUNT", "value"),),
    )
    grouped = sharded.query_grouped(explicit)
    assert sum(row[0].estimate for _, row in grouped) == pytest.approx(
        sharded.population_size
    )
    discovery = GroupByQuery(
        groupings=(GroupingColumn.distinct("cat"),),
        aggregates=(AggregateSpec("COUNT", "value"),),
    )
    with pytest.raises(ValueError, match="distinct-value discovery"):
        sharded.query_grouped(discovery)


def test_engine_execute_grouped_equals_exact(table, engine, groupby):
    plan = GroupByPlanner(engine.catalog).compile(groupby, table.name)
    truth = _exact_grouped(table, plan)
    grouped = engine.execute_grouped(groupby, table=table.name)
    assert grouped.group_columns == ("key", "cat")
    for index, row in truth.items():
        _assert_rows_match(grouped.cells[index], row)


def test_engine_grouped_results_are_cached_per_group(table, groupby, sharded):
    catalog = SynopsisCatalog()
    catalog.register("grouped_shards", sharded, table_name=table.name)
    catalog.register_table(table)
    engine = ServingEngine(catalog)
    first = engine.execute_grouped(groupby, table=table.name)
    occupancy = engine.cache_info()["size"]
    # One cache slot per (live cell, aggregate) pair.
    assert occupancy == 4 * 3 * len(ALL_AGGS)
    second = engine.execute_grouped(groupby, table=table.name)
    assert engine.cache_info()["size"] == occupancy
    stats = engine.stats()["grouped_shards"]
    assert stats.cache_hits >= occupancy
    np.testing.assert_array_equal(first.estimates(), second.estimates())


def test_planner_prunes_cells_outside_every_leaf(table, engine):
    # Force an empty frontier by filtering to a region the grouping excludes:
    # the base predicate keeps key in [0, 40] but cat bins only cover values
    # that never co-occur with key > 60 ... simplest provable case: a base
    # predicate that intersects the grouping to a geometrically empty box is
    # already dropped at compile time, so here we check the planner's
    # frontier pass instead via a cell whose region holds zero tuples.
    planner = GroupByPlanner(engine.catalog)
    plan = GroupByQuery(
        groupings=(GroupingColumn.distinct("cat", values=(0.0, 1.0, 2.0, 7.0)),),
        aggregates=(AggregateSpec("COUNT", "value"),),
    ).compile(table)
    pruned = planner.prune_empty_cells(plan, table.name)
    grouped = engine.execute_grouped(plan, table=table.name)
    label_row = dict(iter(grouped))
    missing = label_row[(7.0,)][0]
    if pruned:
        # Pruned cells answer exactly without dispatch.
        assert pruned == {3}
        assert missing.exact
    assert missing.estimate == 0.0
    assert label_row[(0.0,)][0].estimate > 0


def test_planner_routes_whole_plan_once(engine, table, groupby):
    planner = GroupByPlanner(engine.catalog)
    plan = planner.compile(groupby, table.name)
    entry = planner.route(plan, table.name)
    assert entry is not None and entry.name == "grouped_shards"


def test_planner_skips_pruning_when_value_columns_route_apart(table):
    # Aggregates over different value columns can route to different
    # synopses; the planner must then consult no single tree (route() is
    # None, nothing is pruned) while dispatch still answers each compiled
    # query through its own route.
    other = Table(
        {
            "key": table.column("key"),
            "cat": table.column("cat"),
            "value": table.column("value"),
            "weight": np.abs(table.column("value") * 0.5 + 1.0),
        },
        name="two_values",
    )
    catalog = SynopsisCatalog()
    catalog.register(
        "by_value",
        build_pass(other, "value", ["key"], FULL_CONFIG),
        table_name=other.name,
    )
    catalog.register(
        "by_weight",
        build_pass(other, "weight", ["key"], FULL_CONFIG),
        table_name=other.name,
    )
    catalog.register_table(other)
    planner = GroupByPlanner(catalog)
    groupby = GroupByQuery(
        groupings=(GroupingColumn.bins("key", [0.0, 40.0, 80.0]),),
        aggregates=(AggregateSpec("SUM", "value"), AggregateSpec("SUM", "weight")),
    )
    plan = planner.compile(groupby, other.name)
    assert planner.route(plan, other.name) is None
    assert planner.prune_empty_cells(plan, other.name) == set()
    grouped = ServingEngine(catalog).execute_grouped(groupby, table=other.name)
    exact = ExactEngine(other)
    for index, cell in plan.live_cells():
        for spec, result in zip(plan.aggregates, grouped.cells[index]):
            truth = exact.execute(plan.cell_query(cell, spec))
            assert result.estimate == pytest.approx(truth, rel=1e-9)


def test_exact_fallback_serves_unrouted_groupings(table):
    catalog = SynopsisCatalog()
    catalog.register_table(table)
    engine = ServingEngine(catalog)
    groupby = GroupByQuery(
        groupings=(GroupingColumn.bins("key", [0.0, 40.0, 80.0]),),
        aggregates=(AggregateSpec("SUM", "value"), AggregateSpec("COUNT", "value")),
    )
    grouped = engine.execute_grouped(groupby, table=table.name)
    exact = ExactEngine(table)
    plan = groupby.compile(table)
    for index, cell in plan.live_cells():
        for spec, result in zip(plan.aggregates, grouped.cells[index]):
            assert result.exact
            assert result.estimate == pytest.approx(
                exact.execute(plan.cell_query(cell, spec))
            )


def test_evaluate_grouped_workload_modes(table, engine, sharded, groupby):
    exact = ExactEngine(table)
    for executor in (engine, sharded):
        metrics = evaluate_grouped_workload(executor, groupby, exact, table=table.name)
        assert metrics.n_queries == 4 * 3 * len(ALL_AGGS)
        assert metrics.median_relative_error == pytest.approx(0.0, abs=1e-9)
    synopsis = build_pass(
        table, "value", ["key"], PASSConfig(n_partitions=16, sample_rate=1.0, seed=0)
    )
    flat_groupby = GroupByQuery(
        groupings=(GroupingColumn.bins("key", [0.0, 20.0, 40.0, 60.0, 80.0]),),
        aggregates=(AggregateSpec("SUM", "value"), AggregateSpec("AVG", "value")),
    )
    metrics = evaluate_grouped_workload(synopsis, flat_groupby, exact)
    assert metrics.n_queries == 4 * 2
    assert metrics.median_relative_error == pytest.approx(0.0, abs=1e-9)


def test_grouped_respects_base_predicate(table, engine):
    groupby = GroupByQuery(
        groupings=(GroupingColumn.distinct("cat"),),
        aggregates=(AggregateSpec("COUNT", "value"),),
        predicate=RectPredicate.from_bounds(key=(0.0, 40.0)),
    )
    grouped = engine.execute_grouped(groupby, table=table.name)
    exact = ExactEngine(table)
    plan = GroupByPlanner(engine.catalog).compile(groupby, table.name)
    for index, cell in plan.live_cells():
        truth = exact.execute(plan.cell_query(cell, plan.aggregates[0]))
        assert grouped.cells[index][0].estimate == pytest.approx(truth)
