"""Concurrency stress test: reader threads vs a writer hammering ServingEngine.

The reader-writer lock must guarantee that queries never observe a torn
update (a tuple whose path statistics are only partially applied) and that
the cache invalidation keeps cached results equal to fresh evaluation after
the update stream stops.

The detectors:

* every reader runs an exact COUNT over the whole domain — inserts only ever
  grow it, so each reader must observe a **non-decreasing integer sequence**
  inside ``[initial, initial + total_inserts]`` (a torn read would surface
  as a non-integer path state, an out-of-range count, or a decrease);
* every reader also runs a sampled range query and checks the result is
  internally consistent (finite estimate, non-negative variance, ordered
  hard bounds);
* after the writer finishes, every cached result must be identical to a
  fresh evaluation with the cache dropped.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.config import PASSConfig
from repro.core.updates import DynamicPASS
from repro.data.table import Table
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery
from repro.serving.catalog import SynopsisCatalog
from repro.serving.engine import ServingEngine

N_ROWS = 3000
N_READERS = 4
N_INSERTS = 150
READS_PER_READER = 400


@pytest.fixture
def engine_and_synopsis():
    rng = np.random.default_rng(77)
    table = Table(
        {
            "key": rng.uniform(0.0, 50.0, size=N_ROWS),
            "value": np.abs(rng.normal(20.0, 5.0, size=N_ROWS)),
        },
        name="stress",
    )
    dynamic = DynamicPASS(
        table,
        "value",
        ["key"],
        PASSConfig(n_partitions=8, sample_rate=0.05, opt_sample_size=200, seed=3),
    )
    catalog = SynopsisCatalog()
    catalog.register("stress_value", dynamic, table_name="stress")
    return ServingEngine(catalog), dynamic


def test_readers_never_observe_torn_or_regressing_state(engine_and_synopsis):
    engine, dynamic = engine_and_synopsis
    count_everything = AggregateQuery("COUNT", "value", RectPredicate.everything())
    sampled_range = AggregateQuery(
        "SUM", "value", RectPredicate.from_bounds(key=(5.0, 37.0))
    )
    initial = engine.execute(count_everything).estimate
    assert initial == N_ROWS

    start_barrier = threading.Barrier(N_READERS + 1)
    writer_done = threading.Event()
    errors: list[str] = []
    errors_lock = threading.Lock()

    def fail(message: str) -> None:
        with errors_lock:
            errors.append(message)

    def reader() -> None:
        start_barrier.wait()
        last = initial
        reads = 0
        while reads < READS_PER_READER and not errors:
            result = engine.execute(count_everything)
            observed = result.estimate
            if observed != int(observed):
                fail(f"non-integer exact count {observed!r} (torn read)")
                return
            if not initial <= observed <= initial + N_INSERTS:
                fail(f"count {observed} outside [{initial}, {initial + N_INSERTS}]")
                return
            if observed < last:
                fail(f"count regressed from {last} to {observed}")
                return
            last = observed
            ranged = engine.execute(sampled_range)
            if np.isinf(ranged.estimate):
                fail(f"non-finite sampled estimate {ranged.estimate!r}")
                return
            if not np.isnan(ranged.variance) and ranged.variance < 0:
                fail(f"negative variance {ranged.variance!r}")
                return
            if ranged.hard_lower > ranged.hard_upper:
                fail(
                    f"inverted hard bounds "
                    f"[{ranged.hard_lower}, {ranged.hard_upper}] (torn read)"
                )
                return
            reads += 1
            if writer_done.is_set() and reads >= READS_PER_READER // 2:
                return

    rng = np.random.default_rng(5)
    rows = [
        {
            "key": float(rng.uniform(0.0, 50.0)),
            "value": float(abs(rng.normal(20.0, 5.0))),
        }
        for _ in range(N_INSERTS)
    ]

    def writer() -> None:
        start_barrier.wait()
        for row in rows:
            engine.insert("stress_value", row)
        writer_done.set()

    threads = [threading.Thread(target=reader) for _ in range(N_READERS)]
    threads.append(threading.Thread(target=writer))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, errors[0]
    assert writer_done.is_set(), "writer never finished"

    # Post-update consistency: the cached answer for every probe equals a
    # fresh evaluation once the cache is dropped.
    final_count = engine.execute(count_everything)
    assert final_count.estimate == N_ROWS + N_INSERTS
    probes = [count_everything, sampled_range]
    cached = [engine.execute(query) for query in probes]
    engine.invalidate()
    fresh = [engine.execute(query) for query in probes]
    for cached_result, fresh_result in zip(cached, fresh):
        assert cached_result.estimate == fresh_result.estimate
        assert cached_result.variance == fresh_result.variance or (
            np.isnan(cached_result.variance) and np.isnan(fresh_result.variance)
        )


def test_concurrent_batch_readers_with_writer(engine_and_synopsis):
    """Batch execution under a concurrent writer also stays consistent."""
    engine, _ = engine_and_synopsis
    queries = [
        AggregateQuery(agg, "value", RectPredicate.from_bounds(key=(low, low + 10.0)))
        for agg in ("SUM", "COUNT", "AVG")
        for low in (0.0, 15.0, 30.0)
    ]
    stop = threading.Event()
    errors: list[str] = []

    def reader() -> None:
        while not stop.is_set():
            for result in engine.execute_batch(queries):
                if np.isinf(result.estimate) or result.hard_lower > result.hard_upper:
                    errors.append(
                        f"inconsistent batch result: estimate={result.estimate!r} "
                        f"bounds=[{result.hard_lower}, {result.hard_upper}]"
                    )
                    stop.set()
                    return

    readers = [threading.Thread(target=reader) for _ in range(2)]
    for thread in readers:
        thread.start()
    rng = np.random.default_rng(9)
    for _ in range(60):
        engine.insert(
            "stress_value",
            {
                "key": float(rng.uniform(0.0, 50.0)),
                "value": float(abs(rng.normal(20.0, 5.0))),
            },
        )
    stop.set()
    for thread in readers:
        thread.join(timeout=60)
    assert not errors, errors[0]
