"""Unit tests for the metrics registry primitives (repro.obs.metrics)."""

import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    validate_label_name,
    validate_metric_name,
)


class TestCounter:
    def test_inc_accumulates(self):
        counter = Counter("requests_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = Counter("requests_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1.0)

    def test_set_function_mirrors_external_tally(self):
        # The hot-path pattern: a layer keeps its own monotone count and the
        # counter reads it lazily at scrape time (e.g. the request
        # coalescer's join tally behind repro_async_coalesced_total).
        tally = {"joined": 0}
        counter = Counter("coalesced_total")
        counter.set_function(lambda: float(tally["joined"]))
        assert counter.value == 0.0
        tally["joined"] = 41
        assert counter.value == 41.0
        counter.set_function(None)
        assert counter.value == 0.0  # falls back to the stored value

    def test_thread_safety(self):
        counter = Counter("requests_total")

        def work():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 40_000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("inflight")
        gauge.set(5.0)
        gauge.inc(2.0)
        gauge.dec(3.0)
        assert gauge.value == 4.0

    def test_set_function(self):
        backing = [0]
        gauge = Gauge("queue_depth")
        gauge.set_function(lambda: float(len(backing)))
        backing.extend([1, 2])
        assert gauge.value == 3.0


class TestHistogram:
    def test_observe_counts_and_sum(self):
        histogram = Histogram("latency", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(55.55)
        assert histogram.bucket_counts() == [1, 1, 1, 1]

    def test_observe_n_equals_repeated_observe(self):
        # The batch path folds a sealed window's identical amortized
        # latencies into one bucket update; totals must match n observes.
        repeated = Histogram("latency", buckets=(0.1, 1.0))
        batched = Histogram("latency", buckets=(0.1, 1.0))
        for _ in range(7):
            repeated.observe(0.5)
        batched.observe_n(0.5, 7)
        assert batched.count == repeated.count
        assert batched.sum == pytest.approx(repeated.sum)
        assert batched.bucket_counts() == repeated.bucket_counts()
        batched.observe_n(0.5, 0)  # non-positive n is a no-op
        assert batched.count == 7

    def test_quantile_interpolation(self):
        histogram = Histogram("latency", buckets=(1.0, 2.0, 4.0))
        # 100 observations uniformly into the (1, 2] bucket: the median
        # interpolates to the middle of the bucket.
        histogram.observe_n(1.5, 100)
        assert histogram.quantile(0.5) == pytest.approx(1.5)
        assert histogram.quantile(1.0) == pytest.approx(2.0)

    def test_quantile_overflow_clamps_to_last_finite_bound(self):
        histogram = Histogram("latency", buckets=(1.0, 2.0))
        histogram.observe(100.0)
        assert histogram.quantile(0.99) == 2.0

    def test_quantile_empty_is_nan(self):
        histogram = Histogram("latency", buckets=(1.0,))
        assert histogram.quantile(0.5) != histogram.quantile(0.5)  # NaN

    def test_buckets_must_ascend(self):
        with pytest.raises(ValueError):
            Histogram("latency", buckets=(2.0, 1.0))


class TestNames:
    def test_metric_name_validation(self):
        assert validate_metric_name("repro_requests_total") == "repro_requests_total"
        for bad in ("", "9lead", "has space", "dash-ed"):
            with pytest.raises(ValueError):
                validate_metric_name(bad)

    def test_label_name_validation(self):
        assert validate_label_name("synopsis") == "synopsis"
        for bad in ("", "__reserved", "9lead", "dash-ed"):
            with pytest.raises(ValueError):
                validate_label_name(bad)


class TestRegistry:
    def test_same_name_and_labels_share_one_child(self):
        registry = MetricsRegistry()
        a = registry.counter("hits_total", "Hits.", {"synopsis": "s1"})
        b = registry.counter("hits_total", "Hits.", {"synopsis": "s1"})
        c = registry.counter("hits_total", "Hits.", {"synopsis": "s2"})
        assert a is b
        assert a is not c
        a.inc()
        assert b.value == 1.0
        assert c.value == 0.0

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing_total", "A counter.")
        with pytest.raises(ValueError):
            registry.gauge("thing_total", "Now a gauge?")

    def test_snapshot_structure(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "Hits.", {"synopsis": "s1"}).inc(3)
        registry.histogram("lat_seconds", "Latency.", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert "hits_total" in snapshot and "lat_seconds" in snapshot

    def test_null_registry_is_inert(self):
        registry = NullRegistry()
        counter = registry.counter("hits_total", "Hits.")
        counter.inc()
        counter.set_function(lambda: 99.0)
        histogram = registry.histogram("lat_seconds", "Latency.")
        histogram.observe(1.0)
        histogram.observe_n(1.0, 10)
        registry.gauge("depth", "Depth.").set_function(lambda: 1.0)
        assert registry.families() == []
        assert registry.snapshot() == {}
