"""Tests for the evaluation metrics, the comparison harness, and reporting."""

from __future__ import annotations

import math

import pytest

from repro.core.builder import build_pass
from repro.core.config import PASSConfig
from repro.data.loaders import DatasetSpec
from repro.evaluation.harness import run_comparison
from repro.evaluation.metrics import (
    QueryRecord,
    WorkloadMetrics,
    ci_ratio,
    evaluate_workload,
    nan_mean,
    nan_median,
    relative_error,
)
from repro.evaluation.reporting import ExperimentResult, Section, fmt, format_table
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery, ExactEngine
from repro.query.workload import random_range_queries
from repro.result import AQPResult
from repro.sampling.uniform import UniformSampleSynopsis


class TestScalarMetrics:
    def test_relative_error_conventions(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)
        assert relative_error(0.0, 0.0) == 0.0
        assert math.isinf(relative_error(5.0, 0.0))
        assert math.isnan(relative_error(float("nan"), 5.0))

    def test_ci_ratio(self):
        assert ci_ratio(5.0, 50.0) == pytest.approx(0.1)
        assert math.isnan(ci_ratio(float("nan"), 50.0))
        assert math.isnan(ci_ratio(5.0, 0.0))

    def test_nan_aware_summaries(self):
        assert nan_median([1.0, float("nan"), 3.0, float("inf")]) == 2.0
        assert math.isnan(nan_median([float("nan")]))
        assert nan_mean([1.0, 3.0, float("nan")]) == 2.0


class TestWorkloadMetrics:
    def make_record(self, estimate, truth, half_width=1.0, skipped=0, processed=10):
        query = AggregateQuery.sum("value", RectPredicate.everything())
        result = AQPResult(
            estimate=estimate,
            ci_half_width=half_width,
            tuples_processed=processed,
            tuples_skipped=skipped,
        )
        return QueryRecord(
            query=query, truth=truth, result=result, latency_seconds=0.001
        )

    def test_summary_from_records(self):
        records = [self.make_record(102.0, 100.0), self.make_record(95.0, 100.0)]
        metrics = WorkloadMetrics.from_records(records)
        assert metrics.n_queries == 2
        assert metrics.median_relative_error == pytest.approx(0.035)
        assert metrics.mean_latency_ms == pytest.approx(1.0)
        assert 0.0 <= metrics.ci_coverage <= 1.0

    def test_empty_records_rejected(self):
        with pytest.raises(ValueError):
            WorkloadMetrics.from_records([])

    def test_skip_rate_per_record(self):
        record = self.make_record(1.0, 1.0, skipped=90, processed=10)
        assert record.skip_rate == pytest.approx(0.9)


class TestEvaluateWorkloadAndHarness:
    @pytest.fixture
    def setup(self, skewed_table):
        workload = random_range_queries(
            skewed_table, "value", ["key"], n_queries=20, rng=2
        )
        engine = ExactEngine(skewed_table)
        return skewed_table, workload, engine

    def test_evaluate_workload_with_and_without_truths(self, setup):
        table, workload, engine = setup
        synopsis = UniformSampleSynopsis(
            table, "value", ["key"], sample_rate=0.3, rng=0
        )
        metrics = evaluate_workload(synopsis, workload.queries, engine)
        assert metrics.n_queries == 20
        truths = [engine.execute(q) for q in workload.queries]
        metrics_cached = evaluate_workload(synopsis, workload.queries, engine, truths)
        assert metrics_cached.n_queries == 20

    def test_truth_length_mismatch_rejected(self, setup):
        table, workload, engine = setup
        synopsis = UniformSampleSynopsis(
            table, "value", ["key"], sample_rate=0.3, rng=0
        )
        with pytest.raises(ValueError):
            evaluate_workload(synopsis, workload.queries, engine, ground_truth=[1.0])

    def test_run_comparison_builds_all_synopses(self, setup):
        table, workload, _ = setup
        spec = DatasetSpec(
            table=table, value_column="value", predicate_columns=("key",)
        )
        run = run_comparison(
            spec,
            workload,
            {
                "US": lambda s: UniformSampleSynopsis(
                    s.table, s.value_column, s.predicate_columns, sample_rate=0.2, rng=0
                ),
                "PASS": lambda s: build_pass(
                    s.table,
                    s.value_column,
                    s.predicate_columns,
                    PASSConfig(n_partitions=8, sample_rate=0.1, opt_sample_size=200),
                ),
            },
        )
        assert {e.name for e in run.evaluations} == {"US", "PASS"}
        pass_eval = run.evaluation("PASS")
        assert pass_eval.build_seconds > 0
        assert pass_eval.storage_mb > 0
        with pytest.raises(KeyError):
            run.evaluation("missing")


class TestReporting:
    def test_fmt(self):
        assert fmt(float("nan")) == "-"
        assert fmt(0.123456) == "0.1235"
        assert fmt(1e-9) == "1.00e-09"
        assert fmt("text") == "text"
        assert fmt(3) == "3"

    def test_format_table_alignment(self):
        text = format_table(("a", "metric"), [("x", 1.0), ("longer", 2.5)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_experiment_result_rendering_and_lookup(self):
        section = Section(title="S", headers=("h1", "h2"), rows=((1, 2.0),))
        result = ExperimentResult(name="Exp", description="desc", sections=(section,))
        text = result.to_text()
        assert "Exp" in text and "h1" in text
        assert result.section("S") is section
        with pytest.raises(KeyError):
            result.section("missing")
