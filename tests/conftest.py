"""Shared fixtures for the test suite.

Most tests work on small, deterministic tables so failures are easy to reason
about; a handful of integration tests use the surrogate dataset generators at
reduced sizes.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

try:
    from hypothesis import HealthCheck, settings
except ImportError:  # pragma: no cover - hypothesis is an optional test dep
    pass
else:
    # The "ci" profile makes property tests deterministic: derandomize=True
    # derives every example from the test body (a fixed seed), and the
    # deadline is dropped because shared CI runners stall unpredictably.
    # Select it with HYPOTHESIS_PROFILE=ci (the CI workflow does).
    settings.register_profile(
        "ci",
        derandomize=True,
        deadline=None,
        max_examples=25,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile("dev", deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

from repro.data.generators import adversarial, intel_wireless_like, nyc_taxi_like
from repro.data.table import Table
from repro.query.predicate import Interval, RectPredicate
from repro.query.query import AggregateQuery, ExactEngine


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_table() -> Table:
    """A 10-row table with a single predicate column and known values."""
    return Table(
        {
            "key": np.arange(10, dtype=float),
            "value": np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]),
        },
        name="tiny",
    )


@pytest.fixture
def skewed_table(rng: np.random.Generator) -> Table:
    """A 2000-row table whose value variance is concentrated in one region.

    The first 80% of keys carry a constant value; the final 20% carry noisy
    large values — a miniature version of the paper's adversarial dataset.
    """
    n = 2000
    key = np.arange(n, dtype=float)
    value = np.concatenate(
        [np.full(int(n * 0.8), 5.0), rng.normal(100.0, 20.0, size=n - int(n * 0.8))]
    )
    value = np.abs(value)
    return Table({"key": key, "value": value}, name="skewed")


@pytest.fixture
def multi_table(rng: np.random.Generator) -> Table:
    """A 3000-row table with three predicate columns and one value column."""
    n = 3000
    return Table(
        {
            "a": rng.uniform(0, 100, size=n),
            "b": rng.uniform(0, 10, size=n),
            "c": rng.integers(0, 50, size=n).astype(float),
            "value": np.abs(rng.lognormal(1.0, 0.6, size=n)),
        },
        name="multi",
    )


@pytest.fixture(scope="session")
def intel_small() -> Table:
    """A small Intel-Wireless-like dataset shared across tests (read-only)."""
    return intel_wireless_like(n_rows=20_000, seed=7)


@pytest.fixture(scope="session")
def adversarial_small() -> Table:
    """A small adversarial dataset shared across tests (read-only)."""
    return adversarial(n_rows=20_000, seed=41)


@pytest.fixture(scope="session")
def nyc_small() -> Table:
    """A small NYC-taxi-like dataset shared across tests (read-only)."""
    return nyc_taxi_like(n_rows=20_000, seed=23)


@pytest.fixture
def range_query_factory():
    """Factory producing SUM/COUNT/AVG range queries over a key column."""

    def factory(agg: str, low: float, high: float, value_column: str = "value",
                key_column: str = "key") -> AggregateQuery:
        return AggregateQuery(
            agg, value_column, RectPredicate({key_column: Interval(low, high)})
        )

    return factory


@pytest.fixture
def exact(tiny_table: Table) -> ExactEngine:
    """Exact engine over the tiny table."""
    return ExactEngine(tiny_table)
