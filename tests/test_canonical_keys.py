"""Regression tests for canonical hashing/equality of queries and predicates.

The serving layer keys its result cache on queries, so two queries matching
exactly the same tuples must compare equal and hash identically regardless of
how they were spelled: column order, int vs float bounds, and explicitly
unbounded intervals must not matter.
"""

from __future__ import annotations

import math

from repro.query.predicate import Interval, RectPredicate
from repro.query.query import AggregateQuery


class TestRectPredicateCanonicalForm:
    def test_unbounded_interval_equals_absent_column(self):
        explicit = RectPredicate({"x": Interval(0.0, 1.0), "y": Interval.unbounded()})
        implicit = RectPredicate({"x": Interval(0.0, 1.0)})
        assert explicit == implicit
        assert hash(explicit) == hash(implicit)

    def test_all_unbounded_equals_everything(self):
        assert RectPredicate({"x": Interval.unbounded()}) == RectPredicate.everything()

    def test_column_order_does_not_matter(self):
        a = RectPredicate({"a": Interval(0.0, 1.0), "b": Interval(2.0, 3.0)})
        b = RectPredicate({"b": Interval(2.0, 3.0), "a": Interval(0.0, 1.0)})
        assert a == b
        assert hash(a) == hash(b)

    def test_int_bounds_equal_float_bounds(self):
        a = RectPredicate.from_bounds(x=(0, 10))
        b = RectPredicate.from_bounds(x=(0.0, 10.0))
        assert a == b
        assert hash(a) == hash(b)

    def test_different_bounds_are_unequal(self):
        assert RectPredicate.from_bounds(x=(0.0, 1.0)) != RectPredicate.from_bounds(
            x=(0.0, 2.0)
        )

    def test_one_sided_intervals_are_kept(self):
        at_least = RectPredicate({"x": Interval.at_least(5.0)})
        at_most = RectPredicate({"x": Interval.at_most(5.0)})
        assert at_least != at_most
        assert at_least != RectPredicate.everything()
        assert at_least.canonical_key() == (("x", 5.0, math.inf),)

    def test_canonical_key_is_sorted_and_float(self):
        predicate = RectPredicate({"b": Interval(1, 2), "a": Interval(3, 4)})
        key = predicate.canonical_key()
        assert key == (("a", 3.0, 4.0), ("b", 1.0, 2.0))
        assert all(
            isinstance(bound, float) for _, low, high in key for bound in (low, high)
        )

    def test_usable_as_dict_key(self):
        cache = {RectPredicate.from_bounds(x=(0, 1)): "hit"}
        assert cache[
            RectPredicate({"x": Interval(0.0, 1.0), "y": Interval.unbounded()})
        ] == "hit"


class TestAggregateQueryCanonicalForm:
    def test_equal_queries_share_hash_and_cache_key(self):
        a = AggregateQuery("sum", "value", RectPredicate.from_bounds(x=(0, 1)))
        b = AggregateQuery("SUM", "value", RectPredicate.from_bounds(x=(0.0, 1.0)))
        assert a == b
        assert hash(a) == hash(b)
        assert a.cache_key() == b.cache_key()

    def test_cache_key_distinguishes_aggregate_and_column(self):
        predicate = RectPredicate.from_bounds(x=(0.0, 1.0))
        sum_query = AggregateQuery.sum("value", predicate)
        count_key = AggregateQuery.count("value", predicate).cache_key()
        other_key = AggregateQuery.sum("other", predicate).cache_key()
        assert sum_query.cache_key() != count_key
        assert sum_query.cache_key() != other_key

    def test_cache_key_ignores_unbounded_predicate_columns(self):
        a = AggregateQuery.sum(
            "value", RectPredicate({"x": Interval(0.0, 1.0), "y": Interval.unbounded()})
        )
        b = AggregateQuery.sum("value", RectPredicate.from_bounds(x=(0, 1)))
        assert a.cache_key() == b.cache_key()

    def test_usable_as_dict_key(self):
        query = AggregateQuery.avg("value", RectPredicate.from_bounds(x=(2, 5)))
        results = {query: 1.5}
        same = AggregateQuery("AVG", "value", RectPredicate.from_bounds(x=(2.0, 5.0)))
        assert results[same] == 1.5
