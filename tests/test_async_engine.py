"""Async serving tier: coalescing, batch windows, backpressure, writes.

Covers the four tentpole guarantees of :mod:`repro.serving.async_engine`:

* **Coalescing correctness** — N concurrent identical queries execute once
  and every waiter receives the same (correct) answer; distinct queries in
  one window dispatch as one micro-batch.
* **Batch-window semantics** — the window seals by size immediately and by
  the time budget otherwise.
* **Backpressure** — past ``max_pending`` the tier rejects with a typed
  :class:`Overloaded` carrying the queue telemetry, and recovers once the
  queue drains.
* **Writer / reader linearizability** — writes serialize through the
  scheduler, atomically invalidate overlapping coalesced futures, and a
  read issued after an acknowledged write observes it; readers never see
  counts go backwards under concurrent write stress.

Everything drives real ``asyncio`` event loops through ``asyncio.run`` (no
event-loop plugin needed).
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.core.batching import batch_query, compile_batch
from repro.core.config import PASSConfig
from repro.core.updates import DynamicPASS
from repro.data.table import Table
from repro.evaluation.harness import arrival_offsets, evaluate_async_workload
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery
from repro.serving import (
    AsyncServingEngine,
    Overloaded,
    ServingEngine,
    SynopsisCatalog,
)

N_ROWS = 3000


def make_table(seed: int = 77) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        {
            "key": rng.uniform(0.0, 50.0, size=N_ROWS),
            "value": np.abs(rng.normal(20.0, 5.0, size=N_ROWS)),
        },
        name="async_stress",
    )


def make_engine(
    table: Table | None = None, dynamic: bool = True, **engine_kwargs
) -> tuple[ServingEngine, SynopsisCatalog]:
    table = table if table is not None else make_table()
    config = PASSConfig(n_partitions=8, sample_rate=0.05, opt_sample_size=200, seed=3)
    if dynamic:
        synopsis = DynamicPASS(table, "value", ["key"], config)
    else:
        from repro.core.builder import build_pass

        synopsis = build_pass(table, "value", ["key"], config)
    catalog = SynopsisCatalog()
    catalog.register("async_value", synopsis, table_name="async_stress")
    catalog.register_table(table)
    engine_kwargs.setdefault("vectorized_batches", True)
    return ServingEngine(catalog, **engine_kwargs), catalog


class CountingEngine(ServingEngine):
    """ServingEngine that counts executed (non-cached) queries and batches."""

    def __init__(self, *args, delay: float = 0.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.executed_queries = 0
        self.executed_batches = 0
        self.delay = delay

    def execute_batch(self, queries, table=None):
        self.executed_batches += 1
        self.executed_queries += len(queries)
        if self.delay:
            time.sleep(self.delay)
        return super().execute_batch(queries, table=table)


def count_all() -> AggregateQuery:
    return AggregateQuery("COUNT", "value", RectPredicate.everything())


def sum_range(low: float, high: float) -> AggregateQuery:
    return AggregateQuery("SUM", "value", RectPredicate.from_bounds(key=(low, high)))


# ----------------------------------------------------------------------
# Coalescing
# ----------------------------------------------------------------------
def test_concurrent_identical_queries_execute_once():
    table = make_table()
    config = PASSConfig(n_partitions=8, sample_rate=0.05, opt_sample_size=200, seed=3)
    catalog = SynopsisCatalog()
    catalog.register(
        "async_value",
        DynamicPASS(table, "value", ["key"], config),
        table_name="async_stress",
    )
    catalog.register_table(table)
    engine = CountingEngine(catalog, cache_size=0, vectorized_batches=True)
    reference = ServingEngine(catalog, cache_size=0).execute(count_all())

    async def main():
        async with AsyncServingEngine(engine, batch_window=0.001) as tier:
            results = await asyncio.gather(
                *(tier.execute(count_all()) for _ in range(48))
            )
            return results, tier.stats()

    results, stats = asyncio.run(main())
    assert engine.executed_queries == 1
    assert engine.executed_batches == 1
    assert stats.coalesced == 47
    assert all(r.estimate == reference.estimate for r in results)


def test_distinct_queries_share_one_micro_batch_and_match_sequential():
    engine, _ = make_engine(cache_size=0)
    queries = [sum_range(float(i), float(i + 7)) for i in range(20)]
    sequential = [engine.execute(q) for q in queries]

    async def main():
        async with AsyncServingEngine(engine, batch_window=0.002) as tier:
            results = await tier.execute_many(queries)
            return results, tier.stats()

    results, stats = asyncio.run(main())
    assert stats.scheduler.batches == 1
    assert stats.scheduler.dispatched == len(queries)
    for got, want in zip(results, sequential):
        assert np.isclose(got.estimate, want.estimate, rtol=1e-9)
        assert got.hard_lower == pytest.approx(want.hard_lower, rel=1e-9)
        assert got.hard_upper == pytest.approx(want.hard_upper, rel=1e-9)


def test_cache_hits_bypass_the_scheduler():
    engine, _ = make_engine(cache_size=128)
    query = count_all()
    warm = engine.execute(query)

    async def main():
        async with AsyncServingEngine(engine) as tier:
            result = await tier.execute(query)
            return result, tier.stats()

    result, stats = asyncio.run(main())
    assert result.estimate == warm.estimate
    assert stats.scheduler.submitted == 0


# ----------------------------------------------------------------------
# Batch-window semantics
# ----------------------------------------------------------------------
def test_window_seals_by_size_before_time():
    engine, _ = make_engine(cache_size=0)
    queries = [sum_range(float(i), float(i + 3)) for i in range(8)]

    async def main():
        # A huge time window: only the size bound can seal.
        async with AsyncServingEngine(engine, max_batch=4, batch_window=30.0) as tier:
            await tier.execute_many(queries)
            return tier.stats()

    stats = asyncio.run(main())
    assert stats.scheduler.batches == 2
    assert stats.scheduler.max_batch_size == 4


def test_window_seals_by_time_when_undersized():
    engine, _ = make_engine(cache_size=0)
    queries = [sum_range(float(i), float(i + 3)) for i in range(3)]

    async def main():
        async with AsyncServingEngine(engine, max_batch=64, batch_window=0.01) as tier:
            start = time.perf_counter()
            await tier.execute_many(queries)
            elapsed = time.perf_counter() - start
            return tier.stats(), elapsed

    stats, elapsed = asyncio.run(main())
    assert stats.scheduler.batches == 1
    assert stats.scheduler.dispatched == 3
    assert elapsed >= 0.01  # the window waited for the time budget


# ----------------------------------------------------------------------
# Backpressure
# ----------------------------------------------------------------------
def test_overloaded_is_typed_and_queue_recovers():
    table = make_table()
    config = PASSConfig(n_partitions=8, sample_rate=0.05, opt_sample_size=200, seed=3)
    catalog = SynopsisCatalog()
    catalog.register(
        "async_value",
        DynamicPASS(table, "value", ["key"], config),
        table_name="async_stress",
    )
    catalog.register_table(table)
    engine = CountingEngine(catalog, cache_size=0, vectorized_batches=True, delay=0.05)

    async def main():
        tier = AsyncServingEngine(engine, max_batch=2, batch_window=0.0, max_pending=3)
        async with tier:
            first = [
                asyncio.create_task(tier.execute(sum_range(float(i), float(i + 2))))
                for i in range(3)
            ]
            await asyncio.sleep(0)  # let the submissions land
            with pytest.raises(Overloaded) as excinfo:
                await tier.execute(sum_range(100.0, 101.0))
            rejected_at = tier.stats()
            await asyncio.gather(*first)
            # Queue drained: admission works again.
            late = await tier.execute(sum_range(30.0, 33.0))
            return excinfo.value, rejected_at, late, tier.stats()

    error, rejected_at, late, final = asyncio.run(main())
    assert error.pending == 3
    assert error.capacity == 3
    assert "retry" in str(error)
    assert rejected_at.scheduler.rejected == 1
    assert np.isfinite(late.estimate)
    assert final.scheduler.rejected == 1


def test_rejected_leader_leaves_no_stale_inflight_entry():
    engine, _ = make_engine(cache_size=0)

    async def main():
        tier = AsyncServingEngine(engine, batch_window=0.0, max_pending=1)
        async with tier:
            query = sum_range(1.0, 2.0)
            block = asyncio.create_task(tier.execute(sum_range(10.0, 20.0)))
            await asyncio.sleep(0)
            with pytest.raises(Overloaded):
                await tier.execute(query)
            assert tier.stats().inflight <= 1  # the rejected leader detached
            await block
            result = await tier.execute(query)  # works after drain
            return result

    result = asyncio.run(main())
    assert np.isfinite(result.estimate)


# ----------------------------------------------------------------------
# Writes: serialization, invalidation, linearizability
# ----------------------------------------------------------------------
def test_acknowledged_write_is_visible_to_subsequent_reads():
    engine, _ = make_engine(cache_size=256)

    async def main():
        async with AsyncServingEngine(engine, batch_window=0.001) as tier:
            before = (await tier.execute(count_all())).estimate
            await tier.insert("async_value", {"key": 10.0, "value": 5.0})
            after = (await tier.execute(count_all())).estimate
            await tier.delete("async_value", {"key": 10.0, "value": 5.0})
            restored = (await tier.execute(count_all())).estimate
            return before, after, restored

    before, after, restored = asyncio.run(main())
    assert after == before + 1
    assert restored == before


def test_write_invalidates_overlapping_coalesced_futures():
    table = make_table()
    config = PASSConfig(n_partitions=8, sample_rate=0.05, opt_sample_size=200, seed=3)
    catalog = SynopsisCatalog()
    catalog.register(
        "async_value",
        DynamicPASS(table, "value", ["key"], config),
        table_name="async_stress",
    )
    catalog.register_table(table)
    engine = CountingEngine(catalog, cache_size=0, vectorized_batches=True, delay=0.03)

    async def main():
        async with AsyncServingEngine(engine, batch_window=0.0) as tier:
            # Occupy the drain loop so later requests stay in flight.
            blocker = asyncio.create_task(tier.execute(sum_range(40.0, 45.0)))
            await asyncio.sleep(0)
            write = asyncio.create_task(
                tier.insert("async_value", {"key": 10.0, "value": 5.0})
            )
            await asyncio.sleep(0)
            # Admitted while the write is queued: their futures are in the
            # coalescer when the write applies, and the region overlaps.
            reads = [asyncio.create_task(tier.execute(count_all())) for _ in range(4)]
            await asyncio.sleep(0)
            await asyncio.gather(blocker, write, *reads)
            counts = [task.result().estimate for task in reads]
            return counts, tier.stats()

    counts, stats = asyncio.run(main())
    assert stats.invalidated_futures >= 1
    # The coalesced reads executed after the write: they must see it.
    assert all(count == N_ROWS + 1 for count in counts)


def test_async_stress_readers_never_see_counts_regress():
    engine, _ = make_engine(cache_size=512)
    n_inserts = 40
    n_readers = 6

    async def main():
        async with AsyncServingEngine(engine, batch_window=0.0005) as tier:
            initial = (await tier.execute(count_all())).estimate
            observations: list[list[float]] = [[] for _ in range(n_readers)]
            done = asyncio.Event()

            async def writer():
                for i in range(n_inserts):
                    await tier.insert(
                        "async_value", {"key": float(i % 50), "value": 1.0}
                    )
                done.set()

            async def reader(slot: int):
                while not done.is_set():
                    result = await tier.execute(count_all())
                    observations[slot].append(result.estimate)
                    await asyncio.sleep(0)

            await asyncio.gather(writer(), *(reader(i) for i in range(n_readers)))
            final = (await tier.execute(count_all())).estimate
            return initial, observations, final

    initial, observations, final = asyncio.run(main())
    assert final == initial + n_inserts
    for seen in observations:
        assert all(x == int(x) for x in seen), "torn read: non-integer count"
        assert all(b >= a for a, b in zip(seen, seen[1:])), "count regressed"
        assert all(initial <= x <= initial + n_inserts for x in seen)


# ----------------------------------------------------------------------
# Error propagation and lifecycle
# ----------------------------------------------------------------------
def test_unroutable_query_propagates_to_every_waiter():
    engine, _ = make_engine(cache_size=0)
    bad = AggregateQuery("SUM", "no_such_column", RectPredicate.everything())

    async def main():
        async with AsyncServingEngine(engine, batch_window=0.001) as tier:
            tasks = [asyncio.create_task(tier.execute(bad)) for _ in range(3)]
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)
            return outcomes

    outcomes = asyncio.run(main())
    assert len(outcomes) == 3
    assert all(isinstance(outcome, LookupError) for outcome in outcomes)


def test_executor_failure_detaches_futures_so_queries_can_retry():
    from concurrent.futures import ThreadPoolExecutor

    engine, _ = make_engine(cache_size=0)
    broken = ThreadPoolExecutor(max_workers=1)
    broken.shutdown()

    async def main():
        tier = AsyncServingEngine(engine, batch_window=0.0, executor=broken)
        async with tier:
            query = sum_range(1.0, 9.0)
            with pytest.raises(RuntimeError):
                await tier.execute(query)
            # The dead future was detached: the same canonical query gets a
            # fresh execution attempt instead of the stale exception.
            assert tier.stats().inflight == 0
            tier._executor = None  # recover on the default executor
            result = await tier.execute(query)
            return result

    result = asyncio.run(main())
    assert np.isfinite(result.estimate)


def test_unstarted_engine_raises():
    engine, _ = make_engine()

    async def main():
        tier = AsyncServingEngine(engine)
        with pytest.raises(RuntimeError, match="not started"):
            await tier.execute(count_all())

    asyncio.run(main())


# ----------------------------------------------------------------------
# BatchPlan compilation
# ----------------------------------------------------------------------
def test_compile_batch_dedupes_frontier_slots():
    engine, catalog = make_engine(cache_size=0)
    synopsis = catalog.get("async_value").pass_synopsis
    predicate = RectPredicate.from_bounds(key=(5.0, 25.0))
    queries = [
        AggregateQuery(agg, "value", predicate) for agg in ("SUM", "COUNT", "AVG")
    ] * 3
    plan = compile_batch(synopsis, queries)
    # SUM and COUNT share a slot; AVG gets its own (zero-variance rule).
    assert len(plan.slot_queries) == 2
    assert plan.frontiers[0] is plan.frontiers[1]
    exact = plan.execute()
    vectorized = plan.execute_vectorized()
    sequential = [synopsis.query(q) for q in queries]
    for got, want in zip(exact, sequential):
        assert got.estimate == want.estimate
        assert got.variance == want.variance
    for got, want in zip(vectorized, sequential):
        assert np.isclose(got.estimate, want.estimate, rtol=1e-9)


def test_batch_query_vectorized_matches_sequential_for_all_aggregates():
    engine, catalog = make_engine(cache_size=0)
    synopsis = catalog.get("async_value").pass_synopsis
    rng = np.random.default_rng(5)
    queries = []
    for i in range(60):
        low, high = sorted(rng.uniform(0.0, 50.0, size=2))
        queries.append(
            AggregateQuery(
                ("SUM", "COUNT", "AVG", "MIN", "MAX")[i % 5],
                "value",
                RectPredicate.from_bounds(key=(float(low), float(high))),
            )
        )
    sequential = [synopsis.query(q) for q in queries]
    for got, want in zip(batch_query(synopsis, queries, vectorized=True), sequential):
        assert np.isclose(got.estimate, want.estimate, rtol=1e-9, equal_nan=True)
        assert got.exact == want.exact


# ----------------------------------------------------------------------
# Open-loop workload harness
# ----------------------------------------------------------------------
def test_arrival_offsets_shapes_and_rates():
    rng = np.random.default_rng(0)
    poisson = arrival_offsets("poisson", 1000, 500.0, rng)
    assert poisson.shape == (1000,)
    assert np.all(np.diff(poisson) >= 0)
    assert poisson[-1] == pytest.approx(2.0, rel=0.3)  # ~n/rate seconds
    bursty = arrival_offsets("bursty", 100, 500.0, rng, burst_size=10)
    assert bursty.shape == (100,)
    # Bursts arrive back-to-back: consecutive offsets inside a burst equal.
    assert np.count_nonzero(np.diff(bursty) == 0) >= 80
    with pytest.raises(ValueError, match="unknown arrival process"):
        arrival_offsets("uniform", 10, 1.0, rng)


def test_evaluate_async_workload_poisson_completes_everything():
    engine, _ = make_engine(cache_size=0)
    queries = [sum_range(float(i), float(i + 5)) for i in range(16)]
    tier = AsyncServingEngine(engine, batch_window=0.0005)
    report = evaluate_async_workload(
        tier, queries, rate=2000.0, n_requests=200, duplicate_ratio=0.5, seed=3
    )
    assert report.n_requests == 200
    assert report.completed == 200
    assert report.rejected == 0
    assert report.coalesced >= 0
    assert np.isfinite(report.p50_latency_ms)
    assert report.p99_latency_ms >= report.p50_latency_ms
    assert report.achieved_qps > 0


def test_evaluate_async_workload_adversarial_coalesces_bursts():
    engine, _ = make_engine(cache_size=0)
    queries = [sum_range(float(i), float(i + 5)) for i in range(8)]
    tier = AsyncServingEngine(engine, batch_window=0.0005)
    report = evaluate_async_workload(
        tier,
        queries,
        rate=5000.0,
        n_requests=256,
        arrival="adversarial",
        burst_size=16,
        seed=3,
    )
    assert report.completed == 256
    # Every burst is one canonical query: most requests must coalesce.
    assert report.coalesced >= 128


def test_evaluate_async_workload_sheds_load_when_overloaded():
    table = make_table()
    config = PASSConfig(n_partitions=8, sample_rate=0.05, opt_sample_size=200, seed=3)
    catalog = SynopsisCatalog()
    catalog.register(
        "async_value",
        DynamicPASS(table, "value", ["key"], config),
        table_name="async_stress",
    )
    catalog.register_table(table)
    engine = CountingEngine(catalog, cache_size=0, vectorized_batches=True, delay=0.02)
    tier = AsyncServingEngine(engine, max_batch=4, batch_window=0.0, max_pending=8)
    queries = [sum_range(float(i), float(i + 1)) for i in range(64)]
    report = evaluate_async_workload(
        tier, queries, rate=50_000.0, n_requests=64, seed=1
    )
    assert report.rejected > 0
    assert report.completed + report.rejected == 64
