"""Unit tests for the mergeable sketch primitives and their query plumbing.

Deterministic, example-based coverage of :mod:`repro.sketches`; the
adversarial / randomized law checking lives in the hypothesis layer
(``test_sketch_properties.py``) and the four serving paths in
``test_sketch_e2e.py``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.query.aggregates import AggregateType
from repro.query.groupby import AggregateSpec, empty_group_result
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery
from repro.sketches import (
    DistinctSketch,
    DistinctSketchUnion,
    LeafSketches,
    QuantileSketch,
    QuantileSketchUnion,
)


class TestQuantileSketch:
    def test_small_input_is_exact(self):
        sketch = QuantileSketch(k=64)
        sketch.update_array(np.arange(1, 51, dtype=float))
        assert sketch.is_exact
        assert sketch.n == 50
        assert sketch.rank_error_bound() == 0
        assert sketch.quantile(0.5) == 25.0
        assert sketch.quantile(0.0) == 1.0
        assert sketch.quantile(1.0) == 50.0
        assert sketch.rank(25.0) == 25

    def test_nan_values_are_ignored(self):
        sketch = QuantileSketch(k=64)
        sketch.update_array(np.array([1.0, float("nan"), 3.0]))
        sketch.update(float("nan"))
        assert sketch.n == 2
        assert sketch.quantile(1.0) == 3.0

    def test_empty_sketch_answers_nan(self):
        sketch = QuantileSketch(k=64)
        assert sketch.n == 0
        assert math.isnan(sketch.quantile(0.5))
        assert math.isnan(sketch.min) and math.isnan(sketch.max)
        assert sketch.rank(10.0) == 0

    def test_quantile_out_of_range_raises(self):
        sketch = QuantileSketch(k=64)
        with pytest.raises(ValueError, match="quantile"):
            sketch.quantile(1.5)

    def test_compaction_certifies_its_error(self):
        rng = np.random.default_rng(3)
        data = rng.uniform(0, 1, size=20_000)
        sketch = QuantileSketch(k=32)
        sketch.update_array(data)
        assert not sketch.is_exact
        bound = sketch.rank_error_bound()
        assert 0 < bound < sketch.n
        ordered = np.sort(data)
        for q in (0.1, 0.5, 0.9):
            estimate = sketch.quantile(q)
            target = max(1, min(math.ceil(q * sketch.n), sketch.n))
            lo = np.searchsorted(ordered, estimate, side="left") + 1
            hi = np.searchsorted(ordered, estimate, side="right")
            assert lo <= target + bound and hi >= target - bound

    def test_extrema_stay_exact_after_compaction(self):
        rng = np.random.default_rng(4)
        data = rng.normal(0, 100, size=5_000)
        sketch = QuantileSketch(k=16)
        sketch.update_array(data)
        assert sketch.min == data.min()
        assert sketch.max == data.max()

    def test_weighted_update_preserves_total_weight(self):
        sketch = QuantileSketch(k=64)
        sketch.update_weighted(np.array([1.0, 2.0, 3.0]), 300)
        assert sketch.n == 300
        assert sketch.quantile(0.5) == 2.0
        # Fewer weight units than values: deterministic truncation.
        other = QuantileSketch(k=64)
        other.update_weighted(np.array([5.0, 1.0, 3.0]), 2)
        assert other.n == 2
        assert other.quantile(1.0) == 3.0

    def test_merge_is_commutative_and_conserves_state(self):
        rng = np.random.default_rng(5)
        a, b = QuantileSketch(k=32), QuantileSketch(k=32)
        a.update_array(rng.normal(0, 1, 3_000))
        b.update_array(rng.normal(5, 2, 3_000))
        ab, ba = a.merge(b), b.merge(a)
        assert ab.n == ba.n == 6_000
        assert ab.rank_error_bound() == ba.rank_error_bound()
        for q in np.linspace(0, 1, 21):
            assert ab.quantile(q) == ba.quantile(q)
        # inputs untouched
        assert a.n == 3_000 and b.n == 3_000

    def test_merge_k_mismatch_raises(self):
        with pytest.raises(ValueError, match="different k"):
            QuantileSketch(k=32).merge(QuantileSketch(k=64))
        with pytest.raises(TypeError):
            QuantileSketch(k=32).merge(object())

    def test_round_trip_is_identical(self):
        rng = np.random.default_rng(6)
        sketch = QuantileSketch(k=16)
        sketch.update_array(rng.uniform(0, 10, 2_000))
        loaded = QuantileSketch.from_arrays(sketch.to_arrays())
        assert loaded.n == sketch.n
        assert loaded.rank_error_bound() == sketch.rank_error_bound()
        assert loaded.min == sketch.min and loaded.max == sketch.max
        for q in np.linspace(0, 1, 51):
            assert loaded.quantile(q) == sketch.quantile(q)

    def test_k_validation(self):
        with pytest.raises(ValueError, match="k must be"):
            QuantileSketch(k=4)

    def test_storage_grows_sublinearly(self):
        rng = np.random.default_rng(7)
        sketch = QuantileSketch(k=64)
        sketch.update_array(rng.uniform(0, 1, 100_000))
        # 100k floats raw = 800kB; the sketch keeps O(k log(n/k)).
        assert sketch.storage_bytes() < 50_000


class TestDistinctSketch:
    def test_exact_below_capacity(self):
        sketch = DistinctSketch(k=64)
        sketch.update_array(np.array([1.0, 2.0, 2.0, 3.0, -0.0, 0.0]))
        assert sketch.is_exact
        # -0.0 and 0.0 are numerically equal: one distinct value.
        assert sketch.estimate() == 4.0
        assert sketch.error_fraction() == 0.0

    def test_nan_values_are_ignored(self):
        sketch = DistinctSketch(k=64)
        sketch.update_array(np.array([float("nan"), 1.0, float("nan")]))
        sketch.update(float("nan"))
        assert sketch.estimate() == 1.0

    def test_empty_sketch_estimates_zero(self):
        assert DistinctSketch(k=64).estimate() == 0.0

    def test_saturated_estimate_within_margin(self):
        rng = np.random.default_rng(8)
        values = rng.integers(0, 50_000, size=120_000).astype(float)
        truth = float(np.unique(values).shape[0])
        sketch = DistinctSketch(k=1024)
        sketch.update_array(values)
        assert not sketch.is_exact
        margin = sketch.error_fraction()
        assert 0 < margin < 0.2
        assert abs(sketch.estimate() - truth) <= margin * truth

    def test_merge_is_bit_exact_associative_and_commutative(self):
        rng = np.random.default_rng(9)
        parts = [
            rng.integers(low, low + 400, size=3_000).astype(float)
            for low in (0, 250, 500)
        ]
        a, b, c = (DistinctSketch(k=64) for _ in range(3))
        for sketch, part in zip((a, b, c), parts):
            sketch.update_array(part)
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        swapped = c.merge(b).merge(a)
        assert left.estimate() == right.estimate() == swapped.estimate()
        assert np.array_equal(
            left.to_arrays()["hashes"], right.to_arrays()["hashes"]
        )

    def test_merge_k_mismatch_raises(self):
        with pytest.raises(ValueError, match="different k"):
            DistinctSketch(k=32).merge(DistinctSketch(k=64))

    def test_round_trip_is_identical(self):
        rng = np.random.default_rng(10)
        sketch = DistinctSketch(k=32)
        sketch.update_array(rng.integers(0, 10_000, 5_000).astype(float))
        loaded = DistinctSketch.from_arrays(sketch.to_arrays())
        assert loaded.estimate() == sketch.estimate()
        assert loaded.is_exact == sketch.is_exact
        assert np.array_equal(
            loaded.to_arrays()["hashes"], sketch.to_arrays()["hashes"]
        )

    def test_k_validation(self):
        with pytest.raises(ValueError, match="k must be"):
            DistinctSketch(k=8)


class TestLeafSketchesAndUnions:
    def test_leaf_sketches_round_trip(self):
        rng = np.random.default_rng(11)
        sketches = LeafSketches.from_values(
            rng.uniform(0, 100, 4_000), quantile_k=32, distinct_k=64
        )
        loaded = LeafSketches.from_arrays(sketches.to_arrays())
        assert loaded.quantile.quantile(0.5) == sketches.quantile.quantile(0.5)
        assert loaded.distinct.estimate() == sketches.distinct.estimate()
        assert sketches.storage_bytes() > 0

    def test_quantile_union_merge_adds_slack(self):
        a = QuantileSketchUnion(
            sketch=QuantileSketch(k=32),
            boundary_weight=10,
            value_floor=1.0,
            value_ceil=5.0,
            processed=3,
        )
        b = QuantileSketchUnion(
            sketch=QuantileSketch(k=32),
            boundary_weight=7,
            value_floor=0.5,
            value_ceil=9.0,
            processed=4,
        )
        merged = a.merge(b)
        assert merged.boundary_weight == 17
        assert merged.value_floor == 0.5 and merged.value_ceil == 9.0
        assert merged.processed == 7
        assert merged.rank_error_bound() == 2 * 17
        assert not merged.is_exact

    def test_distinct_union_exactness(self):
        sketch = DistinctSketch(k=32)
        sketch.update_array(np.array([1.0, 2.0]))
        union = DistinctSketchUnion(lower=sketch, upper=sketch)
        assert union.is_exact
        widened = union.merge(
            DistinctSketchUnion(
                lower=DistinctSketch(k=32),
                upper=DistinctSketch(k=32),
                boundary_weight=5,
            )
        )
        assert not widened.is_exact
        assert widened.boundary_weight == 5


class TestQuantileQueryModel:
    def test_quantile_defaults_to_median(self):
        query = AggregateQuery("QUANTILE", "value", RectPredicate.everything())
        assert query.quantile == 0.5
        assert AggregateQuery("median", "value", RectPredicate.everything()) == query

    def test_quantile_validation(self):
        with pytest.raises(ValueError, match="quantile must be"):
            AggregateQuery(
                "QUANTILE", "value", RectPredicate.everything(), quantile=1.2
            )
        with pytest.raises(ValueError, match="applies only to QUANTILE"):
            AggregateQuery("SUM", "value", RectPredicate.everything(), quantile=0.5)

    def test_cache_key_carries_quantile(self):
        predicate = RectPredicate.everything()
        p50 = AggregateQuery.median("value", predicate)
        p95 = AggregateQuery.at_quantile("value", 0.95, predicate)
        assert p50.cache_key() != p95.cache_key()
        assert p50 != p95
        again = AggregateQuery("QUANTILE", "value", predicate, quantile=0.95)
        assert again.cache_key() == p95.cache_key() and hash(again) == hash(p95)
        # Classic aggregates keep their pre-sketch key shape.
        assert AggregateQuery.sum("value", predicate).cache_key()[0] == "SUM"

    def test_with_aggregate_drops_or_sets_quantile(self):
        base = AggregateQuery.at_quantile("value", 0.9, RectPredicate.everything())
        as_sum = base.with_aggregate("SUM")
        assert as_sum.quantile is None
        back = as_sum.with_aggregate("QUANTILE", quantile=0.75)
        assert back.quantile == 0.75
        defaulted = as_sum.with_aggregate("QUANTILE")
        assert defaulted.quantile == 0.5

    def test_count_distinct_constructor(self):
        query = AggregateQuery.count_distinct("value", RectPredicate.everything())
        assert query.agg == AggregateType.COUNT_DISTINCT
        assert query.quantile is None

    def test_aggregate_spec_names_and_validation(self):
        assert AggregateSpec("QUANTILE", "value", 0.95).name == "P95(value)"
        assert AggregateSpec("QUANTILE", "value").name == "P50(value)"
        assert AggregateSpec("COUNT_DISTINCT", "value").name == "COUNT_DISTINCT(value)"
        with pytest.raises(ValueError, match="applies only to QUANTILE"):
            AggregateSpec("MAX", "value", 0.5)

    def test_empty_group_results_for_sketch_aggregates(self):
        quantile = empty_group_result(AggregateType.QUANTILE, population=10)
        assert math.isnan(quantile.estimate) and quantile.exact
        distinct = empty_group_result(AggregateType.COUNT_DISTINCT, population=10)
        assert distinct.estimate == 0.0 and distinct.exact
        assert distinct.tuples_skipped == 10
