"""Tests for the variance formulas and the max-variance-query oracles."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partitioning.max_variance import (
    MaxVarianceOracle,
    SparseTable,
    brute_force_max_variance,
)
from repro.partitioning.variance import (
    avg_query_variance,
    core_variance_term,
    count_query_variance,
    query_variance,
    sampled_avg_error_variance,
    sampled_sum_error_variance,
    sum_query_variance,
)
from repro.query.aggregates import AggregateType

positive_values = st.lists(
    st.floats(min_value=0.0, max_value=1e3, allow_nan=False), min_size=4, max_size=80
)


class TestVarianceFormulas:
    def test_core_term_matches_scaled_population_variance(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        core = core_variance_term(4, values.sum(), (values**2).sum())
        assert core == pytest.approx(16 * np.var(values))

    def test_core_term_clamped_at_zero(self):
        # Floating-point cancellation cannot push the term negative.
        assert core_variance_term(2, 2.0, 1.9999999) >= 0.0

    def test_sum_variance_zero_for_constant_values(self):
        values = np.full(10, 7.0)
        assert sum_query_variance(10, values.sum(), (values**2).sum()) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_count_variance_maximised_at_half(self):
        full = count_query_variance(100, 50)
        assert full >= count_query_variance(100, 10)
        assert full >= count_query_variance(100, 90)

    def test_avg_variance_is_sum_variance_scaled_by_query_size(self):
        values = np.array([1.0, 5.0, 9.0, 13.0])
        q_sum, q_sum_sq = values.sum(), (values**2).sum()
        assert avg_query_variance(10, 4, q_sum, q_sum_sq) == pytest.approx(
            sum_query_variance(10, q_sum, q_sum_sq) / 16.0
        )

    def test_dispatch(self):
        assert query_variance(
            AggregateType.SUM, 10, 5, 10.0, 30.0
        ) == sum_query_variance(10, 10.0, 30.0)
        assert query_variance(AggregateType.COUNT, 10, 5, 0, 0) == count_query_variance(
            10, 5
        )
        with pytest.raises(ValueError):
            query_variance(AggregateType.MIN, 10, 5, 0, 0)

    def test_degenerate_inputs_return_zero(self):
        assert sum_query_variance(0, 0.0, 0.0) == 0.0
        assert avg_query_variance(5, 0, 0.0, 0.0) == 0.0
        assert sampled_sum_error_variance(100, 0, 0.0, 0.0) == 0.0
        assert sampled_avg_error_variance(0, 0, 0.0, 0.0) == 0.0

    def test_sampled_sum_error_scales_with_population(self):
        small = sampled_sum_error_variance(100, 10, 50.0, 300.0)
        large = sampled_sum_error_variance(1_000, 10, 50.0, 300.0)
        assert large == pytest.approx(100 * small)

    @given(positive_values)
    @settings(max_examples=80)
    def test_monotonicity_in_partition_size(self, values):
        """Adding irrelevant tuples to a partition cannot decrease V_i(q) (Sec 4.3)."""
        values = np.asarray(values)
        q_sum = float(values.sum())
        q_sum_sq = float((values**2).sum())
        n = len(values)
        assert sum_query_variance(n + 5, q_sum, q_sum_sq) >= sum_query_variance(
            n, q_sum, q_sum_sq
        ) - 1e-9
        assert avg_query_variance(n + 5, n, q_sum, q_sum_sq) >= avg_query_variance(
            n, n, q_sum, q_sum_sq
        ) - 1e-9


class TestSparseTable:
    def test_matches_numpy_max(self, rng):
        values = rng.normal(size=257)
        table = SparseTable(values)
        for _ in range(50):
            start = int(rng.integers(0, 257))
            end = int(rng.integers(start, 257))
            assert table.query(start, end) == pytest.approx(
                values[start : end + 1].max()
            )

    def test_argmax(self, rng):
        values = rng.permutation(64).astype(float)
        table = SparseTable(values)
        assert values[table.argmax(10, 40)] == values[10:41].max()

    def test_invalid_range(self):
        table = SparseTable(np.array([1.0, 2.0]))
        with pytest.raises(IndexError):
            table.query(1, 0)
        with pytest.raises(IndexError):
            table.query(0, 5)

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValueError):
            SparseTable(np.zeros((2, 2)))


class TestMaxVarianceOracle:
    def test_exact_mode_matches_brute_force(self, rng):
        values = np.abs(rng.normal(10, 5, size=30))
        oracle = MaxVarianceOracle(values, agg="SUM", exact=True)
        assert oracle.max_variance(0, 29) == brute_force_max_variance(values, "SUM")

    def test_sum_median_split_is_constant_factor(self, rng):
        """Appendix A.3: the median-split answer is within 4x of the true max."""
        for seed in range(5):
            local = np.random.default_rng(seed)
            values = np.abs(local.lognormal(1.0, 0.8, size=60))
            fast = MaxVarianceOracle(values, agg="SUM", exact=False)
            exact = brute_force_max_variance(values, "SUM")
            approx = fast.max_variance(0, 59)
            assert approx <= exact + 1e-6
            assert approx >= exact / 4.0 - 1e-6

    def test_count_closed_form(self):
        values = np.ones(40)
        oracle = MaxVarianceOracle(values, agg="COUNT")
        # Worst COUNT query covers half the items: V = (n*X - X^2)/n with X=n/2.
        assert oracle.max_variance(0, 39) == pytest.approx(10.0)

    def test_avg_window_requires_enough_samples(self, rng):
        values = np.abs(rng.normal(10, 3, size=100))
        oracle = MaxVarianceOracle(values, agg="AVG", delta=0.2)
        # Ranges shorter than 2 * delta * m are scored as zero variance.
        assert oracle.max_variance(0, 20) == 0.0
        assert oracle.max_variance(0, 99) > 0.0

    def test_avg_window_lower_bounds_exact_maximum(self, rng):
        values = np.concatenate(
            [np.full(50, 5.0), np.abs(rng.normal(100, 30, size=50))]
        )
        delta = 0.1
        fast = MaxVarianceOracle(values, agg="AVG", delta=delta, exact=False)
        exact = MaxVarianceOracle(values, agg="AVG", delta=delta, exact=True)
        approx_value = fast.max_variance(0, 99)
        exact_value = exact.max_variance(0, 99)
        assert approx_value <= exact_value + 1e-6
        assert approx_value >= exact_value / 8.0

    def test_approximate_monotonicity_in_range_growth(self, rng):
        """Growing a partition increases the max variance up to the 4x approximation.

        The exact maximum is monotone (Section 4.3); the median-split
        approximation stays within a factor 4 of it, so consecutive values can
        only drop by at most that factor.
        """
        values = np.abs(rng.lognormal(1.0, 0.7, size=200))
        oracle = MaxVarianceOracle(values, agg="SUM")
        previous = 0.0
        for end in range(20, 200, 20):
            current = oracle.max_variance(0, end)
            assert current >= previous / 4.0 - 1e-9
            previous = current

    def test_max_variance_query_returns_valid_range(self, rng):
        values = np.abs(rng.normal(10, 3, size=120))
        oracle = MaxVarianceOracle(values, agg="AVG", delta=0.1)
        start, end = oracle.max_variance_query(10, 110)
        assert 10 <= start <= end <= 110

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MaxVarianceOracle(np.ones(5), agg="MIN")
        with pytest.raises(ValueError):
            MaxVarianceOracle(np.ones(5), agg="SUM", delta=0.0)

    def test_empty_range_is_zero(self):
        oracle = MaxVarianceOracle(np.ones(5), agg="SUM")
        assert oracle.max_variance(3, 2) == 0.0
