"""Tests for the comparison systems: AQP++, VerdictDB-style, DeepDB-style."""

from __future__ import annotations

import math

import pytest

from repro.baselines.aqp_pp import AQPPlusPlus
from repro.baselines.deepdb_sim import DeepDBModel
from repro.baselines.verdictdb_sim import VerdictDBScramble
from repro.partitioning.equal import equal_depth_partition
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery, ExactEngine


class TestAQPPlusPlus:
    @pytest.fixture(scope="class")
    def synopsis(self, intel_small):
        return AQPPlusPlus(
            intel_small, "light", ["time"], n_partitions=32, sample_rate=0.02, rng=0
        )

    def test_estimates_close_to_truth(self, synopsis, intel_small):
        engine = ExactEngine(intel_small)
        query = AggregateQuery.sum("light", RectPredicate.from_bounds(time=(0.1, 0.8)))
        result = synopsis.query(query)
        truth = engine.execute(query)
        assert result.relative_error(truth) < 0.2
        assert result.within_hard_bounds(truth)

    def test_aligned_query_is_exact(self, synopsis, intel_small):
        box = synopsis._boxes[3]
        query = AggregateQuery.sum(
            "light", RectPredicate({"time": box.interval("time")})
        )
        result = synopsis.query(query)
        truth = ExactEngine(intel_small).execute(query)
        assert result.exact
        assert result.estimate == pytest.approx(truth)

    def test_avg_and_count(self, synopsis, intel_small):
        engine = ExactEngine(intel_small)
        predicate = RectPredicate.from_bounds(time=(0.2, 0.7))
        for agg, tol in (("COUNT", 0.1), ("AVG", 0.1)):
            query = AggregateQuery(agg, "light", predicate)
            assert synopsis.query(query).relative_error(engine.execute(query)) < tol

    def test_min_max_hard_bounds(self, synopsis, intel_small):
        engine = ExactEngine(intel_small)
        query = AggregateQuery(
            "MAX", "light", RectPredicate.from_bounds(time=(0.2, 0.7))
        )
        result = synopsis.query(query)
        assert result.within_hard_bounds(engine.execute(query))

    def test_prebuilt_boxes_are_used(self, intel_small):
        boxes = equal_depth_partition(intel_small, "time", 10)
        synopsis = AQPPlusPlus(
            intel_small,
            "light",
            ["time"],
            n_partitions=99,
            sample_rate=0.01,
            boxes=boxes,
        )
        assert synopsis.n_partitions == len(boxes)

    def test_validation(self, intel_small):
        with pytest.raises(ValueError):
            AQPPlusPlus(intel_small, "light", ["time"], sample_rate=0.1, sample_size=10)
        with pytest.raises(ValueError):
            AQPPlusPlus(
                intel_small, "light", ["time"], sample_rate=0.1, partitioner="bogus"
            )

    def test_wrong_column_rejected(self, synopsis):
        with pytest.raises(ValueError):
            synopsis.query(AggregateQuery.sum("time", RectPredicate.everything()))

    def test_multi_dimensional_construction(self, multi_table):
        synopsis = AQPPlusPlus(
            multi_table, "value", ["a", "b"], n_partitions=16, sample_rate=0.05, rng=0
        )
        engine = ExactEngine(multi_table)
        query = AggregateQuery.sum(
            "value", RectPredicate.from_bounds(a=(10.0, 80.0), b=(1.0, 9.0))
        )
        result = synopsis.query(query)
        assert result.relative_error(engine.execute(query)) < 0.3


class TestVerdictDBScramble:
    def test_full_scramble_is_exact(self, skewed_table, range_query_factory):
        scramble = VerdictDBScramble(
            skewed_table, "value", ["key"], scramble_ratio=1.0, rng=0
        )
        engine = ExactEngine(skewed_table)
        query = range_query_factory("SUM", 10.0, 1700.0)
        result = scramble.query(query)
        assert result.exact
        assert result.estimate == pytest.approx(engine.execute(query))

    def test_partial_scramble_estimates(self, skewed_table, range_query_factory):
        scramble = VerdictDBScramble(
            skewed_table, "value", ["key"], scramble_ratio=0.3, rng=0
        )
        engine = ExactEngine(skewed_table)
        for agg in ("SUM", "COUNT", "AVG"):
            query = range_query_factory(agg, 10.0, 1700.0)
            result = scramble.query(query)
            assert result.relative_error(engine.execute(query)) < 0.25
            assert not math.isnan(result.ci_half_width)

    def test_latency_proxy_is_scramble_scan(self, skewed_table, range_query_factory):
        scramble = VerdictDBScramble(
            skewed_table, "value", ["key"], scramble_ratio=0.5, rng=0
        )
        result = scramble.query(range_query_factory("SUM", 0.0, 100.0))
        assert result.tuples_processed == scramble.scramble_size

    def test_validation(self, skewed_table):
        with pytest.raises(ValueError):
            VerdictDBScramble(skewed_table, "value", ["key"], scramble_ratio=0.0)
        with pytest.raises(ValueError):
            VerdictDBScramble(skewed_table, "value", ["key"], n_blocks=1)

    def test_wrong_column_rejected(self, skewed_table):
        scramble = VerdictDBScramble(skewed_table, "value", ["key"], scramble_ratio=0.1)
        with pytest.raises(ValueError):
            scramble.query(AggregateQuery.sum("key", RectPredicate.everything()))

    def test_storage_scales_with_ratio(self, skewed_table):
        small = VerdictDBScramble(skewed_table, "value", ["key"], scramble_ratio=0.1)
        large = VerdictDBScramble(skewed_table, "value", ["key"], scramble_ratio=1.0)
        assert large.storage_bytes() > 5 * small.storage_bytes()


class TestDeepDBModel:
    @pytest.fixture(scope="class")
    def model(self, intel_small):
        return DeepDBModel(
            intel_small, "light", ["time"], training_ratio=0.3, n_bins=64, rng=0
        )

    def test_one_dimensional_queries_are_reasonable(self, model, intel_small):
        engine = ExactEngine(intel_small)
        predicate = RectPredicate.from_bounds(time=(0.2, 0.7))
        for agg, tol in (("COUNT", 0.1), ("SUM", 0.2), ("AVG", 0.2)):
            query = AggregateQuery(agg, "light", predicate)
            assert model.query(query).relative_error(engine.execute(query)) < tol

    def test_no_data_access_at_query_time(self, model):
        query = AggregateQuery.count(
            "light", RectPredicate.from_bounds(time=(0.0, 1.0))
        )
        result = model.query(query)
        assert result.tuples_processed == 0

    def test_correlated_multi_dim_queries_degrade(self, nyc_small):
        """The factorized model loses accuracy on correlated multi-column predicates,
        mirroring Table 2's DeepDB behaviour on higher-dimensional templates."""
        engine = ExactEngine(nyc_small)
        model_1d = DeepDBModel(
            nyc_small, "trip_distance", ["pickup_time"], training_ratio=0.5, rng=0
        )
        model_3d = DeepDBModel(
            nyc_small,
            "trip_distance",
            ["pickup_time", "pickup_date", "dropoff_time"],
            training_ratio=0.5,
            rng=0,
        )
        query_1d = AggregateQuery.sum(
            "trip_distance", RectPredicate.from_bounds(pickup_time=(6.0, 20.0))
        )
        query_3d = AggregateQuery.sum(
            "trip_distance",
            RectPredicate.from_bounds(
                pickup_time=(6.0, 20.0),
                pickup_date=(5.0, 25.0),
                dropoff_time=(6.0, 21.0),
            ),
        )
        err_1d = model_1d.query(query_1d).relative_error(engine.execute(query_1d))
        err_3d = model_3d.query(query_3d).relative_error(engine.execute(query_3d))
        assert err_3d > err_1d

    def test_min_max_unsupported(self, model):
        result = model.query(
            AggregateQuery("MAX", "light", RectPredicate.from_bounds(time=(0.0, 1.0)))
        )
        assert math.isnan(result.estimate)

    def test_validation(self, intel_small):
        with pytest.raises(ValueError):
            DeepDBModel(intel_small, "light", ["time"], training_ratio=0.0)
        with pytest.raises(ValueError):
            DeepDBModel(intel_small, "light", ["time"], n_bins=1)

    def test_wrong_column_rejected(self, model):
        with pytest.raises(ValueError):
            model.query(AggregateQuery.sum("time", RectPredicate.everything()))

    def test_storage_is_tiny(self, model, intel_small):
        assert model.storage_bytes() < intel_small.memory_bytes() / 100
