"""Tests for the uniform-sampling and stratified-sampling synopses."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.data.table import Table
from repro.query.predicate import Box, Interval, RectPredicate
from repro.query.query import AggregateQuery, ExactEngine
from repro.sampling.stratified import (
    StratifiedSampleSynopsis,
    Stratum,
    equal_depth_boxes,
)
from repro.sampling.uniform import UniformSampleSynopsis


class TestUniformSampleSynopsis:
    def test_full_sample_is_exact_for_sum_count(
        self, skewed_table, range_query_factory
    ):
        synopsis = UniformSampleSynopsis(
            skewed_table, "value", ["key"], sample_rate=1.0, rng=0
        )
        engine = ExactEngine(skewed_table)
        query = range_query_factory("SUM", 100.0, 1500.0)
        assert synopsis.query(query).estimate == pytest.approx(engine.execute(query))
        count = query.with_aggregate("count")
        assert synopsis.query(count).estimate == pytest.approx(engine.execute(count))

    def test_constructor_validation(self, skewed_table):
        with pytest.raises(ValueError):
            UniformSampleSynopsis(skewed_table, "value", ["key"])
        with pytest.raises(ValueError):
            UniformSampleSynopsis(
                skewed_table, "value", ["key"], sample_rate=0.1, sample_size=10
            )
        with pytest.raises(ValueError):
            UniformSampleSynopsis(skewed_table, "value", ["key"], sample_rate=2.0)

    def test_estimates_within_a_few_sigma(self, skewed_table, range_query_factory):
        synopsis = UniformSampleSynopsis(
            skewed_table, "value", ["key"], sample_rate=0.2, rng=1
        )
        engine = ExactEngine(skewed_table)
        query = range_query_factory("SUM", 0.0, 1900.0)
        result = synopsis.query(query)
        truth = engine.execute(query)
        assert abs(result.estimate - truth) <= 5 * (result.ci_half_width / 2.576 + 1e-9)

    def test_wrong_value_column_rejected(self, skewed_table, range_query_factory):
        synopsis = UniformSampleSynopsis(
            skewed_table, "value", ["key"], sample_size=50, rng=0
        )
        query = AggregateQuery.sum("key", RectPredicate.everything())
        with pytest.raises(ValueError):
            synopsis.query(query)

    def test_missing_predicate_column_raises(self, skewed_table):
        synopsis = UniformSampleSynopsis(
            skewed_table, "value", ["key"], sample_size=50, rng=0
        )
        query = AggregateQuery.sum(
            "value", RectPredicate.from_bounds(unknown=(0.0, 1.0))
        )
        with pytest.raises(KeyError):
            synopsis.query(query)

    def test_min_max_reported_without_interval(self, skewed_table, range_query_factory):
        synopsis = UniformSampleSynopsis(
            skewed_table, "value", ["key"], sample_rate=0.5, rng=0
        )
        result = synopsis.query(range_query_factory("MAX", 0.0, 2000.0))
        assert result.estimate > 0
        assert math.isnan(result.ci_half_width)

    def test_storage_and_sizes(self, skewed_table):
        synopsis = UniformSampleSynopsis(
            skewed_table, "value", ["key"], sample_size=100, rng=0
        )
        assert synopsis.sample_size == 100
        assert synopsis.population_size == skewed_table.n_rows
        assert synopsis.storage_bytes() > 0


class TestEqualDepthBoxes:
    def test_boxes_partition_all_rows(self, skewed_table):
        boxes = equal_depth_boxes(skewed_table, "key", 8)
        key = skewed_table.column("key")
        total = sum(int(box.mask({"key": key}).sum()) for box in boxes)
        assert total == skewed_table.n_rows
        # Boxes are pairwise disjoint.
        for i, a in enumerate(boxes):
            for b in boxes[i + 1 :]:
                assert not a.overlaps_box(b)

    def test_roughly_equal_sizes(self, skewed_table):
        boxes = equal_depth_boxes(skewed_table, "key", 8)
        key = skewed_table.column("key")
        sizes = [int(box.mask({"key": key}).sum()) for box in boxes]
        assert max(sizes) - min(sizes) <= 2

    def test_duplicate_heavy_column(self):
        table = Table({"key": np.repeat([1.0, 2.0], 50), "value": np.arange(100.0)})
        boxes = equal_depth_boxes(table, "key", 10)
        key = table.column("key")
        total = sum(int(box.mask({"key": key}).sum()) for box in boxes)
        assert total == 100
        assert len(boxes) <= 10

    def test_invalid_strata_count(self, skewed_table):
        with pytest.raises(ValueError):
            equal_depth_boxes(skewed_table, "key", 0)


class TestStratifiedSampleSynopsis:
    @pytest.fixture
    def synopsis(self, skewed_table):
        boxes = equal_depth_boxes(skewed_table, "key", 10)
        return StratifiedSampleSynopsis(
            skewed_table, "value", ["key"], boxes, sample_rate=0.2, rng=2
        )

    def test_strata_cover_population(self, synopsis, skewed_table):
        assert sum(s.size for s in synopsis.strata) == skewed_table.n_rows
        assert synopsis.n_strata == 10

    def test_sum_estimate_close_to_truth(
        self, synopsis, skewed_table, range_query_factory
    ):
        engine = ExactEngine(skewed_table)
        query = range_query_factory("SUM", 0.0, 1900.0)
        result = synopsis.query(query)
        truth = engine.execute(query)
        assert result.relative_error(truth) < 0.25

    def test_avg_weighted_combination(
        self, synopsis, skewed_table, range_query_factory
    ):
        engine = ExactEngine(skewed_table)
        query = range_query_factory("AVG", 1500.0, 1999.0)
        result = synopsis.query(query)
        truth = engine.execute(query)
        assert result.relative_error(truth) < 0.35

    def test_count_estimate(self, synopsis, skewed_table, range_query_factory):
        engine = ExactEngine(skewed_table)
        query = range_query_factory("COUNT", 100.0, 700.0)
        result = synopsis.query(query)
        assert result.relative_error(engine.execute(query)) < 0.25

    def test_irrelevant_strata_are_skipped(self, synopsis, range_query_factory):
        narrow = range_query_factory("SUM", 0.0, 10.0)
        result = synopsis.query(narrow)
        assert result.tuples_skipped > 0
        assert result.tuples_processed < synopsis.sample_size

    def test_min_max_from_samples(self, synopsis, range_query_factory):
        result = synopsis.query(range_query_factory("MIN", 0.0, 1999.0))
        assert result.estimate >= 0.0

    def test_validation_errors(self, skewed_table):
        boxes = equal_depth_boxes(skewed_table, "key", 4)
        with pytest.raises(ValueError):
            StratifiedSampleSynopsis(skewed_table, "value", ["key"], boxes)
        with pytest.raises(ValueError):
            StratifiedSampleSynopsis(
                skewed_table, "value", ["key"], [], sample_rate=0.1
            )
        with pytest.raises(ValueError):
            StratifiedSampleSynopsis(
                skewed_table,
                "value",
                ["key"],
                boxes,
                sample_rate=0.1,
                allocation="bogus",
            )

    def test_proportional_allocation_tracks_sizes(self, skewed_table):
        boxes = equal_depth_boxes(skewed_table, "key", 4)
        synopsis = StratifiedSampleSynopsis(
            skewed_table,
            "value",
            ["key"],
            boxes,
            sample_size=200,
            allocation="proportional",
            rng=0,
        )
        sizes = [s.sample_size for s in synopsis.strata]
        assert max(sizes) - min(sizes) <= 5

    def test_wrong_value_column_rejected(self, synopsis):
        query = AggregateQuery.sum("key", RectPredicate.everything())
        with pytest.raises(ValueError):
            synopsis.query(query)


class TestStratum:
    def test_match_mask_and_values(self):
        stratum = Stratum(
            box=Box({"key": Interval(0.0, 10.0)}),
            size=100,
            sample_columns={
                "value": np.array([1.0, 2.0, 3.0]),
                "key": np.array([1.0, 5.0, 9.0]),
            },
        )
        query = AggregateQuery.sum("value", RectPredicate.from_bounds(key=(4.0, 10.0)))
        assert list(stratum.match_mask(query)) == [False, True, True]
        assert stratum.sample_size == 3
        assert stratum.storage_bytes() > 0
