"""Tests for dynamic updates (insertions / deletions) of a PASS synopsis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import PASSConfig
from repro.core.updates import DynamicPASS
from repro.data.table import Table
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery, ExactEngine


@pytest.fixture
def dynamic_setup():
    """A small table plus a DynamicPASS built over it."""
    rng = np.random.default_rng(9)
    n = 2000
    table = Table(
        {
            "key": np.arange(n, dtype=float),
            "value": np.abs(rng.normal(50.0, 10.0, size=n)),
        },
        name="dynamic",
    )
    config = PASSConfig(n_partitions=8, sample_rate=0.1, partitioner="equal", seed=0)
    dynamic = DynamicPASS(table, "value", ["key"], config=config, rng=1)
    return table, dynamic


class TestInsertions:
    def test_insert_updates_counts_and_sums(self, dynamic_setup):
        table, dynamic = dynamic_setup
        before_count = dynamic.population_size
        before_sum = dynamic.synopsis.tree.root.stats.sum
        dynamic.insert({"key": 100.5, "value": 42.0})
        assert dynamic.population_size == before_count + 1
        assert dynamic.synopsis.tree.root.stats.sum == pytest.approx(before_sum + 42.0)
        assert dynamic.updates_since_build == 1

    def test_insert_updates_every_node_on_the_path(self, dynamic_setup):
        _, dynamic = dynamic_setup
        leaf = dynamic.synopsis.tree.leaf_for_point({"key": 100.5})
        path = dynamic.synopsis.tree.path_to_leaf(leaf)
        before = [node.stats.count for node in path]
        dynamic.insert({"key": 100.5, "value": 10.0})
        after = [node.stats.count for node in path]
        assert all(b + 1 == a for b, a in zip(before, after))

    def test_inserted_extremum_widens_hard_bounds(self, dynamic_setup):
        table, dynamic = dynamic_setup
        dynamic.insert({"key": 250.0, "value": 10_000.0})
        query = AggregateQuery(
            "MAX", "value", RectPredicate.from_bounds(key=(0.0, 500.0))
        )
        result = dynamic.query(query)
        assert result.hard_upper >= 10_000.0

    def test_query_after_inserts_tracks_exact_answer(self, dynamic_setup):
        table, dynamic = dynamic_setup
        new_rows = [{"key": 123.3 + i, "value": 77.0} for i in range(50)]
        for row in new_rows:
            dynamic.insert(row)
        query = AggregateQuery.count(
            "value", RectPredicate.from_bounds(key=(0.0, 1999.0))
        )
        result = dynamic.query(query)
        # COUNT over the whole key range: 2000 original + 50 inserted.
        updated = Table(
            {
                "key": np.concatenate(
                    [table.column("key"), [r["key"] for r in new_rows]]
                ),
                "value": np.concatenate(
                    [table.column("value"), [r["value"] for r in new_rows]]
                ),
            }
        )
        truth = ExactEngine(updated).execute(query)
        assert result.relative_error(truth) < 0.1

    def test_insert_requires_predicate_columns(self, dynamic_setup):
        _, dynamic = dynamic_setup
        with pytest.raises(KeyError):
            dynamic.insert({"value": 1.0})


class TestDeletions:
    def test_delete_updates_counts(self, dynamic_setup):
        table, dynamic = dynamic_setup
        row = {
            "key": float(table.column("key")[10]),
            "value": float(table.column("value")[10]),
        }
        before = dynamic.population_size
        dynamic.delete(row)
        assert dynamic.population_size == before - 1

    def test_delete_then_insert_round_trip(self, dynamic_setup):
        table, dynamic = dynamic_setup
        row = {"key": 5.0, "value": float(table.column("value")[5])}
        before_sum = dynamic.synopsis.tree.root.stats.sum
        dynamic.delete(row)
        dynamic.insert(row)
        assert dynamic.synopsis.tree.root.stats.sum == pytest.approx(before_sum)
        assert dynamic.updates_since_build == 2


class TestRebuild:
    def test_rebuild_resets_update_counter(self, dynamic_setup):
        table, dynamic = dynamic_setup
        dynamic.insert({"key": 1.5, "value": 3.0})
        assert dynamic.updates_since_build == 1
        dynamic.rebuild(table)
        assert dynamic.updates_since_build == 0
        assert dynamic.population_size == table.n_rows


class TestStaleness:
    def test_staleness_starts_at_zero_and_grows(self, dynamic_setup):
        table, dynamic = dynamic_setup
        assert dynamic.staleness == 0.0
        dynamic.insert({"key": 10.5, "value": 4.0})
        assert dynamic.staleness == pytest.approx(1.0 / table.n_rows)
        dynamic.insert({"key": 11.5, "value": 4.0})
        assert dynamic.staleness == pytest.approx(2.0 / table.n_rows)

    def test_rebuild_resets_staleness(self, dynamic_setup):
        table, dynamic = dynamic_setup
        dynamic.insert({"key": 1.5, "value": 3.0})
        dynamic.rebuild(table)
        assert dynamic.staleness == 0.0
        assert not dynamic.minmax_possibly_stale


class TestStaleExtrema:
    def test_deleting_an_extremum_warns_once(self, dynamic_setup):
        table, dynamic = dynamic_setup
        import warnings as warnings_module

        from repro.core.updates import StaleExtremaWarning

        leaf = dynamic.synopsis.tree.leaves[0]
        extremum = leaf.stats.max
        keys = table.column("key")
        values = table.column("value")
        # Find the actual row holding the leaf's maximum.
        in_leaf = leaf.box.mask({"key": keys})
        index = int(np.flatnonzero(in_leaf & (values == extremum))[0])
        row = {"key": float(keys[index]), "value": float(values[index])}

        assert not dynamic.minmax_possibly_stale
        with pytest.warns(StaleExtremaWarning):
            dynamic.delete(row)
        assert dynamic.minmax_possibly_stale
        # Bounds stay conservative (valid but possibly loose).
        assert leaf.stats.max == extremum

        # A second stale deletion does not warn again.
        extremum2 = leaf.stats.min
        index2 = int(np.flatnonzero(in_leaf & (values == extremum2))[0])
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error", StaleExtremaWarning)
            dynamic.delete({"key": float(keys[index2]), "value": float(values[index2])})

    def test_interior_deletion_does_not_warn(self, dynamic_setup):
        table, dynamic = dynamic_setup
        import warnings as warnings_module

        from repro.core.updates import StaleExtremaWarning

        leaf = dynamic.synopsis.tree.leaves[0]
        keys = table.column("key")
        values = table.column("value")
        in_leaf = leaf.box.mask({"key": keys})
        interior = np.flatnonzero(
            in_leaf & (values > leaf.stats.min) & (values < leaf.stats.max)
        )
        index = int(interior[0])
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error", StaleExtremaWarning)
            dynamic.delete({"key": float(keys[index]), "value": float(values[index])})
        assert not dynamic.minmax_possibly_stale
