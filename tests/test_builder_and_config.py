"""Tests for PASSConfig validation and the PASS builder."""

from __future__ import annotations

import pytest

from repro.core.builder import (
    PartitionerFallbackWarning,
    build_leaf_boxes,
    build_leaf_samples,
    build_pass,
    resolve_partitioner,
)
from repro.core.config import PARTITIONER_CHOICES, PASSConfig
from repro.query.aggregates import AggregateType


class TestPASSConfig:
    def test_defaults_are_valid(self):
        config = PASSConfig()
        assert config.n_partitions == 64
        assert config.partitioner == "adp"
        assert config.agg_template == AggregateType.SUM

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            PASSConfig(n_partitions=0)
        with pytest.raises(ValueError):
            PASSConfig(sample_rate=None, sample_size=None)
        with pytest.raises(ValueError):
            PASSConfig(sample_rate=0.1, sample_size=10)
        with pytest.raises(ValueError):
            PASSConfig(sample_rate=2.0)
        with pytest.raises(ValueError):
            PASSConfig(partitioner="bogus")
        with pytest.raises(ValueError):
            PASSConfig(allocation="bogus")
        with pytest.raises(ValueError):
            PASSConfig(mode="bogus")
        with pytest.raises(ValueError):
            PASSConfig(bss_multiplier=0.0)
        with pytest.raises(ValueError):
            PASSConfig(delta=0.0)

    def test_agg_template_parsed_from_string(self):
        assert PASSConfig(agg_template="avg").agg_template == AggregateType.AVG

    def test_with_overrides(self):
        config = PASSConfig().with_overrides(n_partitions=8)
        assert config.n_partitions == 8
        assert config.sample_rate == 0.005

    def test_total_sample_budget(self):
        config = PASSConfig(sample_rate=0.01)
        assert config.total_sample_budget(10_000) == 100
        bss = PASSConfig(sample_rate=0.01, mode="bss", bss_multiplier=2.0)
        assert bss.total_sample_budget(10_000) == 200
        absolute = PASSConfig(sample_rate=None, sample_size=50)
        assert absolute.total_sample_budget(10_000) == 50
        assert absolute.total_sample_budget(10) == 10

    def test_from_time_budgets(self):
        config = PASSConfig.from_time_budgets(
            n_rows=100_000, construction_seconds=8.0, query_milliseconds=2.0
        )
        assert config.n_partitions >= 2
        assert config.sample_size is not None and config.sample_size > 0
        with pytest.raises(ValueError):
            PASSConfig.from_time_budgets(100, 0.0, 1.0)

    def test_partitioner_choices_exposed(self):
        assert "adp" in PARTITIONER_CHOICES and "kd" in PARTITIONER_CHOICES


class TestBuildLeafBoxes:
    @pytest.mark.parametrize("partitioner", ["adp", "equal", "count_optimal", "hill"])
    def test_one_dimensional_partitioners(self, skewed_table, partitioner):
        config = PASSConfig(
            n_partitions=8, partitioner=partitioner, opt_sample_size=300
        )
        boxes = build_leaf_boxes(skewed_table, "value", ["key"], config)
        key = skewed_table.column("key")
        total = sum(int(box.mask({"key": key}).sum()) for box in boxes)
        assert total == skewed_table.n_rows

    def test_multi_dimensional_falls_back_to_kd(self, multi_table):
        config = PASSConfig(n_partitions=8, partitioner="adp", opt_sample_size=500)
        with pytest.warns(PartitionerFallbackWarning, match="k-d construction"):
            boxes = build_leaf_boxes(multi_table, "value", ["a", "b"], config)
        assert len(boxes) >= 8
        assert any(len(box.columns) == 2 for box in boxes)

    @pytest.mark.parametrize("partitioner", ["adp", "equal", "count_optimal", "hill"])
    def test_fallback_warns_for_every_one_dimensional_partitioner(
        self, multi_table, partitioner
    ):
        config = PASSConfig(
            n_partitions=4, partitioner=partitioner, opt_sample_size=300
        )
        with pytest.warns(PartitionerFallbackWarning):
            build_leaf_boxes(multi_table, "value", ["a", "b"], config)

    def test_no_warning_when_partitioner_matches_dimensionality(
        self, skewed_table, multi_table
    ):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", PartitionerFallbackWarning)
            build_leaf_boxes(
                skewed_table,
                "value",
                ["key"],
                PASSConfig(n_partitions=4, partitioner="adp", opt_sample_size=200),
            )
            build_leaf_boxes(
                multi_table,
                "value",
                ["a", "b"],
                PASSConfig(n_partitions=4, partitioner="kd", opt_sample_size=300),
            )

    def test_resolve_partitioner(self):
        config = PASSConfig(n_partitions=4, partitioner="adp")
        assert resolve_partitioner(config, ["key"]) == "adp"
        assert resolve_partitioner(config, ["a", "b"]) == "kd"
        kd = PASSConfig(n_partitions=4, partitioner="kd")
        assert resolve_partitioner(kd, ["a", "b"]) == "kd"

    def test_kd_us_policy(self, multi_table):
        config = PASSConfig(n_partitions=8, partitioner="kd_us", opt_sample_size=500)
        boxes = build_leaf_boxes(multi_table, "value", ["a", "b"], config)
        assert len(boxes) >= 8

    def test_requires_predicate_columns(self, skewed_table):
        with pytest.raises(ValueError):
            build_leaf_boxes(skewed_table, "value", [], PASSConfig())


class TestBuildLeafSamples:
    def test_ess_mode_per_leaf_budget(self, skewed_table):
        config = PASSConfig(
            n_partitions=4, sample_rate=0.1, mode="ess", partitioner="equal"
        )
        boxes = build_leaf_boxes(skewed_table, "value", ["key"], config)
        samples = build_leaf_samples(skewed_table, "value", ["key"], boxes, config)
        budget = config.total_sample_budget(skewed_table.n_rows)
        for stratum in samples:
            assert stratum.sample_size <= max(1, budget // 2)

    def test_bss_mode_caps_total_samples(self, skewed_table):
        config = PASSConfig(
            n_partitions=8,
            sample_rate=0.05,
            mode="bss",
            bss_multiplier=2.0,
            partitioner="equal",
        )
        boxes = build_leaf_boxes(skewed_table, "value", ["key"], config)
        samples = build_leaf_samples(skewed_table, "value", ["key"], boxes, config)
        total = sum(stratum.sample_size for stratum in samples)
        budget = config.total_sample_budget(skewed_table.n_rows)
        assert total <= budget + len(boxes)  # rounding slack of one per leaf

    def test_proportional_allocation(self, adversarial_small):
        config = PASSConfig(
            n_partitions=8,
            sample_rate=0.01,
            mode="bss",
            allocation="proportional",
            partitioner="adp",
            opt_sample_size=400,
        )
        boxes = build_leaf_boxes(adversarial_small, "value", ["key"], config)
        samples = build_leaf_samples(adversarial_small, "value", ["key"], boxes, config)
        sizes = [stratum.size for stratum in samples]
        sample_sizes = [stratum.sample_size for stratum in samples]
        # The largest leaf must receive the largest share of the budget.
        assert sample_sizes[sizes.index(max(sizes))] == max(sample_sizes)

    def test_samples_keep_predicate_columns(self, multi_table):
        config = PASSConfig(
            n_partitions=4, sample_rate=0.05, partitioner="kd", opt_sample_size=500
        )
        boxes = build_leaf_boxes(multi_table, "value", ["a", "b"], config)
        samples = build_leaf_samples(
            multi_table, "value", ["a", "b", "c"], boxes, config
        )
        for stratum in samples:
            if stratum.sample_size:
                assert {"value", "a", "b", "c"} <= set(stratum.sample_columns)


class TestBuildPass:
    def test_build_records_time_and_structure(self, skewed_table):
        config = PASSConfig(n_partitions=8, sample_rate=0.05, opt_sample_size=300)
        synopsis = build_pass(skewed_table, "value", ["key"], config)
        assert synopsis.build_seconds > 0
        assert synopsis.n_partitions <= 8
        assert synopsis.population_size == skewed_table.n_rows

    def test_prebuilt_leaf_boxes_skip_optimizer(self, skewed_table):
        from repro.partitioning.equal import equal_depth_partition

        boxes = equal_depth_partition(skewed_table, "key", 4)
        config = PASSConfig(n_partitions=4, sample_rate=0.05)
        synopsis = build_pass(skewed_table, "value", ["key"], config, leaf_boxes=boxes)
        assert synopsis.n_partitions == len(boxes)

    def test_default_config_used_when_none(self, skewed_table):
        synopsis = build_pass(
            skewed_table,
            "value",
            ["key"],
            PASSConfig(n_partitions=4, opt_sample_size=200),
        )
        assert synopsis.tree.root.stats.count == skewed_table.n_rows

    def test_multi_column_fanout(self, multi_table):
        config = PASSConfig(
            n_partitions=16, sample_rate=0.02, partitioner="kd", opt_sample_size=800
        )
        synopsis = build_pass(multi_table, "value", ["a", "b", "c"], config)
        assert synopsis.tree.n_leaves >= 16
        synopsis.tree.validate()

    def test_effective_partitioner_recorded(self, skewed_table, multi_table):
        one_d = build_pass(
            skewed_table,
            "value",
            ["key"],
            PASSConfig(n_partitions=4, partitioner="adp", opt_sample_size=200),
        )
        assert one_d.effective_partitioner == "adp"
        with pytest.warns(PartitionerFallbackWarning):
            fallen_back = build_pass(
                multi_table,
                "value",
                ["a", "b"],
                PASSConfig(n_partitions=4, partitioner="adp", opt_sample_size=300),
            )
        assert fallen_back.effective_partitioner == "kd"

    def test_effective_partitioner_precomputed_and_persisted(self, skewed_table):
        from repro.partitioning.equal import equal_depth_partition

        boxes = equal_depth_partition(skewed_table, "key", 4)
        config = PASSConfig(n_partitions=4, sample_rate=0.05)
        synopsis = build_pass(skewed_table, "value", ["key"], config, leaf_boxes=boxes)
        assert synopsis.effective_partitioner == "precomputed"
        arrays, header = synopsis.to_arrays()
        assert header["effective_partitioner"] == "precomputed"
        from repro.core.pass_synopsis import PASSSynopsis

        reloaded = PASSSynopsis.from_arrays(arrays, header)
        assert reloaded.effective_partitioner == "precomputed"
