"""Tests for PartitionStats (mergeable aggregates) and PrefixSums."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation.partition import PartitionStats, compute_partition_stats
from repro.aggregation.prefix import PrefixSums
from repro.query.aggregates import AggregateType

value_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=0, max_size=60
)


class TestPartitionStats:
    def test_from_values(self):
        stats = PartitionStats.from_values(np.array([1.0, 2.0, 3.0]))
        assert stats.sum == 6.0
        assert stats.count == 3
        assert stats.min == 1.0
        assert stats.max == 3.0
        assert stats.avg == 2.0

    def test_empty_is_merge_identity(self):
        stats = PartitionStats.from_values(np.array([5.0, 7.0]))
        merged = stats.merge(PartitionStats.empty())
        assert merged == stats
        assert PartitionStats.empty().is_empty
        assert math.isnan(PartitionStats.empty().avg)

    def test_zero_variance_detection(self):
        constant = PartitionStats.from_values(np.array([4.0, 4.0, 4.0]))
        varied = PartitionStats.from_values(np.array([4.0, 5.0]))
        assert constant.has_zero_variance
        assert not varied.has_zero_variance
        assert not PartitionStats.empty().has_zero_variance

    def test_aggregate_dispatch(self):
        stats = PartitionStats.from_values(np.array([1.0, 3.0]))
        assert stats.aggregate(AggregateType.SUM) == 4.0
        assert stats.aggregate(AggregateType.COUNT) == 2.0
        assert stats.aggregate(AggregateType.AVG) == 2.0
        assert stats.aggregate(AggregateType.MIN) == 1.0
        assert stats.aggregate(AggregateType.MAX) == 3.0

    def test_aggregate_of_empty_partition(self):
        empty = PartitionStats.empty()
        assert empty.aggregate(AggregateType.SUM) == 0.0
        assert empty.aggregate(AggregateType.COUNT) == 0.0
        assert math.isnan(empty.aggregate(AggregateType.MIN))

    def test_add_and_remove_value(self):
        stats = PartitionStats.from_values(np.array([1.0, 2.0]))
        grown = stats.add_value(10.0)
        assert grown.count == 3
        assert grown.max == 10.0
        shrunk = grown.remove_value(10.0)
        assert shrunk.count == 2
        assert shrunk.sum == pytest.approx(3.0)

    def test_remove_from_empty_rejected(self):
        with pytest.raises(ValueError):
            PartitionStats.empty().remove_value(1.0)

    def test_remove_last_value_gives_empty(self):
        stats = PartitionStats.from_values(np.array([2.0]))
        assert stats.remove_value(2.0).is_empty

    @given(value_lists, value_lists)
    @settings(max_examples=100)
    def test_merge_equals_stats_of_concatenation(self, left, right):
        """Mergeability: merge(stats(A), stats(B)) == stats(A ++ B)."""
        merged = PartitionStats.from_values(np.array(left)).merge(
            PartitionStats.from_values(np.array(right))
        )
        direct = PartitionStats.from_values(np.array(left + right))
        assert merged.count == direct.count
        assert merged.sum == pytest.approx(direct.sum)
        if direct.count:
            assert merged.min == direct.min
            assert merged.max == direct.max

    def test_compute_partition_stats(self):
        values = np.arange(10.0)
        masks = [values < 5, values >= 5]
        stats = compute_partition_stats(values, masks)
        assert stats[0].count == 5
        assert stats[1].sum == pytest.approx(values[values >= 5].sum())


class TestPrefixSums:
    def test_range_queries_match_numpy(self):
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        prefix = PrefixSums.from_values(values)
        assert prefix.range_sum(1, 3) == 9.0
        assert prefix.range_sum_sq(0, 2) == 14.0
        assert prefix.range_count(2, 4) == 3
        assert prefix.range_mean(0, 4) == 3.0
        assert prefix.range_variance(0, 4) == pytest.approx(np.var(values))

    def test_invalid_ranges_rejected(self):
        prefix = PrefixSums.from_values(np.array([1.0, 2.0]))
        with pytest.raises(IndexError):
            prefix.range_sum(-1, 0)
        with pytest.raises(IndexError):
            prefix.range_sum(0, 5)
        with pytest.raises(IndexError):
            prefix.range_sum(1, 0)

    def test_two_dimensional_input_rejected(self):
        with pytest.raises(ValueError):
            PrefixSums.from_values(np.zeros((2, 2)))

    @given(
        st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=1,
            max_size=40,
        ),
        st.data(),
    )
    @settings(max_examples=100)
    def test_random_ranges_match_direct_computation(self, values, data):
        values = np.asarray(values)
        prefix = PrefixSums.from_values(values)
        start = data.draw(st.integers(min_value=0, max_value=len(values) - 1))
        end = data.draw(st.integers(min_value=start, max_value=len(values) - 1))
        segment = values[start : end + 1]
        assert prefix.range_sum(start, end) == pytest.approx(segment.sum(), abs=1e-6)
        assert prefix.range_sum_sq(start, end) == pytest.approx(
            (segment**2).sum(), rel=1e-9, abs=1e-6
        )
        assert prefix.range_variance(start, end) == pytest.approx(
            np.var(segment), abs=1e-6
        )
