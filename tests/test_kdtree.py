"""Tests for the multi-dimensional k-d tree partitioning (Section 4.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.partitioning.kdtree import kd_partition


def leaf_sizes(table, columns, boxes) -> list[int]:
    data = {column: table.column(column) for column in columns}
    return [int(box.mask({c: data[c] for c in box.columns}).sum()) for box in boxes]


class TestKDPartition:
    def test_boxes_are_disjoint_and_cover_everything(self, multi_table):
        result = kd_partition(
            multi_table, "value", ["a", "b"], n_leaves=16, opt_sample_size=1500, rng=0
        )
        sizes = leaf_sizes(multi_table, ["a", "b"], result.boxes)
        assert sum(sizes) == multi_table.n_rows
        for i, box_a in enumerate(result.boxes):
            for box_b in result.boxes[i + 1 :]:
                assert not box_a.overlaps_box(box_b)

    def test_reaches_requested_leaf_count(self, multi_table):
        result = kd_partition(
            multi_table,
            "value",
            ["a", "b", "c"],
            n_leaves=32,
            opt_sample_size=1500,
            rng=0,
        )
        assert result.n_partitions >= 32

    def test_depth_spread_is_bounded(self, multi_table):
        result = kd_partition(
            multi_table,
            "value",
            ["a", "b"],
            n_leaves=32,
            policy="max_variance",
            max_depth_spread=2,
            opt_sample_size=1500,
            rng=0,
        )
        assert max(result.leaf_depths) - min(result.leaf_depths) <= 2

    def test_breadth_first_policy_is_balanced(self, multi_table):
        result = kd_partition(
            multi_table,
            "value",
            ["a", "b"],
            n_leaves=16,
            policy="breadth_first",
            opt_sample_size=1500,
            rng=0,
        )
        assert max(result.leaf_depths) - min(result.leaf_depths) <= 1

    def test_max_variance_policy_targets_high_variance_region(self, rng):
        """The greedy expansion must refine the region where the value varies."""
        from repro.data.table import Table

        n = 4000
        a = rng.uniform(0, 100, size=n)
        b = rng.uniform(0, 100, size=n)
        value = np.where(a > 80, np.abs(rng.normal(100, 40, size=n)), 1.0)
        table = Table({"a": a, "b": b, "value": value})
        result = kd_partition(
            table, "value", ["a", "b"], n_leaves=16, policy="max_variance",
            opt_sample_size=2000, rng=0,
        )
        hot = sum(1 for box in result.boxes if box.interval("a").low >= 75.0)
        hot_rows = int((a > 80).sum())
        # The hot 20% of the a-axis should receive a disproportionate share of
        # the leaves relative to its row count.
        assert hot / result.n_partitions > 0.8 * hot_rows / n

    def test_single_dimension_works(self, skewed_table):
        result = kd_partition(
            skewed_table, "value", ["key"], n_leaves=8, opt_sample_size=800, rng=0
        )
        sizes = leaf_sizes(skewed_table, ["key"], result.boxes)
        assert sum(sizes) == skewed_table.n_rows

    def test_constant_column_cannot_be_split_forever(self):
        from repro.data.table import Table

        table = Table({"a": np.ones(100), "value": np.arange(100, dtype=float)})
        result = kd_partition(table, "value", ["a"], n_leaves=8, rng=0)
        # The predicate column is constant, so only one leaf is possible.
        assert result.n_partitions == 1

    def test_invalid_arguments(self, multi_table):
        with pytest.raises(ValueError):
            kd_partition(multi_table, "value", ["a"], n_leaves=0)
        with pytest.raises(ValueError):
            kd_partition(multi_table, "value", [], n_leaves=4)
        with pytest.raises(ValueError):
            kd_partition(multi_table, "value", ["a"], n_leaves=4, policy="bogus")

    def test_deterministic_given_seed(self, multi_table):
        a = kd_partition(multi_table, "value", ["a", "b"], n_leaves=8, rng=3)
        b = kd_partition(multi_table, "value", ["a", "b"], n_leaves=8, rng=3)
        assert a.boxes == b.boxes
