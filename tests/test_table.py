"""Unit tests for the numpy-backed Table substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.table import Column, Table


class TestColumn:
    def test_rejects_two_dimensional_values(self):
        with pytest.raises(ValueError):
            Column("x", np.zeros((2, 2)))

    def test_rejects_non_numeric_values(self):
        with pytest.raises(TypeError):
            Column("x", np.array(["a", "b"]))

    def test_min_max_and_len(self):
        column = Column("x", np.array([3.0, 1.0, 2.0]))
        assert len(column) == 3
        assert column.min() == 1.0
        assert column.max() == 3.0

    def test_empty_column_bounds_are_nan(self):
        column = Column("x", np.array([], dtype=float))
        assert np.isnan(column.min())
        assert np.isnan(column.max())


class TestTableConstruction:
    def test_from_columns_and_row_count(self):
        table = Table.from_columns(a=[1, 2, 3], b=[4.0, 5.0, 6.0])
        assert table.n_rows == 3
        assert set(table.column_names) == {"a", "b"}

    def test_mismatched_column_lengths_rejected(self):
        with pytest.raises(ValueError):
            Table({"a": [1, 2, 3], "b": [1, 2]})

    def test_from_records(self):
        table = Table.from_records([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert table.n_rows == 2
        assert list(table.column("a")) == [1, 3]

    def test_from_records_empty(self):
        table = Table.from_records([])
        assert table.n_rows == 0

    def test_rejects_two_dimensional_columns(self):
        with pytest.raises(ValueError):
            Table({"a": np.zeros((3, 2))})

    def test_unknown_column_raises_with_available_names(self):
        table = Table.from_columns(a=[1.0])
        with pytest.raises(KeyError, match="available columns"):
            table.column("missing")


class TestTableOperations:
    def test_select_by_mask(self, tiny_table):
        selected = tiny_table.select(tiny_table.column("value") > 5.0)
        assert selected.n_rows == 5
        assert selected.column("value").min() == 6.0

    def test_select_requires_boolean_mask(self, tiny_table):
        with pytest.raises(TypeError):
            tiny_table.select(np.arange(10))

    def test_select_requires_matching_length(self, tiny_table):
        with pytest.raises(ValueError):
            tiny_table.select(np.ones(3, dtype=bool))

    def test_take_preserves_order(self, tiny_table):
        taken = tiny_table.take(np.array([3, 1, 0]))
        assert list(taken.column("key")) == [3.0, 1.0, 0.0]

    def test_project_restricts_columns(self, tiny_table):
        projected = tiny_table.project(["value"])
        assert projected.column_names == ["value"]

    def test_sort_by_orders_rows(self, rng):
        table = Table({"k": rng.permutation(50).astype(float), "v": np.arange(50.0)})
        ordered = table.sort_by("k")
        assert np.all(np.diff(ordered.column("k")) >= 0)

    def test_sample_without_replacement_is_subset(self, tiny_table, rng):
        sample = tiny_table.sample(5, rng)
        assert sample.n_rows == 5
        assert set(sample.column("key")).issubset(set(tiny_table.column("key")))

    def test_sample_clamps_to_table_size(self, tiny_table, rng):
        sample = tiny_table.sample(100, rng)
        assert sample.n_rows == tiny_table.n_rows

    def test_sample_negative_rejected(self, tiny_table, rng):
        with pytest.raises(ValueError):
            tiny_table.sample(-1, rng)

    def test_head(self, tiny_table):
        assert tiny_table.head(3).n_rows == 3

    def test_concat_same_schema(self, tiny_table):
        doubled = tiny_table.concat(tiny_table)
        assert doubled.n_rows == 2 * tiny_table.n_rows

    def test_concat_different_schema_rejected(self, tiny_table):
        other = Table.from_columns(x=[1.0])
        with pytest.raises(ValueError):
            tiny_table.concat(other)

    def test_column_bounds(self, tiny_table):
        assert tiny_table.column_bounds("value") == (1.0, 10.0)

    def test_memory_bytes_positive(self, tiny_table):
        assert tiny_table.memory_bytes() > 0

    def test_to_records_round_trip(self, tiny_table):
        records = tiny_table.to_records()
        rebuilt = Table.from_records(records)
        assert rebuilt.n_rows == tiny_table.n_rows
        assert np.allclose(rebuilt.column("value"), tiny_table.column("value"))

    def test_contains_and_iter(self, tiny_table):
        assert "value" in tiny_table
        assert "missing" not in tiny_table
        assert set(iter(tiny_table)) == {"key", "value"}
