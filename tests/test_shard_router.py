"""Tests for the streaming shard router: routing, staleness, per-shard rebuilds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import PASSConfig
from repro.data.table import Table
from repro.distributed.parallel import ParallelBuilder
from repro.distributed.planner import ShardPlanner
from repro.distributed.router import StreamingShardRouter
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery


@pytest.fixture
def table() -> Table:
    rng = np.random.default_rng(23)
    n = 1200
    return Table(
        {
            "key": rng.uniform(0.0, 30.0, size=n),
            "value": np.abs(rng.normal(10.0, 3.0, size=n)),
        },
        name="router_test",
    )


@pytest.fixture
def config() -> PASSConfig:
    return PASSConfig(n_partitions=4, sample_rate=0.1, opt_sample_size=200, seed=1)


def _build(table, config, n_shards=3, threshold=None):
    plan = ShardPlanner(n_shards, "range").plan(table, "key")
    sharded = ParallelBuilder(executor="serial").build(
        plan, "value", ["key"], config, dynamic=True
    )
    router = StreamingShardRouter(sharded, plan.tables, rebuild_threshold=threshold)
    return plan, sharded, router


def test_inserts_route_to_the_owning_shard_only(table, config):
    plan, sharded, router = _build(table, config)
    populations = [shard.population_size for shard in sharded.shards]
    target_key = 1.0
    owner = sharded.shard_for_value(target_key)
    index = router.insert({"key": target_key, "value": 5.0})
    assert index == owner
    for shard_index, shard in enumerate(sharded.shards):
        expected = populations[shard_index] + (1 if shard_index == owner else 0)
        assert shard.population_size == expected


def test_deletes_route_and_update_counts(table, config):
    plan, sharded, router = _build(table, config)
    row = {column: float(table.column(column)[0]) for column in table.column_names}
    owner = sharded.shard_for_row(row)
    before = sharded.shards[owner].population_size
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        router.delete(row)
    assert sharded.shards[owner].population_size == before - 1
    stats = router.stats()
    assert stats[owner].deletes == 1


def test_staleness_tracked_per_shard(table, config):
    plan, sharded, router = _build(table, config)
    router.insert({"key": 1.0, "value": 2.0})
    stalenesses = sharded.per_shard_staleness()
    owner = sharded.shard_for_value(1.0)
    assert stalenesses[owner] > 0.0
    assert all(
        staleness == 0.0
        for index, staleness in enumerate(stalenesses)
        if index != owner
    )


def test_threshold_triggers_rebuild_of_only_the_drifted_shard(table, config):
    plan, sharded, router = _build(table, config, threshold=0.02)
    owner = sharded.shard_for_value(2.0)
    untouched = [shard for i, shard in enumerate(sharded.shards) if i != owner]
    shard_population = sharded.shards[owner].population_size
    inserts = int(shard_population * 0.02) + 2
    for step in range(inserts):
        router.insert({"key": 2.0, "value": 4.0 + step})
    stats = router.stats()
    assert stats[owner].rebuilds >= 1
    # The rebuilt shard's staleness reset; the other shards were not touched.
    assert sharded.per_shard_staleness()[owner] < 0.02
    for index, shard in enumerate(sharded.shards):
        if index != owner:
            assert shard in untouched  # same object: reads were never paused


def test_rebuild_materializes_inserts_and_deletes(table, config):
    plan, sharded, router = _build(table, config)
    owner = sharded.shard_for_value(2.0)
    base_population = sharded.shards[owner].population_size
    router.insert({"key": 2.0, "value": 100.0})
    router.insert({"key": 2.0, "value": 101.0})
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        router.delete({"key": 2.0, "value": 100.0})
    router.rebuild(owner)
    rebuilt = sharded.shards[owner]
    assert rebuilt.population_size == base_population + 1
    assert rebuilt.staleness == 0.0
    # The rebuilt shard is a fresh structure with exact statistics.
    query = AggregateQuery("COUNT", "value", RectPredicate.everything())
    assert rebuilt.query(query).estimate == base_population + 1


def test_rebuilt_shard_answers_match_exact_engine(table, config):
    plan, sharded, router = _build(table, config, threshold=None)
    owner = sharded.shard_for_value(5.0)
    for step in range(10):
        router.insert({"key": 5.0, "value": 50.0 + step})
    router.rebuild(owner)
    # An everything-query over the sharded synopsis stays exact after rebuild.
    query = AggregateQuery("COUNT", "value", RectPredicate.everything())
    result = router.sharded.query(query)
    assert result.exact
    assert result.estimate == table.n_rows + 10


def test_rows_missing_schema_columns_are_rejected(table, config):
    plan, sharded, router = _build(table, config)
    with pytest.raises(KeyError, match="missing columns"):
        router.insert({"key": 1.0})


def test_router_requires_dynamic_shards(table, config):
    plan = ShardPlanner(2, "range").plan(table, "key")
    static = ParallelBuilder(executor="serial").build(plan, "value", ["key"], config)
    with pytest.raises(TypeError, match="DynamicPASS"):
        StreamingShardRouter(static, plan.tables)


def test_router_validates_table_count(table, config):
    plan, sharded, _ = _build(table, config)
    with pytest.raises(ValueError, match="base tables"):
        StreamingShardRouter(sharded, plan.tables[:-1])


def test_deleting_unknown_row_fails_at_rebuild(table, config):
    # A delete of a row that never existed in the shard's data surfaces when
    # the rebuild materializes the shard.
    plan, sharded, router = _build(table, config)
    owner = sharded.shard_for_value(1.0)
    router._deleted[owner].append({column: -999.0 for column in table.column_names})
    with pytest.raises(ValueError, match="not found"):
        router.rebuild(owner)


def test_apply_many_groups_rows_per_shard(table, config):
    plan, sharded, router = _build(table, config)
    rng = np.random.default_rng(4)
    rows = [
        {"key": float(rng.uniform(0.0, 30.0)), "value": float(rng.uniform(1.0, 5.0))}
        for _ in range(40)
    ]
    populations = [shard.population_size for shard in sharded.shards]
    indices = router.apply_many(rows, "insert")
    assert indices == [sharded.shard_for_row(row) for row in rows]
    for shard_index, shard in enumerate(sharded.shards):
        expected = populations[shard_index] + indices.count(shard_index)
        assert shard.population_size == expected
    stats = router.stats()
    assert sum(stat.inserts for stat in stats) == len(rows)


def test_apply_many_matches_single_row_updates(table, config):
    plan, sharded_a, router_a = _build(table, config)
    plan_b, sharded_b, router_b = _build(table, config)
    rng = np.random.default_rng(9)
    rows = [
        {"key": float(rng.uniform(0.0, 30.0)), "value": float(rng.uniform(1.0, 5.0))}
        for _ in range(25)
    ]
    for row in rows:
        router_a.insert(row)
    router_b.apply_many(rows, "insert", max_workers=3)
    query = AggregateQuery("COUNT", "value", RectPredicate.everything())
    assert sharded_a.query(query).estimate == sharded_b.query(query).estimate
    for shard_a, shard_b in zip(sharded_a.shards, sharded_b.shards):
        assert shard_a.population_size == shard_b.population_size


def test_apply_many_mixed_kinds_and_validation(table, config):
    plan, sharded, router = _build(table, config)
    existing = {column: float(table.column(column)[5]) for column in table.column_names}
    before = sharded.population_size
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        router.apply_many([{"key": 3.0, "value": 2.0}, existing], ["insert", "delete"])
    assert sharded.population_size == before
    with pytest.raises(ValueError, match="update kinds"):
        router.apply_many([{"key": 1.0, "value": 1.0}], ["insert", "delete"])
    with pytest.raises(ValueError, match="unknown update kind"):
        router.apply_many([{"key": 1.0, "value": 1.0}], "upsert")


def test_apply_many_triggers_rebuild_past_threshold(table, config):
    plan, sharded, router = _build(table, config, threshold=0.01)
    rng = np.random.default_rng(11)
    rows = [
        {"key": float(rng.uniform(0.0, 30.0)), "value": float(rng.uniform(1.0, 5.0))}
        for _ in range(60)
    ]
    router.apply_many(rows, "insert", max_workers=2)
    stats = router.stats()
    assert sum(stat.rebuilds for stat in stats) >= 1
    # Rebuilds reset the rebuilt shards' staleness; totals stay correct.
    query = AggregateQuery("COUNT", "value", RectPredicate.everything())
    assert sharded.query(query).estimate == 1200 + len(rows)
