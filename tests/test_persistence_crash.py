"""Crash-injection tests for atomic synopsis persistence.

The acceptance property: ``kill -9`` at *any* instant during
:func:`~repro.serving.persistence.save_synopsis` never leaves an unloadable
archive behind.  A restart after the crash sees either the complete old
archive or the complete new one — never a truncated zip that makes
``load_synopsis`` raise ``BadZipFile`` / ``ValueError``.

The injection runs a real save in a child process with the crash wired into
the exact point under test (mid temp-file write, or between the temp write
and the atomic rename), SIGKILLs it there, and then loads the archive from
the parent — the same sequence as a serving node dying mid-checkpoint and
restarting.

The restart-resume tests cover the second half of the story: a dynamic
synopsis saved under write load reloads with its update counters and
staleness intact and keeps accepting updates.
"""

from __future__ import annotations

import dataclasses
import math
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.core.builder import build_pass
from repro.core.config import PASSConfig
from repro.core.updates import DynamicPASS
from repro.data.table import Table
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery
from repro.serving.persistence import (
    load_synopsis,
    load_workload_fingerprint,
    save_synopsis,
)

SRC = str(Path(__file__).resolve().parent.parent / "src")


def assert_identical(a, b):
    """AQPResult equality treating NaN fields as equal (NaN != NaN otherwise)."""
    for field in dataclasses.fields(a):
        x, y = getattr(a, field.name), getattr(b, field.name)
        if isinstance(x, float) and math.isnan(x):
            assert isinstance(y, float) and math.isnan(y), field.name
        else:
            assert x == y, f"{field.name}: {x!r} != {y!r}"


def make_table(seed: int, n: int = 3000) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        {
            "a": rng.uniform(0.0, 100.0, size=n),
            "value": np.abs(rng.lognormal(1.5, 0.7, size=n)),
        },
        name="crashy",
    )


def build(seed: int):
    return build_pass(
        make_table(seed),
        "value",
        ["a"],
        PASSConfig(n_partitions=8, sample_rate=0.02, opt_sample_size=200, seed=0),
    )


def workload() -> list[AggregateQuery]:
    queries = []
    for low, high in [(5.0, 40.0), (20.0, 90.0), (0.0, 100.0), (61.0, 62.0)]:
        predicate = RectPredicate.from_bounds(a=(low, high))
        for agg in ("SUM", "COUNT", "AVG", "MIN", "MAX"):
            queries.append(AggregateQuery(agg, "value", predicate))
    return queries


def run_crashing_save(tmp_path: Path, path: Path, crash_point: str) -> None:
    """Run a real save in a child process and SIGKILL it at ``crash_point``.

    The child rebuilds the "new" synopsis deterministically, arms the crash
    inside the persistence module, then runs a real ``save_synopsis``
    (workload fingerprint included, so both write paths execute).  The crash
    is ``os.kill(pid, SIGKILL)`` — no cleanup code gets to run, exactly like
    a crashed serving node.
    """
    program = textwrap.dedent(
        f"""
        import os, signal, sys
        import numpy as np
        sys.path.insert(0, {SRC!r})
        from repro.core.builder import build_pass
        from repro.core.config import PASSConfig
        from repro.data.table import Table
        from repro.obs.drift import WorkloadFingerprint
        from repro.serving import persistence

        rng = np.random.default_rng(2)
        table = Table(
            {{
                "a": rng.uniform(0.0, 100.0, size=3000),
                "value": np.abs(rng.lognormal(1.5, 0.7, size=3000)),
            }},
            name="crashy",
        )
        synopsis = build_pass(
            table, "value", ["a"],
            PASSConfig(n_partitions=8, sample_rate=0.02, opt_sample_size=200, seed=0),
        )
        target = {str(path)!r}
        crash_point = {crash_point!r}

        def die():
            os.kill(os.getpid(), signal.SIGKILL)

        if crash_point == "before_rename":
            real_replace = os.replace
            def crashing_replace(src, dst):
                if str(dst) == target:
                    die()
                return real_replace(src, dst)
            persistence.os.replace = crashing_replace
        elif crash_point == "mid_write":
            import io
            real_savez = np.savez_compressed
            calls = [0]
            def crashing_savez(handle, **arrays):
                calls[0] += 1
                if calls[0] == 1:
                    # First archive is the workload fingerprint sibling;
                    # write it for real so the crash hits the synopsis write.
                    return real_savez(handle, **arrays)
                buffer = io.BytesIO()
                real_savez(buffer, **arrays)
                payload = buffer.getvalue()
                handle.write(payload[: len(payload) // 2])
                handle.flush()
                os.fsync(handle.fileno())
                die()
            persistence.np.savez_compressed = crashing_savez
        else:
            raise SystemExit(f"unknown crash point {{crash_point!r}}")

        fingerprint = WorkloadFingerprint.from_boxes(
            [(("a", 0.0, 50.0),)], {{"a": (0.0, 100.0)}}
        )
        persistence.save_synopsis(synopsis, target, workload=fingerprint)
        raise SystemExit("save completed; the crash point never fired")
        """
    )
    completed = subprocess.run(
        [sys.executable, "-c", program],
        cwd=tmp_path,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == -signal.SIGKILL, (
        f"child exited {completed.returncode} instead of being killed:\n"
        f"{completed.stdout}\n{completed.stderr}"
    )


@pytest.mark.parametrize("crash_point", ["before_rename", "mid_write"])
class TestKillDuringSave:
    def test_existing_archive_survives_crashing_resave(
        self, tmp_path: Path, crash_point: str
    ) -> None:
        """Old archive stays byte-complete when a re-save is killed."""
        path = tmp_path / "synopsis.npz"
        old = build(seed=1)
        save_synopsis(old, path)
        expected = [old.query(query) for query in workload()]

        run_crashing_save(tmp_path, path, crash_point)

        # The loader must see the complete old archive — never a torn zip.
        loaded = load_synopsis(path)
        for query, want in zip(workload(), expected):
            assert_identical(loaded.query(query), want)

    def test_fresh_save_crash_leaves_no_archive(
        self, tmp_path: Path, crash_point: str
    ) -> None:
        """A killed first-time save leaves a clean miss, not a corrupt file."""
        path = tmp_path / "fresh.npz"
        run_crashing_save(tmp_path, path, crash_point)
        # Either nothing exists (clean miss a restart can rebuild from) or —
        # never — a file that exists but fails to load.
        if path.exists():
            load_synopsis(path)

    def test_workload_sibling_is_never_staler_than_synopsis(
        self, tmp_path: Path, crash_point: str
    ) -> None:
        """The fingerprint writes first, so a crash leaves (new wl, old syn).

        That ordering is safe for drift detection (a fresher baseline is
        conservative); the reverse — a fresh synopsis referencing a stale or
        missing fingerprint — must never happen.
        """
        path = tmp_path / "paired.npz"
        old = build(seed=1)
        save_synopsis(old, path)
        run_crashing_save(tmp_path, path, crash_point)
        workload_path = path.with_name("paired.workload.npz")
        if workload_path.exists():
            load_workload_fingerprint(workload_path)  # complete, loadable
        load_synopsis(path)  # and the synopsis is never torn


class TestRestartResume:
    def make_dynamic(self) -> DynamicPASS:
        return DynamicPASS(
            make_table(seed=7, n=2000),
            "value",
            ["a"],
            PASSConfig(n_partitions=8, sample_rate=0.02, opt_sample_size=200, seed=0),
        )

    def updates(self, seed: int, n: int) -> list[dict[str, float]]:
        rng = np.random.default_rng(seed)
        return [
            {"a": float(rng.uniform(0.0, 100.0)), "value": float(rng.uniform(1, 30))}
            for _ in range(n)
        ]

    def test_counters_and_staleness_survive_reload(self, tmp_path: Path) -> None:
        dynamic = self.make_dynamic()
        for row in self.updates(seed=3, n=60):
            dynamic.insert(row)
        path = save_synopsis(dynamic, tmp_path / "dyn")

        loaded = load_synopsis(path)
        assert isinstance(loaded, DynamicPASS)
        assert loaded.updates_since_build == dynamic.updates_since_build
        assert loaded.staleness == dynamic.staleness
        assert loaded.population_size == dynamic.population_size
        for query in workload():
            assert_identical(loaded.query(query), dynamic.query(query))

    def test_save_under_write_load_reloads_a_consistent_snapshot(
        self, tmp_path: Path
    ) -> None:
        """Updates that land after the save don't corrupt the archive.

        The save exports a snapshot; updates applied to the live instance
        while (and after) the archive is written must neither appear in the
        reloaded copy nor prevent it from resuming updates.
        """
        dynamic = self.make_dynamic()
        pre_save = self.updates(seed=4, n=40)
        post_save = self.updates(seed=5, n=25)
        for row in pre_save:
            dynamic.insert(row)
        path = save_synopsis(dynamic, tmp_path / "under-load")
        snapshot_updates = dynamic.updates_since_build
        for row in post_save:
            dynamic.insert(row)

        loaded = load_synopsis(path)
        assert loaded.updates_since_build == snapshot_updates
        assert loaded.population_size == dynamic.population_size - len(post_save)

        # The reloaded synopsis resumes the write path: replaying the same
        # post-save updates advances its counters to match the live one.
        for row in post_save:
            loaded.insert(row)
        assert loaded.updates_since_build == dynamic.updates_since_build
        assert loaded.staleness == dynamic.staleness
        assert loaded.population_size == dynamic.population_size
        # COUNT is sample-independent, so it agrees exactly even though the
        # reservoir RNG state does not survive a reload.
        count = AggregateQuery(
            "COUNT", "value", RectPredicate.from_bounds(a=(0.0, 100.0))
        )
        assert_identical(loaded.query(count), dynamic.query(count))
