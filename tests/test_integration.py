"""End-to-end integration tests tying the whole system together.

These check the paper's qualitative claims at a small scale:

* PASS is more accurate than uniform sampling on structured data for the same
  per-query sample budget;
* the hybrid estimate (exact covered parts + sampled partial parts) is
  consistent with the pure stratified-sampling estimate it generalizes;
* the deterministic hard bounds always contain the truth;
* the public package API exposes the documented entry points.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import (
    AggregateQuery,
    ExactEngine,
    PASSConfig,
    RectPredicate,
    StratifiedSampleSynopsis,
    UniformSampleSynopsis,
    build_pass,
    load_dataset,
)
from repro.evaluation.metrics import evaluate_workload
from repro.query.workload import random_range_queries


@pytest.fixture(scope="module")
def intel_spec():
    return load_dataset("intel", n_rows=30_000)


@pytest.fixture(scope="module")
def intel_workload(intel_spec):
    return random_range_queries(
        intel_spec.table,
        intel_spec.value_column,
        [intel_spec.default_predicate_column],
        n_queries=60,
        agg="SUM",
        rng=11,
        min_fraction=0.05,
        max_fraction=0.5,
    )


class TestPublicAPI:
    def test_package_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"
        assert repro.__version__

    def test_quickstart_flow(self, intel_spec):
        synopsis = build_pass(
            intel_spec.table,
            intel_spec.value_column,
            [intel_spec.default_predicate_column],
            PASSConfig(n_partitions=16, sample_rate=0.01, opt_sample_size=400),
        )
        query = AggregateQuery.sum(
            intel_spec.value_column, RectPredicate.from_bounds(time=(0.2, 0.8))
        )
        result = synopsis.query(query)
        truth = ExactEngine(intel_spec.table).execute(query)
        assert result.relative_error(truth) < 0.1
        assert result.within_hard_bounds(truth)


class TestPaperClaims:
    def test_pass_beats_uniform_sampling_on_structured_data(
        self, intel_spec, intel_workload
    ):
        """The headline claim of Table 1 at reduced scale."""
        engine = ExactEngine(intel_spec.table)
        truths = [engine.execute(q) for q in intel_workload.queries]

        pass_synopsis = build_pass(
            intel_spec.table,
            intel_spec.value_column,
            [intel_spec.default_predicate_column],
            PASSConfig(n_partitions=32, sample_rate=0.005, opt_sample_size=500, seed=0),
        )
        uniform = UniformSampleSynopsis(
            intel_spec.table,
            intel_spec.value_column,
            [intel_spec.default_predicate_column],
            sample_rate=0.005,
            rng=0,
        )
        pass_metrics = evaluate_workload(
            pass_synopsis, intel_workload.queries, engine, truths
        )
        uniform_metrics = evaluate_workload(
            uniform, intel_workload.queries, engine, truths
        )
        assert (
            pass_metrics.median_relative_error
            < 0.5 * uniform_metrics.median_relative_error
        )

    def test_pass_not_worse_than_stratified_sampling(self, intel_spec, intel_workload):
        engine = ExactEngine(intel_spec.table)
        truths = [engine.execute(q) for q in intel_workload.queries]
        from repro.sampling.stratified import equal_depth_boxes

        stratified = StratifiedSampleSynopsis(
            intel_spec.table,
            intel_spec.value_column,
            [intel_spec.default_predicate_column],
            equal_depth_boxes(
                intel_spec.table, intel_spec.default_predicate_column, 32
            ),
            sample_rate=0.005,
            rng=0,
        )
        pass_synopsis = build_pass(
            intel_spec.table,
            intel_spec.value_column,
            [intel_spec.default_predicate_column],
            PASSConfig(n_partitions=32, sample_rate=0.005, opt_sample_size=500, seed=0),
        )
        st_metrics = evaluate_workload(
            stratified, intel_workload.queries, engine, truths
        )
        pass_metrics = evaluate_workload(
            pass_synopsis, intel_workload.queries, engine, truths
        )
        assert (
            pass_metrics.median_relative_error
            <= st_metrics.median_relative_error * 1.1
        )

    def test_hard_bounds_contain_truth_for_every_query(
        self, intel_spec, intel_workload
    ):
        engine = ExactEngine(intel_spec.table)
        synopsis = build_pass(
            intel_spec.table,
            intel_spec.value_column,
            [intel_spec.default_predicate_column],
            PASSConfig(n_partitions=16, sample_rate=0.005, opt_sample_size=400, seed=1),
        )
        for query in intel_workload.queries:
            truth = engine.execute(query)
            result = synopsis.query(query)
            assert result.hard_lower - 1e-6 <= truth <= result.hard_upper + 1e-6

    def test_ci_coverage_is_near_nominal(self, intel_spec, intel_workload):
        """99% CLT intervals should cover the truth for the vast majority of queries."""
        engine = ExactEngine(intel_spec.table)
        truths = [engine.execute(q) for q in intel_workload.queries]
        synopsis = build_pass(
            intel_spec.table,
            intel_spec.value_column,
            [intel_spec.default_predicate_column],
            PASSConfig(n_partitions=32, sample_rate=0.01, opt_sample_size=500, seed=2),
        )
        metrics = evaluate_workload(synopsis, intel_workload.queries, engine, truths)
        assert metrics.ci_coverage >= 0.85

    def test_more_partitions_help_on_adversarial_challenging_queries(self):
        """Figure 6's qualitative trend: ADP error shrinks as k grows."""
        spec = load_dataset("adversarial", n_rows=20_000)
        tail_start = float(np.quantile(spec.table.column("key"), 0.875))
        tail = spec.table.select(spec.table.column("key") >= tail_start)
        workload = random_range_queries(
            tail,
            "value",
            ["key"],
            n_queries=40,
            rng=3,
            min_fraction=0.1,
            max_fraction=0.8,
        )
        engine = ExactEngine(spec.table)
        truths = [engine.execute(q) for q in workload.queries]
        errors = []
        for k in (4, 32):
            synopsis = build_pass(
                spec.table,
                "value",
                ["key"],
                PASSConfig(
                    n_partitions=k, sample_rate=0.005, opt_sample_size=600, seed=0
                ),
            )
            metrics = evaluate_workload(synopsis, workload.queries, engine, truths)
            errors.append(metrics.median_relative_error)
        assert errors[1] <= errors[0]

    def test_bss_storage_budgets_trade_accuracy_for_space(
        self, intel_spec, intel_workload
    ):
        """Table 1 / Table 2: more BSS storage gives equal or better accuracy."""
        engine = ExactEngine(intel_spec.table)
        truths = [engine.execute(q) for q in intel_workload.queries]
        errors = {}
        storages = {}
        for multiplier in (1.0, 10.0):
            synopsis = build_pass(
                intel_spec.table,
                intel_spec.value_column,
                [intel_spec.default_predicate_column],
                PASSConfig(
                    n_partitions=32,
                    sample_rate=0.005,
                    mode="bss",
                    bss_multiplier=multiplier,
                    opt_sample_size=500,
                    seed=0,
                ),
            )
            metrics = evaluate_workload(
                synopsis, intel_workload.queries, engine, truths
            )
            errors[multiplier] = metrics.median_relative_error
            storages[multiplier] = synopsis.storage_bytes()
        assert storages[10.0] > storages[1.0]
        assert errors[10.0] <= errors[1.0] * 1.2
