"""Tests for the partition tree, its invariants, and the MCF algorithm."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation.partition import PartitionStats
from repro.core.tree import PartitionTree
from repro.partitioning.boundaries import boxes_from_boundaries
from repro.query.predicate import Box, Interval, RectPredicate


def build_1d_tree(values: np.ndarray, boundaries: list[float], fanout: int = 2):
    """Helper: build a tree over a 1-D dataset of (key=index, value) pairs."""
    keys = np.arange(len(values), dtype=float)
    boxes = boxes_from_boundaries("key", boundaries)
    stats = [
        PartitionStats.from_values(values[box.mask({"key": keys})]) for box in boxes
    ]
    return PartitionTree.build_from_leaves(boxes, stats, fanout=fanout), boxes, keys


class TestTreeConstruction:
    def test_root_aggregates_everything(self):
        values = np.arange(1.0, 101.0)
        tree, _, _ = build_1d_tree(values, [24.5, 49.5, 74.5])
        assert tree.root.stats.count == 100
        assert tree.root.stats.sum == pytest.approx(values.sum())
        assert tree.n_leaves == 4

    def test_invariants_hold(self):
        values = np.arange(1.0, 201.0)
        tree, _, _ = build_1d_tree(values, list(np.arange(9.5, 199.5, 10.0)))
        tree.validate()

    def test_fanout_controls_height(self):
        values = np.arange(1.0, 65.0)
        binary, _, _ = build_1d_tree(values, list(np.arange(3.5, 63.5, 4.0)), fanout=2)
        wide, _, _ = build_1d_tree(values, list(np.arange(3.5, 63.5, 4.0)), fanout=4)
        assert binary.height > wide.height
        assert binary.n_leaves == wide.n_leaves == 16

    def test_leaf_index_matches_input_order(self):
        values = np.arange(1.0, 41.0)
        tree, boxes, _ = build_1d_tree(values, [9.5, 19.5, 29.5])
        for index, leaf in enumerate(tree.leaves):
            assert leaf.leaf_index == index
            assert leaf.box == boxes[index]

    def test_empty_leaves_rejected(self):
        with pytest.raises(ValueError):
            PartitionTree.build_from_leaves([], [])

    def test_mismatched_lengths_rejected(self):
        box = Box({"key": Interval(0, 1)})
        with pytest.raises(ValueError):
            PartitionTree.build_from_leaves([box], [])

    def test_fanout_validation(self):
        box = Box({"key": Interval(0, 1)})
        stats = PartitionStats.empty()
        with pytest.raises(ValueError):
            PartitionTree.build_from_leaves([box], [stats], fanout=1)

    def test_storage_bytes_scales_with_nodes(self):
        values = np.arange(1.0, 101.0)
        small, _, _ = build_1d_tree(values, [49.5])
        large, _, _ = build_1d_tree(values, list(np.arange(9.5, 99.5, 10.0)))
        assert large.storage_bytes() > small.storage_bytes()


class TestMCF:
    def test_aligned_query_fully_covered(self):
        values = np.arange(1.0, 101.0)
        tree, boxes, keys = build_1d_tree(values, [24.5, 49.5, 74.5])
        # A query whose bounds coincide with partition boundaries (the paper's
        # "aligned" case) is answered exactly: no partial leaves remain.
        predicate = RectPredicate(
            {
                "key": Interval(
                    boxes[1].interval("key").low, boxes[2].interval("key").high
                )
            }
        )
        result = tree.minimal_coverage_frontier(predicate)
        assert result.is_exact
        covered_count = sum(node.stats.count for node in result.covered)
        assert covered_count == 50

    def test_partial_query_returns_leaf_partials(self):
        values = np.arange(1.0, 101.0)
        tree, _, _ = build_1d_tree(values, [24.5, 49.5, 74.5])
        predicate = RectPredicate.from_bounds(key=(10.0, 60.0))
        result = tree.minimal_coverage_frontier(predicate)
        assert not result.is_exact
        assert all(node.is_leaf for node in result.partial)
        assert len(result.partial) == 2  # the two boundary leaves

    def test_query_inside_one_leaf_prunes_the_rest(self):
        values = np.arange(1.0, 101.0)
        tree, _, _ = build_1d_tree(values, [24.5, 49.5, 74.5])
        predicate = RectPredicate.from_bounds(key=(30.0, 40.0))
        result = tree.minimal_coverage_frontier(predicate)
        assert not result.covered
        assert [node.leaf_index for node in result.partial] == [1]

    def test_unconstrained_query_covers_root_only(self):
        values = np.arange(1.0, 101.0)
        tree, _, _ = build_1d_tree(values, [24.5, 49.5, 74.5])
        result = tree.minimal_coverage_frontier(RectPredicate.everything())
        assert len(result.covered) == 1
        assert result.covered[0] is tree.root
        assert result.nodes_visited == 1

    def test_zero_variance_rule_short_circuits(self):
        values = np.concatenate([np.full(50, 3.0), np.arange(1.0, 51.0)])
        tree, _, _ = build_1d_tree(values, [24.5, 49.5, 74.5])
        predicate = RectPredicate.from_bounds(key=(10.0, 90.0))
        without = tree.minimal_coverage_frontier(predicate, zero_variance_rule=False)
        with_rule = tree.minimal_coverage_frontier(predicate, zero_variance_rule=True)
        assert len(with_rule.partial) < len(without.partial)

    def test_visit_count_grows_slower_than_leaves_for_selective_queries(self):
        """The paper's O(gamma log B) bound: selective queries touch few nodes."""
        values = np.arange(1.0, 1025.0)
        boundaries = list(np.arange(3.5, 1023.5, 4.0))
        tree, _, _ = build_1d_tree(values, boundaries)
        assert tree.n_leaves == 256
        predicate = RectPredicate.from_bounds(key=(100.0, 104.0))
        result = tree.minimal_coverage_frontier(predicate)
        assert result.nodes_visited < 3 * np.log2(tree.n_leaves) * 4

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_mcf_classification_matches_flat_scan(self, data):
        """MCF's covered+partial leaves agree with a brute-force classification."""
        n_leaves = data.draw(st.integers(min_value=2, max_value=12))
        n_rows = 20 * n_leaves
        values = np.arange(1.0, n_rows + 1.0)
        boundaries = [20.0 * i - 0.5 for i in range(1, n_leaves)]
        tree, boxes, keys = build_1d_tree(values, boundaries)
        low = data.draw(st.floats(min_value=-10, max_value=n_rows + 10))
        high = data.draw(st.floats(min_value=low, max_value=n_rows + 20))
        predicate = RectPredicate.from_bounds(key=(low, high))
        result = tree.minimal_coverage_frontier(predicate)

        # Brute force: classify each leaf directly.
        expected_partial = set()
        expected_covered_rows = 0
        for index, box in enumerate(boxes):
            relation = predicate.relation_to_box(box)
            if relation == "partial":
                expected_partial.add(index)
            elif relation == "cover":
                expected_covered_rows += tree.leaves[index].stats.count
        assert {node.leaf_index for node in result.partial} == expected_partial
        covered_rows = sum(node.stats.count for node in result.covered)
        assert covered_rows == expected_covered_rows


class TestTreeNavigation:
    def test_leaf_for_point(self):
        values = np.arange(1.0, 101.0)
        tree, boxes, _ = build_1d_tree(values, [24.5, 49.5, 74.5])
        leaf = tree.leaf_for_point({"key": 30.0})
        assert leaf.box == boxes[1]
        with pytest.raises(KeyError):
            tree.leaf_for_point({"key": float("nan")})

    def test_path_to_leaf(self):
        values = np.arange(1.0, 101.0)
        tree, _, _ = build_1d_tree(values, [24.5, 49.5, 74.5])
        leaf = tree.leaves[2]
        path = tree.path_to_leaf(leaf)
        assert path[0] is tree.root
        assert path[-1] is leaf
        foreign = PartitionTree.build_from_leaves(
            [Box({"key": Interval(0, 1)})], [PartitionStats.empty()]
        ).leaves[0]
        with pytest.raises(KeyError):
            tree.path_to_leaf(foreign)
