"""Scatter-gather correctness of :class:`ShardedSynopsis`.

The acceptance property: for SUM / COUNT / MIN / MAX the merged point
estimate and variance equal the mathematically merged per-shard quantities
(exact equality — the deterministic tree components of PASS merge exactly),
and AVG answers stay inside the combined confidence interval of an unsharded
synopsis over the same data.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.builder import build_pass
from repro.core.config import PASSConfig
from repro.core.updates import DynamicPASS
from repro.data.table import Table
from repro.distributed.parallel import build_sharded_pass
from repro.distributed.sharded import ShardedSynopsis
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery, ExactEngine
from repro.serving.catalog import SynopsisCatalog
from repro.serving.engine import ServingEngine
from repro.serving.persistence import load_synopsis, save_synopsis


@pytest.fixture(scope="module")
def table() -> Table:
    rng = np.random.default_rng(42)
    n = 6000
    key = rng.uniform(0.0, 100.0, size=n)
    value = np.abs(rng.normal(50.0, 15.0, size=n) + 0.3 * key)
    return Table({"key": key, "value": value}, name="sharded_test")


@pytest.fixture(scope="module")
def config() -> PASSConfig:
    return PASSConfig(n_partitions=8, sample_rate=0.05, opt_sample_size=300, seed=9)


@pytest.fixture(scope="module")
def sharded(table, config) -> ShardedSynopsis:
    return build_sharded_pass(
        table, "value", "key", n_shards=4, config=config, executor="serial"
    )


@pytest.fixture(scope="module")
def engine(table) -> ExactEngine:
    return ExactEngine(table)


PREDICATES = [
    RectPredicate.from_bounds(key=(10.0, 90.0)),
    RectPredicate.from_bounds(key=(33.0, 41.0)),
    RectPredicate.everything(),
]


def _unwrap(shard):
    return shard.synopsis if isinstance(shard, DynamicPASS) else shard


class TestAdditiveMerge:
    @pytest.mark.parametrize("agg", ["SUM", "COUNT"])
    @pytest.mark.parametrize("predicate", PREDICATES)
    def test_estimate_and_variance_merge_exactly(self, sharded, agg, predicate):
        query = AggregateQuery(agg, "value", predicate)
        merged = sharded.query(query)
        survivors = sharded.surviving_shards(query)
        parts = [_unwrap(sharded.shards[i]).query(query) for i in survivors]
        assert merged.estimate == sum(part.estimate for part in parts)
        assert merged.variance == sum(part.variance for part in parts)
        assert merged.hard_lower == sum(part.hard_lower for part in parts)
        assert merged.hard_upper == sum(part.hard_upper for part in parts)

    @pytest.mark.parametrize("agg", ["SUM", "COUNT"])
    def test_truth_inside_hard_bounds(self, sharded, engine, agg):
        for predicate in PREDICATES:
            query = AggregateQuery(agg, "value", predicate)
            result = sharded.query(query)
            truth = engine.execute(query)
            # eps absorbs summation-order float noise between the single-pass
            # ground truth and the per-shard partial sums.
            eps = 1e-9 * max(1.0, abs(truth))
            assert result.hard_lower - eps <= truth <= result.hard_upper + eps

    def test_everything_predicate_is_exact(self, sharded, engine):
        for agg in ("SUM", "COUNT", "AVG", "MIN", "MAX"):
            query = AggregateQuery(agg, "value", RectPredicate.everything())
            result = sharded.query(query)
            assert result.exact
            assert result.estimate == pytest.approx(engine.execute(query), rel=1e-9)
            assert result.ci_half_width == 0.0

    def test_empty_region_estimates_zero(self, sharded):
        # The outermost partition boxes extend to infinity (as in unsharded
        # PASS), so an out-of-domain predicate partially overlaps the last
        # leaf of the last shard: the answer is a sampled zero, with every
        # other shard pruned outright.
        query = AggregateQuery(
            "SUM", "value", RectPredicate.from_bounds(key=(2000.0, 3000.0))
        )
        result = sharded.query(query)
        assert result.estimate == 0.0
        assert result.hard_lower == 0.0
        assert len(sharded.surviving_shards(query)) == 1


class TestExtremumMerge:
    @pytest.mark.parametrize("agg", ["MIN", "MAX"])
    @pytest.mark.parametrize("predicate", PREDICATES)
    def test_extrema_merge_exactly(self, sharded, agg, predicate):
        query = AggregateQuery(agg, "value", predicate)
        merged = sharded.query(query)
        survivors = sharded.surviving_shards(query)
        parts = [_unwrap(sharded.shards[i]).query(query) for i in survivors]
        pick = max if agg == "MAX" else min
        estimates = [p.estimate for p in parts if not math.isnan(p.estimate)]
        assert merged.estimate == pick(estimates)
        assert merged.hard_lower == pick(
            p.hard_lower for p in parts if not math.isnan(p.hard_lower)
        )
        assert merged.hard_upper == pick(
            p.hard_upper for p in parts if not math.isnan(p.hard_upper)
        )

    @pytest.mark.parametrize("agg", ["MIN", "MAX"])
    def test_truth_inside_hard_bounds(self, sharded, engine, agg):
        query = AggregateQuery(agg, "value", PREDICATES[0])
        result = sharded.query(query)
        truth = engine.execute(query)
        assert result.hard_lower <= truth <= result.hard_upper


class TestAvgMerge:
    @pytest.mark.parametrize("predicate", PREDICATES[:2])
    def test_avg_within_combined_ci_of_unsharded_synopsis(
        self, sharded, table, config, engine, predicate
    ):
        query = AggregateQuery("AVG", "value", predicate)
        unsharded = build_pass(table, "value", ["key"], config)
        reference = unsharded.query(query)
        merged = sharded.query(query)
        truth = engine.execute(query)
        # Both estimators must place the truth inside their intervals, and
        # the sharded point estimate must fall inside the unsharded CI (the
        # acceptance criterion) with a small numerical cushion.
        assert merged.contains_truth(truth) or merged.relative_error(truth) < 0.02
        cushion = 0.01 * abs(truth)
        assert (
            reference.ci_lower - cushion
            <= merged.estimate
            <= reference.ci_upper + cushion
        )

    def test_avg_is_ratio_of_combined_sum_and_count(self, sharded):
        predicate = PREDICATES[1]
        avg = sharded.query(AggregateQuery("AVG", "value", predicate))
        total = sharded.query(AggregateQuery("SUM", "value", predicate))
        count = sharded.query(AggregateQuery("COUNT", "value", predicate))
        assert avg.estimate == pytest.approx(total.estimate / count.estimate, rel=1e-12)

    def test_avg_bounds_contain_truth(self, sharded, engine):
        for predicate in PREDICATES:
            query = AggregateQuery("AVG", "value", predicate)
            result = sharded.query(query)
            truth = engine.execute(query)
            assert result.hard_lower <= truth <= result.hard_upper


class TestPruning:
    def test_narrow_predicate_prunes_shards(self, sharded):
        query = AggregateQuery(
            "SUM", "value", RectPredicate.from_bounds(key=(33.0, 41.0))
        )
        survivors = sharded.surviving_shards(query)
        assert 0 < len(survivors) < sharded.n_shards

    def test_pruned_population_is_reported_skipped(self, sharded):
        query = AggregateQuery(
            "SUM", "value", RectPredicate.from_bounds(key=(33.0, 41.0))
        )
        survivors = set(sharded.surviving_shards(query))
        pruned_population = sum(
            _unwrap(shard).population_size
            for index, shard in enumerate(sharded.shards)
            if index not in survivors
        )
        result = sharded.query(query)
        assert result.tuples_skipped >= pruned_population

    def test_hash_sharding_answers_correctly_without_range_pruning(
        self, table, config, engine
    ):
        sharded = build_sharded_pass(
            table,
            "value",
            "key",
            n_shards=4,
            strategy="hash",
            config=config,
            executor="serial",
        )
        query = AggregateQuery("COUNT", "value", PREDICATES[0])
        assert len(sharded.surviving_shards(query)) == sharded.n_shards
        result = sharded.query(query)
        truth = engine.execute(query)
        assert result.hard_lower <= truth <= result.hard_upper
        assert result.relative_error(truth) < 0.25

    def test_shard_column_predicate_on_shards_partitioned_elsewhere(self, config):
        # Shards split on `key` but partitioned/sampled on `a`: a predicate
        # constraining the shard column must still be answerable — the shard
        # samples retain the shard column for exactly this case.
        rng = np.random.default_rng(8)
        n = 4000
        mixed = Table(
            {
                "key": rng.uniform(0.0, 100.0, size=n),
                "a": rng.uniform(0.0, 10.0, size=n),
                "value": np.abs(rng.normal(30.0, 8.0, size=n)),
            },
            name="mixed",
        )
        sharded = build_sharded_pass(
            mixed,
            "value",
            "key",
            n_shards=3,
            predicate_columns=["a"],
            config=config,
            executor="serial",
        )
        engine = ExactEngine(mixed)
        for predicate in (
            RectPredicate.from_bounds(key=(20.0, 70.0)),
            RectPredicate.from_bounds(key=(20.0, 70.0), a=(2.0, 8.0)),
        ):
            for agg in ("SUM", "COUNT", "AVG"):
                query = AggregateQuery(agg, "value", predicate)
                result = sharded.query(query)
                truth = engine.execute(query)
                assert math.isfinite(result.estimate)
                assert result.relative_error(truth) < 0.25
        # And the serving path, which routes on the advertised shard column.
        catalog = SynopsisCatalog()
        entry = catalog.register("mixed_value", sharded, table_name="mixed")
        assert "key" in entry.predicate_columns
        serving = ServingEngine(catalog)
        query = AggregateQuery(
            "COUNT", "value", RectPredicate.from_bounds(key=(20.0, 70.0))
        )
        assert catalog.route(query, "mixed") is entry
        served = serving.execute(query, table="mixed")
        assert math.isfinite(served.estimate)

    def test_hash_point_predicate_routes_to_one_shard(self, table, config):
        sharded = build_sharded_pass(
            table, "value", "key", n_shards=4, strategy="hash",
            config=config, executor="serial",
        )
        key = float(table.column("key")[0])
        query = AggregateQuery(
            "COUNT", "value", RectPredicate.from_bounds(key=(key, key))
        )
        assert sharded.surviving_shards(query) == [sharded.shard_for_value(key)]


class TestBatchPath:
    def test_batch_results_identical_to_sequential(self, sharded):
        rng = np.random.default_rng(0)
        queries = []
        for _ in range(20):
            low, high = sorted(rng.uniform(0.0, 100.0, size=2))
            predicate = RectPredicate.from_bounds(key=(float(low), float(high)))
            for agg in ("SUM", "COUNT", "AVG", "MIN", "MAX"):
                queries.append(AggregateQuery(agg, "value", predicate))
        batch = sharded.query_batch(queries)
        for query, batched in zip(queries, batch):
            single = sharded.query(query)
            if math.isnan(single.estimate):
                assert math.isnan(batched.estimate)
            else:
                assert batched.estimate == single.estimate
            if math.isnan(single.variance):
                assert math.isnan(batched.variance)
            else:
                assert batched.variance == single.variance


class TestUpdatesAndValidation:
    def test_static_shards_reject_updates(self, sharded):
        with pytest.raises(TypeError, match="static"):
            sharded.insert({"key": 1.0, "value": 2.0})

    def test_dynamic_updates_route_to_owning_shard(self, table, config):
        sharded = build_sharded_pass(
            table, "value", "key", n_shards=3, config=config,
            dynamic=True, executor="serial",
        )
        query = AggregateQuery("COUNT", "value", RectPredicate.everything())
        before = sharded.query(query).estimate
        index = sharded.insert({"key": 50.0, "value": 10.0})
        assert index == sharded.shard_for_value(50.0)
        assert sharded.query(query).estimate == before + 1
        assert sharded.staleness > 0.0

    def test_hash_sharding_accepts_inserts_of_unseen_keys(self, config):
        # Keys whose hash bucket was empty at plan time route to the bucket's
        # assigned owner shard instead of raising.
        small = Table(
            {"key": np.arange(9.0), "value": np.arange(9.0) + 1.0}, name="small"
        )
        sharded = build_sharded_pass(
            small, "value", "key", n_shards=16, strategy="hash",
            config=PASSConfig(n_partitions=2, sample_rate=0.5, seed=0),
            dynamic=True, executor="serial",
        )
        before = sharded.population_size
        for key in (-3.0, 123.456, 9999.0):
            index = sharded.insert({"key": key, "value": 1.0})
            assert 0 <= index < sharded.n_shards
        assert sharded.population_size == before + 3

    def test_value_column_mismatch_raises(self, sharded):
        query = AggregateQuery("SUM", "other", RectPredicate.everything())
        with pytest.raises(ValueError, match="aggregates"):
            sharded.query(query)

    def test_replace_shard_validates_index_and_column(self, sharded, table, config):
        with pytest.raises(IndexError):
            sharded.replace_shard(99, sharded.shards[0])
        other = build_pass(
            Table({"key": np.arange(10.0), "other": np.arange(10.0)}),
            "other",
            ["key"],
            PASSConfig(n_partitions=2, sample_rate=0.5),
        )
        with pytest.raises(ValueError, match="value"):
            sharded.replace_shard(0, other)

    def test_mismatched_shards_and_boxes_raise(self, sharded):
        with pytest.raises(ValueError, match="key boxes"):
            ShardedSynopsis(
                shards=sharded.shards,
                key_boxes=sharded.key_boxes[:-1],
                shard_column="key",
            )


class TestServingIntegration:
    def test_engine_routes_and_answers_through_sharded_entry(
        self, sharded, table, engine
    ):
        catalog = SynopsisCatalog()
        entry = catalog.register("sharded_value", sharded, table_name=table.name)
        assert entry.is_sharded
        assert entry.n_partitions == sharded.n_partitions
        serving = ServingEngine(catalog)
        query = AggregateQuery("SUM", "value", PREDICATES[0])
        assert catalog.route(query, table.name) is entry
        result = serving.execute(query, table=table.name)
        assert result.estimate == sharded.query(query).estimate
        # Second execution is a cache hit with the identical result.
        assert serving.execute(query, table=table.name) == result

    def test_engine_batch_matches_direct_scatter_gather(self, sharded, table):
        catalog = SynopsisCatalog()
        catalog.register("sharded_value", sharded, table_name=table.name)
        serving = ServingEngine(catalog, cache_size=0)
        queries = [
            AggregateQuery(agg, "value", predicate)
            for agg in ("SUM", "COUNT", "AVG")
            for predicate in PREDICATES
        ]
        batch = serving.execute_batch(queries, table=table.name)
        direct = sharded.query_batch(queries)
        for served, expected in zip(batch, direct):
            if math.isnan(expected.estimate):
                assert math.isnan(served.estimate)
            else:
                assert served.estimate == expected.estimate

    def test_engine_update_invalidates_sharded_cache(self, table, config):
        sharded = build_sharded_pass(
            table, "value", "key", n_shards=3, config=config,
            dynamic=True, executor="serial",
        )
        catalog = SynopsisCatalog()
        catalog.register("sharded_value", sharded, table_name=table.name)
        serving = ServingEngine(catalog)
        query = AggregateQuery("COUNT", "value", RectPredicate.everything())
        before = serving.execute(query, table=table.name).estimate
        serving.insert("sharded_value", {"key": 10.0, "value": 5.0})
        after = serving.execute(query, table=table.name).estimate
        assert after == before + 1


class TestPersistence:
    def test_static_round_trip_is_bit_identical(self, sharded, tmp_path):
        path = save_synopsis(sharded, tmp_path / "sharded")
        reloaded = load_synopsis(path)
        assert isinstance(reloaded, ShardedSynopsis)
        assert reloaded.n_shards == sharded.n_shards
        assert reloaded.strategy == sharded.strategy
        for predicate in PREDICATES:
            for agg in ("SUM", "COUNT", "AVG", "MIN", "MAX"):
                query = AggregateQuery(agg, "value", predicate)
                a, b = sharded.query(query), reloaded.query(query)
                assert a.estimate == b.estimate or (
                    math.isnan(a.estimate) and math.isnan(b.estimate)
                )

    def test_dynamic_round_trip_keeps_update_support(self, table, config, tmp_path):
        sharded = build_sharded_pass(
            table, "value", "key", n_shards=2, config=config,
            dynamic=True, executor="serial",
        )
        sharded.insert({"key": 25.0, "value": 12.0})
        path = save_synopsis(sharded, tmp_path / "dynamic_sharded")
        reloaded = load_synopsis(path)
        assert isinstance(reloaded, ShardedSynopsis)
        assert reloaded.supports_updates
        assert reloaded.population_size == sharded.population_size
        assert reloaded.per_shard_staleness() == sharded.per_shard_staleness()
        reloaded.insert({"key": 30.0, "value": 8.0})

    def test_hash_round_trip_preserves_routing(self, table, config, tmp_path):
        sharded = build_sharded_pass(
            table, "value", "key", n_shards=4, strategy="hash",
            config=config, executor="serial",
        )
        path = save_synopsis(sharded, tmp_path / "hash_sharded")
        reloaded = load_synopsis(path)
        for value in table.column("key")[:20]:
            assert reloaded.shard_for_value(float(value)) == sharded.shard_for_value(
                float(value)
            )
