"""Tests for the shard planner: range / hash plans and shard routing."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.data.table import Table
from repro.distributed.planner import ShardPlanner, hash_assign


def _table(n: int = 1000, seed: int = 0) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        {
            "key": rng.uniform(0.0, 100.0, size=n),
            "value": rng.normal(50.0, 10.0, size=n),
        },
        name="planner_test",
    )


class TestRangePlan:
    def test_partitions_all_rows_disjointly(self):
        table = _table()
        plan = ShardPlanner(4, "range").plan(table, "key")
        assert plan.n_shards == 4
        assert sum(chunk.n_rows for chunk in plan.tables) == table.n_rows
        # Equal-depth split: shard sizes within a couple of rows of each
        # other (quantile boundaries round to actual key values).
        sizes = [chunk.n_rows for chunk in plan.tables]
        assert max(sizes) - min(sizes) <= 3

    def test_key_boxes_cover_the_real_line_contiguously(self):
        plan = ShardPlanner(5, "range").plan(_table(), "key")
        intervals = [box.interval("key") for box in plan.key_boxes]
        assert intervals[0].low == -math.inf
        assert intervals[-1].high == math.inf
        for left, right in zip(intervals, intervals[1:]):
            assert right.low == float(np.nextafter(left.high, math.inf))

    def test_rows_land_in_their_own_key_box(self):
        plan = ShardPlanner(4, "range").plan(_table(), "key")
        for index, chunk in enumerate(plan.tables):
            interval = plan.key_boxes[index].interval("key")
            keys = chunk.column("key")
            assert bool(np.all((keys >= interval.low) & (keys <= interval.high)))

    def test_shard_for_value_matches_membership(self):
        table = _table(200)
        plan = ShardPlanner(4, "range").plan(table, "key")
        for value in table.column("key")[:50]:
            index = plan.shard_for_value(float(value))
            assert value in plan.tables[index].column("key")

    def test_shard_for_value_covers_out_of_domain_keys(self):
        plan = ShardPlanner(3, "range").plan(_table(), "key")
        assert plan.shard_for_value(-1e9) == 0
        assert plan.shard_for_value(1e9) == plan.n_shards - 1

    def test_duplicate_heavy_keys_collapse_shards_without_gaps(self):
        table = Table({"key": np.array([1.0] * 50 + [2.0] * 50), "value": np.ones(100)})
        plan = ShardPlanner(8, "range").plan(table, "key")
        assert plan.n_shards <= 2
        assert sum(chunk.n_rows for chunk in plan.tables) == 100
        # Every conceivable key still has an owner.
        for value in (-5.0, 1.0, 1.5, 2.0, 7.0):
            plan.shard_for_value(value)


class TestHashPlan:
    def test_partitions_all_rows_disjointly(self):
        table = _table()
        plan = ShardPlanner(4, "hash").plan(table, "key")
        assert sum(chunk.n_rows for chunk in plan.tables) == table.n_rows
        assert plan.hash_modulus == 4

    def test_assignment_is_deterministic(self):
        keys = _table().column("key")
        assert np.array_equal(hash_assign(keys, 8), hash_assign(keys, 8))

    def test_negative_zero_hashes_with_positive_zero(self):
        # -0.0 == 0.0 numerically, so both must land on the same shard (a
        # bit-pattern hash would scatter them and break point-predicate
        # pruning and delete routing).
        buckets = hash_assign(np.array([0.0, -0.0]), 8)
        assert buckets[0] == buckets[1]

    def test_shard_for_value_matches_membership(self):
        table = _table(300)
        plan = ShardPlanner(4, "hash").plan(table, "key")
        for value in table.column("key")[:50]:
            index = plan.shard_for_value(float(value))
            assert value in plan.tables[index].column("key")

    def test_empty_buckets_still_have_an_owner(self):
        # 9 distinct keys hashed into 16 buckets leave most buckets empty at
        # plan time; keys hashing to those buckets must still route (a
        # streaming insert of a brand-new key cannot dangle).
        table = Table({"key": np.arange(9.0), "value": np.ones(9)})
        plan = ShardPlanner(16, "hash").plan(table, "key")
        assert plan.n_shards < 16
        assert len(plan.hash_owners) == 16
        assert all(0 <= owner < plan.n_shards for owner in plan.hash_owners)
        for value in np.linspace(-50.0, 50.0, 40):
            assert 0 <= plan.shard_for_value(float(value)) < plan.n_shards

    def test_balances_skewed_keys(self):
        # A heavily skewed (Zipf-like) key distribution still spreads across
        # buckets because distinct keys hash independently of their order.
        rng = np.random.default_rng(7)
        keys = np.floor(rng.zipf(1.5, size=2000).clip(max=50)).astype(float)
        table = Table({"key": keys, "value": np.ones(2000)})
        plan = ShardPlanner(4, "hash").plan(table, "key")
        assert plan.n_shards >= 2


class TestValidation:
    def test_rejects_bad_strategy(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            ShardPlanner(4, "round_robin")

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError, match="n_shards"):
            ShardPlanner(0)

    def test_rejects_empty_table(self):
        with pytest.raises(ValueError, match="empty"):
            ShardPlanner(2).plan(Table({"key": np.zeros(0)}), "key")

    def test_shard_for_row_requires_shard_column(self):
        plan = ShardPlanner(2).plan(_table(), "key")
        with pytest.raises(KeyError, match="shard column"):
            plan.shard_for_row({"value": 1.0})

    def test_hash_assign_rejects_nonpositive_buckets(self):
        with pytest.raises(ValueError, match="n_buckets"):
            hash_assign(np.zeros(3), 0)
