"""Tests for stratified aggregation and deterministic hard bounds."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation.partition import PartitionStats
from repro.aggregation.strat_agg import (
    HardBounds,
    StratifiedAggregationSynopsis,
    hard_bounds,
)
from repro.partitioning.equal import equal_depth_partition
from repro.query.aggregates import AggregateType
from repro.query.query import AggregateQuery, ExactEngine
from repro.query.predicate import RectPredicate


class TestHardBoundsFormulas:
    def test_sum_bounds(self):
        covered = [PartitionStats.from_values(np.array([1.0, 2.0]))]
        partial = [PartitionStats.from_values(np.array([10.0]))]
        bounds = hard_bounds(AggregateType.SUM, covered, partial)
        assert bounds.lower == 3.0
        assert bounds.upper == 13.0
        assert bounds.width == 10.0
        assert bounds.midpoint == 8.0

    def test_count_bounds(self):
        covered = [PartitionStats.from_values(np.array([1.0, 2.0, 3.0]))]
        partial = [PartitionStats.from_values(np.array([10.0, 20.0]))]
        bounds = hard_bounds(AggregateType.COUNT, covered, partial)
        assert bounds.lower == 3.0
        assert bounds.upper == 5.0

    def test_avg_bounds(self):
        covered = [PartitionStats.from_values(np.array([4.0, 6.0]))]  # avg 5
        partial = [PartitionStats.from_values(np.array([1.0, 20.0]))]
        bounds = hard_bounds(AggregateType.AVG, covered, partial)
        assert bounds.lower == 1.0
        assert bounds.upper == 20.0

    def test_avg_bounds_exact_when_no_partial(self):
        covered = [PartitionStats.from_values(np.array([4.0, 6.0]))]
        bounds = hard_bounds(AggregateType.AVG, covered, [])
        assert bounds.lower == bounds.upper == 5.0

    def test_avg_bounds_partial_only(self):
        partial = [PartitionStats.from_values(np.array([2.0, 9.0]))]
        bounds = hard_bounds(AggregateType.AVG, [], partial)
        assert bounds.lower == 2.0
        assert bounds.upper == 9.0

    def test_min_max_bounds(self):
        covered = [PartitionStats.from_values(np.array([3.0, 7.0]))]
        partial = [PartitionStats.from_values(np.array([1.0, 12.0]))]
        max_bounds = hard_bounds(AggregateType.MAX, covered, partial)
        assert max_bounds.lower == 7.0
        assert max_bounds.upper == 12.0
        min_bounds = hard_bounds(AggregateType.MIN, covered, partial)
        assert min_bounds.upper == 3.0
        assert min_bounds.lower == 1.0

    def test_empty_inputs_give_nan_bounds(self):
        bounds = hard_bounds(AggregateType.AVG, [], [])
        assert math.isnan(bounds.lower)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e4), min_size=1, max_size=30),
        st.lists(st.floats(min_value=0.0, max_value=1e4), min_size=0, max_size=30),
        st.data(),
    )
    @settings(max_examples=120)
    def test_truth_always_within_bounds(self, covered_values, partial_values, data):
        """For any split of the partial tuples into matching / not matching,
        the true aggregate lies inside the deterministic bounds."""
        covered_values = np.asarray(covered_values)
        partial_values = np.asarray(partial_values)
        covered = [PartitionStats.from_values(covered_values)]
        partial = (
            [PartitionStats.from_values(partial_values)] if partial_values.size else []
        )
        if partial_values.size:
            n_match = data.draw(st.integers(min_value=0, max_value=partial_values.size))
            matched_partial = partial_values[:n_match]
        else:
            matched_partial = np.array([])
        matched = np.concatenate([covered_values, matched_partial])

        for agg in (AggregateType.SUM, AggregateType.COUNT, AggregateType.AVG):
            bounds = hard_bounds(agg, covered, partial)
            if agg == AggregateType.SUM:
                truth = matched.sum()
            elif agg == AggregateType.COUNT:
                truth = float(matched.size)
            else:
                truth = matched.mean() if matched.size else float("nan")
            if math.isnan(truth):
                continue
            assert bounds.lower - 1e-6 <= truth <= bounds.upper + 1e-6


class TestHardBoundsDataclass:
    def test_contains_and_midpoint_with_infinite_bounds(self):
        bounds = HardBounds(lower=-math.inf, upper=5.0)
        assert bounds.contains(-1e9)
        assert math.isnan(bounds.midpoint)


class TestStratifiedAggregationSynopsis:
    @pytest.fixture
    def synopsis(self, skewed_table):
        boxes = equal_depth_partition(skewed_table, "key", 16)
        return StratifiedAggregationSynopsis(skewed_table, "value", boxes)

    def test_aligned_query_is_exact(self, synopsis, skewed_table):
        # A query spanning whole partitions exactly: use a partition boundary.
        box = synopsis.boxes[3]
        predicate = RectPredicate({"key": box.interval("key")})
        query = AggregateQuery.sum("value", predicate)
        result = synopsis.query(query)
        truth = ExactEngine(skewed_table).execute(query)
        assert result.exact
        assert result.estimate == pytest.approx(truth)
        assert result.ci_half_width == 0.0

    def test_partial_query_bounds_contain_truth(
        self, synopsis, skewed_table, range_query_factory
    ):
        engine = ExactEngine(skewed_table)
        for agg in ("SUM", "COUNT", "AVG"):
            query = range_query_factory(agg, 123.0, 1833.0)
            result = synopsis.query(query)
            truth = engine.execute(query)
            assert result.within_hard_bounds(truth)
            assert not result.exact

    def test_skip_accounting(self, synopsis, range_query_factory):
        result = synopsis.query(range_query_factory("SUM", 0.0, 400.0))
        assert result.tuples_skipped > 0
        assert result.tuples_processed == 0

    def test_storage_is_small(self, synopsis, skewed_table):
        assert synopsis.storage_bytes() < skewed_table.memory_bytes() / 10

    def test_wrong_column_rejected(self, synopsis):
        with pytest.raises(ValueError):
            synopsis.query(AggregateQuery.sum("key", RectPredicate.everything()))

    def test_requires_boxes(self, skewed_table):
        with pytest.raises(ValueError):
            StratifiedAggregationSynopsis(skewed_table, "value", [])
