"""Tests for the synopsis catalog: registration, routing, and fallback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builder import build_pass
from repro.core.config import PASSConfig
from repro.core.updates import DynamicPASS
from repro.data.table import Table
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery
from repro.serving.catalog import SynopsisCatalog


@pytest.fixture(scope="module")
def serving_table() -> Table:
    rng = np.random.default_rng(17)
    n = 4000
    return Table(
        {
            "a": rng.uniform(0.0, 100.0, size=n),
            "b": rng.uniform(0.0, 10.0, size=n),
            "value": np.abs(rng.normal(50.0, 15.0, size=n)),
            "other": np.abs(rng.normal(5.0, 1.0, size=n)),
        },
        name="serving",
    )


@pytest.fixture(scope="module")
def catalog(serving_table: Table) -> SynopsisCatalog:
    config = PASSConfig(
        n_partitions=16, partitioner="equal", opt_sample_size=500, seed=0
    )
    catalog = SynopsisCatalog()
    catalog.register(
        "value_by_a",
        build_pass(serving_table, "value", ["a"], config),
        table_name="serving",
    )
    catalog.register(
        "value_by_ab",
        build_pass(
            serving_table, "value", ["a", "b"], config.with_overrides(partitioner="kd")
        ),
        table_name="serving",
    )
    catalog.register(
        "other_by_a",
        build_pass(serving_table, "other", ["a"], config),
        table_name="serving",
    )
    catalog.register_table(serving_table, "serving")
    return catalog


class TestRegistration:
    def test_names_and_lookup(self, catalog):
        assert set(catalog.names()) == {"value_by_a", "value_by_ab", "other_by_a"}
        assert catalog.get("value_by_a").value_column == "value"
        assert "value_by_a" in catalog
        assert len(catalog) == 3

    def test_predicate_columns_inferred_from_tree(self, catalog):
        assert catalog.get("value_by_a").predicate_columns == ("a",)
        assert catalog.get("value_by_ab").predicate_columns == ("a", "b")

    def test_duplicate_name_rejected(self, catalog, serving_table):
        synopsis = catalog.get("value_by_a").synopsis
        with pytest.raises(ValueError, match="already registered"):
            catalog.register("value_by_a", synopsis)

    def test_unknown_name_raises_with_known_names(self, catalog):
        with pytest.raises(KeyError, match="value_by_a"):
            catalog.get("missing")

    def test_unregister(self, serving_table):
        catalog = SynopsisCatalog()
        config = PASSConfig(n_partitions=4, partitioner="equal", seed=0)
        catalog.register("tmp", build_pass(serving_table, "value", ["a"], config))
        catalog.unregister("tmp")
        assert "tmp" not in catalog
        with pytest.raises(KeyError):
            catalog.unregister("tmp")

    def test_dynamic_entries_report_staleness(self, serving_table):
        catalog = SynopsisCatalog()
        dynamic = DynamicPASS(
            serving_table,
            "value",
            ["a"],
            PASSConfig(n_partitions=4, partitioner="equal", seed=0),
        )
        entry = catalog.register("dyn", dynamic)
        assert entry.is_dynamic
        assert entry.staleness == 0.0
        dynamic.insert({"a": 1.0, "b": 1.0, "value": 3.0, "other": 1.0})
        assert entry.staleness > 0.0


class TestRouting:
    def test_routes_to_matching_synopsis(self, catalog):
        query = AggregateQuery.sum("value", RectPredicate.from_bounds(a=(10.0, 50.0)))
        assert catalog.route(query).name == "value_by_a"

    def test_prefers_tightest_predicate_column_fit(self, catalog):
        # Both value synopses can answer a predicate on `a` alone, but the 1-D
        # synopsis has no surplus partitioning columns and wins.
        query = AggregateQuery.avg("value", RectPredicate.from_bounds(a=(0.0, 30.0)))
        assert catalog.route(query).name == "value_by_a"

    def test_multidim_predicate_needs_multidim_synopsis(self, catalog):
        query = AggregateQuery.sum(
            "value", RectPredicate.from_bounds(a=(10.0, 50.0), b=(1.0, 5.0))
        )
        assert catalog.route(query).name == "value_by_ab"

    def test_routes_on_value_column(self, catalog):
        query = AggregateQuery.sum("other", RectPredicate.from_bounds(a=(10.0, 50.0)))
        assert catalog.route(query).name == "other_by_a"

    def test_unbounded_predicate_columns_do_not_block_routing(self, catalog):
        from repro.query.predicate import Interval

        query = AggregateQuery.sum(
            "value",
            RectPredicate({"a": Interval(0.0, 50.0), "b": Interval.unbounded()}),
        )
        assert catalog.route(query).name == "value_by_a"

    def test_no_match_returns_none(self, catalog):
        query = AggregateQuery.sum("value", RectPredicate.from_bounds(other=(0.0, 1.0)))
        assert catalog.route(query) is None

    def test_table_name_filter(self, catalog):
        query = AggregateQuery.sum("value", RectPredicate.from_bounds(a=(10.0, 50.0)))
        assert catalog.route(query, table_name="serving") is not None
        assert catalog.route(query, table_name="elsewhere") is None


class TestFallback:
    def test_exact_engine_by_name(self, catalog, serving_table):
        engine = catalog.exact_engine("serving")
        assert engine is not None
        assert engine.table is serving_table

    def test_sole_table_is_the_default_fallback(self, catalog):
        assert catalog.exact_engine() is catalog.exact_engine("serving")

    def test_missing_table_returns_none(self, catalog):
        assert catalog.exact_engine("elsewhere") is None
