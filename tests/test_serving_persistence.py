"""Tests for synopsis persistence: save/load must be bit-exact.

The acceptance bar for the serving layer is that a persisted-and-reloaded
synopsis answers every query identically to the in-memory instance it was
saved from — same estimates, intervals, hard bounds, and telemetry counters.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest

from repro.core.builder import build_pass
from repro.core.config import PASSConfig
from repro.core.pass_synopsis import PASSSynopsis
from repro.core.tree import PartitionTree
from repro.core.updates import DynamicPASS
from repro.data.table import Table
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery
from repro.serving.catalog import SynopsisCatalog
from repro.serving.persistence import (
    FORMAT_VERSION,
    load_catalog,
    load_synopsis,
    save_catalog,
    save_synopsis,
)


def assert_identical(a, b):
    """AQPResult equality treating NaN fields as equal (NaN != NaN otherwise)."""
    for field in dataclasses.fields(a):
        x, y = getattr(a, field.name), getattr(b, field.name)
        if isinstance(x, float) and math.isnan(x):
            assert isinstance(y, float) and math.isnan(y), field.name
        else:
            assert x == y, f"{field.name}: {x!r} != {y!r}"


@pytest.fixture(scope="module")
def table() -> Table:
    rng = np.random.default_rng(5)
    n = 6000
    return Table(
        {
            "a": rng.uniform(0.0, 100.0, size=n),
            "b": rng.uniform(0.0, 10.0, size=n),
            "value": np.abs(rng.lognormal(2.0, 0.8, size=n)),
        },
        name="persisted",
    )


@pytest.fixture(scope="module")
def workload(table: Table) -> list[AggregateQuery]:
    rng = np.random.default_rng(11)
    queries = []
    for _ in range(30):
        low, high = sorted(rng.uniform(0.0, 100.0, size=2))
        predicate = RectPredicate.from_bounds(a=(float(low), float(high)))
        for agg in ("SUM", "COUNT", "AVG", "MIN", "MAX"):
            queries.append(AggregateQuery(agg, "value", predicate))
    return queries


class TestTreeArrays:
    def test_round_trip_preserves_structure_and_stats(self, table):
        synopsis = build_pass(
            table,
            "value",
            ["a"],
            PASSConfig(n_partitions=16, partitioner="equal", seed=0),
        )
        tree = synopsis.tree
        rebuilt = PartitionTree.from_arrays(tree.to_arrays())
        assert rebuilt.n_leaves == tree.n_leaves
        assert rebuilt.n_nodes == tree.n_nodes
        assert rebuilt.height == tree.height
        for original, loaded in zip(
            tree.root.iter_subtree(), rebuilt.root.iter_subtree()
        ):
            assert loaded.stats == original.stats
            assert loaded.box == original.box
            assert loaded.leaf_index == original.leaf_index
        rebuilt.validate()

    def test_rejects_empty_arrays(self):
        with pytest.raises(ValueError, match="empty"):
            PartitionTree.from_arrays(
                {
                    "n_children": np.zeros(0, dtype=np.int64),
                    "leaf_index": np.zeros(0, dtype=np.int64),
                    "sum": np.zeros(0),
                    "count": np.zeros(0, dtype=np.int64),
                    "min": np.zeros(0),
                    "max": np.zeros(0),
                    "box_columns": np.array([], dtype=str),
                    "box_low": np.zeros((0, 0)),
                    "box_high": np.zeros((0, 0)),
                    "box_present": np.zeros((0, 0), dtype=bool),
                }
            )


class TestSynopsisRoundTrip:
    def test_estimates_bit_exact_after_reload(self, table, workload, tmp_path):
        synopsis = build_pass(
            table,
            "value",
            ["a"],
            PASSConfig(n_partitions=32, opt_sample_size=800, seed=3),
        )
        path = save_synopsis(synopsis, tmp_path / "static.pass")
        loaded = load_synopsis(path)
        assert isinstance(loaded, PASSSynopsis)
        assert loaded.sample_size == synopsis.sample_size
        assert loaded.population_size == synopsis.population_size
        for query in workload:
            assert_identical(synopsis.query(query), loaded.query(query))

    def test_multidim_synopsis_round_trips(self, table, tmp_path):
        synopsis = build_pass(
            table,
            "value",
            ["a", "b"],
            PASSConfig(n_partitions=32, partitioner="kd", opt_sample_size=800, seed=0),
        )
        loaded = load_synopsis(save_synopsis(synopsis, tmp_path / "kd"))
        query = AggregateQuery.sum(
            "value", RectPredicate.from_bounds(a=(10.0, 70.0), b=(2.0, 8.0))
        )
        assert_identical(synopsis.query(query), loaded.query(query))

    def test_npz_suffix_appended(self, table, tmp_path):
        synopsis = build_pass(
            table,
            "value",
            ["a"],
            PASSConfig(n_partitions=4, partitioner="equal", seed=0),
        )
        path = save_synopsis(synopsis, tmp_path / "plain")
        assert path.suffix == ".npz"
        assert path.exists()


class TestDynamicRoundTrip:
    def test_reload_preserves_updates_and_reservoirs(self, table, workload, tmp_path):
        dynamic = DynamicPASS(
            table,
            "value",
            ["a"],
            PASSConfig(n_partitions=8, partitioner="equal", sample_rate=0.05, seed=0),
        )
        rng = np.random.default_rng(2)
        for _ in range(50):
            dynamic.insert(
                {
                    "a": float(rng.uniform(0, 100)),
                    "b": 1.0,
                    "value": float(rng.uniform(1, 30)),
                }
            )
        loaded = load_synopsis(save_synopsis(dynamic, tmp_path / "dynamic"))
        assert isinstance(loaded, DynamicPASS)
        assert loaded.updates_since_build == dynamic.updates_since_build
        assert loaded.staleness == dynamic.staleness
        assert loaded.population_size == dynamic.population_size
        for query in workload:
            assert_identical(dynamic.query(query), loaded.query(query))

    def test_reloaded_instance_accepts_further_updates(self, table, tmp_path):
        dynamic = DynamicPASS(
            table,
            "value",
            ["a"],
            PASSConfig(n_partitions=4, partitioner="equal", seed=0),
        )
        loaded = load_synopsis(save_synopsis(dynamic, tmp_path / "resume"))
        before = loaded.population_size
        loaded.insert({"a": 50.0, "b": 1.0, "value": 7.0})
        assert loaded.population_size == before + 1
        assert loaded.updates_since_build == 1


class TestCatalogRoundTrip:
    def test_catalog_round_trip_serves_identical_estimates(
        self, table, workload, tmp_path
    ):
        config = PASSConfig(n_partitions=16, partitioner="equal", seed=0)
        catalog = SynopsisCatalog()
        catalog.register(
            "static", build_pass(table, "value", ["a"], config), table_name="persisted"
        )
        catalog.register(
            "dynamic",
            DynamicPASS(table, "value", ["a", "b"], config),
            table_name="persisted",
        )
        catalog.register_table(table, "persisted")
        save_catalog(catalog, tmp_path / "catalog")
        loaded = load_catalog(tmp_path / "catalog", tables={"persisted": table})

        assert set(loaded.names()) == {"static", "dynamic"}
        assert loaded.get("dynamic").is_dynamic
        assert loaded.exact_engine("persisted") is not None
        for query in workload:
            entry = catalog.route(query)
            loaded_entry = loaded.route(query)
            assert loaded_entry.name == entry.name
            assert_identical(
                entry.pass_synopsis.query(query),
                loaded_entry.pass_synopsis.query(query),
            )


class TestFormatVersioning:
    def test_header_records_format_version(self, table, tmp_path):
        import json

        synopsis = build_pass(
            table,
            "value",
            ["a"],
            PASSConfig(n_partitions=4, partitioner="equal", seed=0),
        )
        path = save_synopsis(synopsis, tmp_path / "versioned")
        with np.load(path, allow_pickle=False) as data:
            header = json.loads(data["__header__"].item())
        assert header["format"] == FORMAT_VERSION

    def test_unsupported_version_rejected(self, table, tmp_path):
        import json

        synopsis = build_pass(
            table,
            "value",
            ["a"],
            PASSConfig(n_partitions=4, partitioner="equal", seed=0),
        )
        path = save_synopsis(synopsis, tmp_path / "future")
        with np.load(path, allow_pickle=False) as data:
            arrays = {key: data[key] for key in data.files}
        header = json.loads(arrays["__header__"].item())
        header["format"] = FORMAT_VERSION + 1
        arrays["__header__"] = np.array(json.dumps(header))
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="unsupported synopsis format"):
            load_synopsis(path)

    def test_non_synopsis_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez_compressed(path, values=np.arange(3))
        with pytest.raises(ValueError, match="missing header"):
            load_synopsis(path)
