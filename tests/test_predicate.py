"""Unit and property-based tests for Interval / Box / RectPredicate geometry."""

from __future__ import annotations


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.predicate import Box, Interval, RectPredicate, Relation

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def intervals(draw) -> Interval:
    low = draw(finite_floats)
    high = draw(finite_floats)
    low, high = min(low, high), max(low, high)
    return Interval(low, high)


class TestInterval:
    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)

    def test_nan_bounds_rejected(self):
        with pytest.raises(ValueError):
            Interval(float("nan"), 1.0)

    def test_constructors(self):
        assert Interval.unbounded().contains_value(1e300)
        assert Interval.at_least(5.0).contains_value(7.0)
        assert not Interval.at_least(5.0).contains_value(4.0)
        assert Interval.at_most(5.0).contains_value(-1e9)
        assert Interval.point(3.0).contains_value(3.0)
        assert not Interval.point(3.0).contains_value(3.5)

    def test_width(self):
        assert Interval(1.0, 4.0).width == 3.0

    def test_containment_and_overlap(self):
        outer = Interval(0.0, 10.0)
        inner = Interval(2.0, 3.0)
        assert outer.contains_interval(inner)
        assert not inner.contains_interval(outer)
        assert outer.overlaps(inner)
        assert not Interval(0.0, 1.0).overlaps(Interval(2.0, 3.0))

    def test_intersection(self):
        assert Interval(0.0, 5.0).intersect(Interval(3.0, 8.0)) == Interval(3.0, 5.0)
        assert Interval(0.0, 1.0).intersect(Interval(2.0, 3.0)) is None

    def test_mask(self):
        values = np.array([0.0, 1.0, 2.0, 3.0])
        mask = Interval(1.0, 2.0).mask(values)
        assert list(mask) == [False, True, True, False]

    @given(intervals(), intervals())
    @settings(max_examples=100)
    def test_overlap_is_symmetric(self, a: Interval, b: Interval):
        assert a.overlaps(b) == b.overlaps(a)

    @given(intervals(), intervals())
    @settings(max_examples=100)
    def test_intersection_contained_in_both(self, a: Interval, b: Interval):
        intersection = a.intersect(b)
        if intersection is None:
            assert not a.overlaps(b)
        else:
            assert a.contains_interval(intersection)
            assert b.contains_interval(intersection)

    @given(intervals(), finite_floats)
    @settings(max_examples=100)
    def test_containment_consistent_with_mask(self, interval: Interval, value: float):
        assert interval.contains_value(value) == bool(
            interval.mask(np.array([value]))[0]
        )


class TestBox:
    def test_unbounded_box_contains_everything(self):
        box = Box.unbounded(["x", "y"])
        other = Box({"x": Interval(0, 1), "y": Interval(-5, 5)})
        assert box.contains_box(other)

    def test_contains_box_partial_dimensions(self):
        big = Box({"x": Interval(0, 10)})
        small = Box({"x": Interval(2, 3), "y": Interval(0, 1)})
        assert big.contains_box(small)
        assert not small.contains_box(big)

    def test_overlap_and_intersection(self):
        a = Box({"x": Interval(0, 5), "y": Interval(0, 5)})
        b = Box({"x": Interval(4, 8), "y": Interval(1, 2)})
        assert a.overlaps_box(b)
        inter = a.intersect(b)
        assert inter is not None
        assert inter.interval("x") == Interval(4, 5)
        c = Box({"x": Interval(6, 8)})
        assert a.intersect(c) is None

    def test_split_produces_disjoint_children(self):
        box = Box({"x": Interval(0.0, 10.0)})
        left, right = box.split("x", 4.0)
        assert left.interval("x").high == 4.0
        assert right.interval("x").low > 4.0
        assert not left.overlaps_box(right)

    def test_split_outside_interval_rejected(self):
        box = Box({"x": Interval(0.0, 10.0)})
        with pytest.raises(ValueError):
            box.split("x", 20.0)

    def test_box_equality_and_hash(self):
        a = Box({"x": Interval(0, 1)})
        b = Box({"x": Interval(0, 1)})
        assert a == b
        assert hash(a) == hash(b)

    def test_mask_conjunction(self):
        box = Box({"x": Interval(0, 1), "y": Interval(10, 20)})
        mask = box.mask(
            {"x": np.array([0.5, 0.5, 2.0]), "y": np.array([15.0, 25.0, 15.0])}
        )
        assert list(mask) == [True, False, False]

    def test_mask_missing_column_raises(self):
        box = Box({"x": Interval(0, 1)})
        with pytest.raises(KeyError):
            box.mask({"y": np.array([1.0])})


class TestRectPredicate:
    def test_from_bounds_and_everything(self):
        predicate = RectPredicate.from_bounds(x=(0.0, 1.0))
        assert predicate.interval("x") == Interval(0.0, 1.0)
        assert len(RectPredicate.everything()) == 0

    def test_relation_cover(self):
        predicate = RectPredicate.from_bounds(x=(0.0, 10.0))
        box = Box({"x": Interval(2.0, 3.0)})
        assert predicate.relation_to_box(box) == Relation.COVER
        assert predicate.covers_box(box)

    def test_relation_disjoint(self):
        predicate = RectPredicate.from_bounds(x=(0.0, 1.0))
        box = Box({"x": Interval(2.0, 3.0)})
        assert predicate.relation_to_box(box) == Relation.DISJOINT
        assert not predicate.overlaps_box(box)

    def test_relation_partial(self):
        predicate = RectPredicate.from_bounds(x=(0.0, 2.5))
        box = Box({"x": Interval(2.0, 3.0)})
        assert predicate.relation_to_box(box) == Relation.PARTIAL

    def test_relation_on_unconstrained_box_column(self):
        # The box does not constrain y; the predicate does, so the box can
        # only be partial (some of its y-extent falls outside the predicate).
        predicate = RectPredicate.from_bounds(y=(0.0, 1.0))
        box = Box({"x": Interval(0.0, 1.0)})
        assert predicate.relation_to_box(box) == Relation.PARTIAL

    def test_as_box(self):
        predicate = RectPredicate.from_bounds(x=(0.0, 1.0))
        box = predicate.as_box(["x", "y"])
        assert box.interval("y") == Interval.unbounded()

    @given(intervals(), intervals())
    @settings(max_examples=150)
    def test_relation_consistent_with_tuple_membership(self, p: Interval, b: Interval):
        """COVER/DISJOINT relations agree with point-level membership."""
        predicate = RectPredicate({"x": p})
        box = Box({"x": b})
        relation = predicate.relation_to_box(box)
        probes = np.linspace(b.low, b.high, num=7)
        inside = [p.contains_value(v) for v in probes]
        if relation == Relation.COVER:
            assert all(inside)
        elif relation == Relation.DISJOINT:
            assert not any(inside)

    def test_everything_relation_is_cover(self):
        predicate = RectPredicate.everything()
        box = Box({"x": Interval(0.0, 1.0)})
        assert predicate.relation_to_box(box) == Relation.COVER

    def test_mask_no_constraints_requires_columns(self):
        predicate = RectPredicate.everything()
        with pytest.raises(ValueError):
            predicate.mask({})
        mask = predicate.mask({"x": np.array([1.0, 2.0])})
        assert mask.all()
