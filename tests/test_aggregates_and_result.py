"""Tests for aggregate definitions, exact aggregation, and AQPResult helpers."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.query.aggregates import (
    ALL_AGGREGATES,
    CLASSIC_AGGREGATES,
    SAMPLING_SUPPORTED,
    SKETCH_AGGREGATES,
    AggregateType,
    exact_aggregate,
)
from repro.result import AQPResult, LAMBDA_95, LAMBDA_99


class TestAggregateType:
    def test_parse_from_string_case_insensitive(self):
        assert AggregateType.parse("sum") == AggregateType.SUM
        assert AggregateType.parse("Avg") == AggregateType.AVG

    def test_parse_passthrough(self):
        assert AggregateType.parse(AggregateType.MIN) == AggregateType.MIN

    def test_parse_sketch_aggregates_and_aliases(self):
        assert AggregateType.parse("quantile") == AggregateType.QUANTILE
        assert AggregateType.parse("median") == AggregateType.QUANTILE
        assert AggregateType.parse("count_distinct") == AggregateType.COUNT_DISTINCT
        assert AggregateType.parse("Count Distinct") == AggregateType.COUNT_DISTINCT

    def test_parse_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown aggregate"):
            AggregateType.parse("mode")

    def test_constant_sets(self):
        assert AggregateType.MIN not in SAMPLING_SUPPORTED
        assert len(ALL_AGGREGATES) == 7
        assert len(CLASSIC_AGGREGATES) == 5
        assert set(SKETCH_AGGREGATES) == {
            AggregateType.QUANTILE,
            AggregateType.COUNT_DISTINCT,
        }
        assert set(CLASSIC_AGGREGATES) | set(SKETCH_AGGREGATES) == set(ALL_AGGREGATES)


class TestExactAggregate:
    def test_all_aggregates_on_known_values(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        assert exact_aggregate(AggregateType.SUM, values) == 10.0
        assert exact_aggregate(AggregateType.COUNT, values) == 4.0
        assert exact_aggregate(AggregateType.AVG, values) == 2.5
        assert exact_aggregate(AggregateType.MIN, values) == 1.0
        assert exact_aggregate(AggregateType.MAX, values) == 4.0

    def test_empty_input_follows_sql_semantics(self):
        empty = np.array([])
        assert exact_aggregate(AggregateType.COUNT, empty) == 0.0
        assert exact_aggregate(AggregateType.SUM, empty) == 0.0
        assert math.isnan(exact_aggregate(AggregateType.AVG, empty))
        assert math.isnan(exact_aggregate(AggregateType.MIN, empty))
        assert math.isnan(exact_aggregate(AggregateType.MAX, empty))

    def test_nan_rows_are_ignored_like_sql_null(self):
        values = np.array([1.0, float("nan"), 3.0, float("nan")])
        assert exact_aggregate(AggregateType.SUM, values) == 4.0
        assert exact_aggregate(AggregateType.AVG, values) == 2.0
        assert exact_aggregate(AggregateType.MIN, values) == 1.0
        assert exact_aggregate(AggregateType.MAX, values) == 3.0
        # COUNT keeps COUNT(*) semantics: every row counts.
        assert exact_aggregate(AggregateType.COUNT, values) == 4.0

    def test_all_nan_group_behaves_like_empty_group(self):
        values = np.array([float("nan"), float("nan")])
        assert exact_aggregate(AggregateType.SUM, values) == 0.0
        assert math.isnan(exact_aggregate(AggregateType.AVG, values))
        assert math.isnan(exact_aggregate(AggregateType.MIN, values))
        assert math.isnan(exact_aggregate(AggregateType.MAX, values))
        assert exact_aggregate(AggregateType.COUNT, values) == 2.0

    def test_quantile_on_known_values(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        assert exact_aggregate(AggregateType.QUANTILE, values) == 2.5
        assert exact_aggregate(AggregateType.QUANTILE, values, quantile=0.0) == 1.0
        assert exact_aggregate(AggregateType.QUANTILE, values, quantile=1.0) == 4.0
        assert exact_aggregate(
            AggregateType.QUANTILE, values, quantile=0.25
        ) == pytest.approx(1.75)

    def test_quantile_ignores_nan_like_sql_null(self):
        values = np.array([1.0, float("nan"), 3.0, float("nan"), 5.0])
        assert exact_aggregate(AggregateType.QUANTILE, values, quantile=0.5) == 3.0

    def test_quantile_out_of_range_raises(self):
        with pytest.raises(ValueError, match="quantile"):
            exact_aggregate(AggregateType.QUANTILE, np.array([1.0]), quantile=1.5)

    def test_quantile_empty_and_all_nan_are_null(self):
        assert math.isnan(exact_aggregate(AggregateType.QUANTILE, np.array([])))
        assert math.isnan(
            exact_aggregate(
                AggregateType.QUANTILE, np.array([float("nan")]), quantile=0.9
            )
        )

    def test_count_distinct_on_known_values(self):
        values = np.array([1.0, 2.0, 2.0, 3.0, 3.0, 3.0])
        assert exact_aggregate(AggregateType.COUNT_DISTINCT, values) == 3.0

    def test_count_distinct_ignores_nan(self):
        values = np.array([1.0, float("nan"), 1.0, float("nan"), 2.0])
        assert exact_aggregate(AggregateType.COUNT_DISTINCT, values) == 2.0

    def test_count_distinct_empty_and_all_nan_are_zero(self):
        assert exact_aggregate(AggregateType.COUNT_DISTINCT, np.array([])) == 0.0
        nans = np.array([float("nan"), float("nan")])
        assert exact_aggregate(AggregateType.COUNT_DISTINCT, nans) == 0.0


class TestAQPResult:
    def test_confidence_interval_endpoints(self):
        result = AQPResult(estimate=100.0, ci_half_width=10.0)
        assert result.ci_lower == 90.0
        assert result.ci_upper == 110.0
        assert result.contains_truth(95.0)
        assert not result.contains_truth(120.0)

    def test_nan_half_width_gives_nan_bounds(self):
        result = AQPResult(estimate=100.0)
        assert math.isnan(result.ci_lower)
        assert not result.contains_truth(100.0)

    def test_relative_error(self):
        result = AQPResult(estimate=110.0)
        assert result.relative_error(100.0) == pytest.approx(0.1)
        assert AQPResult(estimate=0.0).relative_error(0.0) == 0.0
        assert math.isinf(AQPResult(estimate=1.0).relative_error(0.0))
        assert math.isnan(AQPResult(estimate=float("nan")).relative_error(5.0))

    def test_ci_ratio(self):
        result = AQPResult(estimate=100.0, ci_half_width=5.0)
        assert result.ci_ratio(50.0) == pytest.approx(0.1)
        assert math.isnan(result.ci_ratio(0.0))

    def test_hard_bounds(self):
        result = AQPResult(estimate=10.0, hard_lower=5.0, hard_upper=15.0)
        assert result.within_hard_bounds(7.0)
        assert not result.within_hard_bounds(20.0)

    def test_default_hard_bounds_are_unbounded(self):
        result = AQPResult(estimate=10.0)
        assert result.within_hard_bounds(1e18)

    def test_lambda_constants(self):
        assert LAMBDA_95 == pytest.approx(1.96)
        assert LAMBDA_99 == pytest.approx(2.576)
