"""End-to-end acceptance: drift + staleness degrade health, coverage holds.

The acceptance scenario from the quality-observability issue: serve a
workload matching the build-time shape, then inject drift (boxes shifted
into a hot corner) and streaming extremum deletions.  The quality layer
must show drift score and staleness rising, the health rollup moving to
``degraded``, certified-bound coverage staying 1.0 on exact-guarantee
paths, and the full Prometheus exposition (including every new quality
family) passing strict validation.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.config import PASSConfig
from repro.core.updates import DynamicPASS
from repro.data.table import Table
from repro.obs import Observability
from repro.obs.audit import AccuracyAuditor
from repro.obs.drift import WorkloadDriftDetector, WorkloadFingerprint
from repro.obs.export import json_snapshot, prometheus_text, validate_exposition
from repro.obs.quality import HEALTH_DEGRADED
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery
from repro.serving.catalog import SynopsisCatalog
from repro.serving.engine import ServingEngine

N_ROWS = 6000
KEY_DOMAIN = (0.0, 100.0)


@pytest.fixture()
def deployment():
    rng = np.random.default_rng(23)
    table = Table(
        {
            "key": rng.uniform(*KEY_DOMAIN, size=N_ROWS),
            "value": np.abs(rng.normal(40.0, 12.0, size=N_ROWS)),
        },
        name="live",
    )
    synopsis = DynamicPASS(
        table,
        "value",
        ["key"],
        PASSConfig(n_partitions=16, sample_rate=0.05, partitioner="equal", seed=0),
        rng=3,
    )
    obs = Observability()
    catalog = SynopsisCatalog()
    catalog.register("live_value", synopsis, table_name="live")
    catalog.register_table(table, "live")
    engine = ServingEngine(catalog, obs=obs)
    auditor = AccuracyAuditor(engine, sample_every=1, max_rate=None)
    yield table, engine, catalog, obs, auditor
    auditor.stop()


def _matched(rng, count):
    queries = []
    for _ in range(count):
        low = float(rng.uniform(0.0, 60.0))
        span = float(rng.uniform(10.0, 30.0))
        queries.append(
            AggregateQuery.sum(
                "value", RectPredicate.from_bounds(key=(low, low + span))
            )
        )
    return queries


def _shifted(rng, count):
    queries = []
    for _ in range(count):
        low = float(rng.uniform(92.0, 98.0))
        queries.append(
            AggregateQuery.sum(
                "value", RectPredicate.from_bounds(key=(low, low + 1.0))
            )
        )
    return queries


def test_drift_and_staleness_degrade_health_while_coverage_holds(deployment):
    table, engine, catalog, obs, auditor = deployment
    rng = np.random.default_rng(5)
    matched = _matched(rng, 24)
    baseline = WorkloadFingerprint.from_boxes(
        [query.predicate.canonical_key() for query in matched],
        {"key": KEY_DOMAIN},
    )
    detector = WorkloadDriftDetector(
        {"live_value": baseline}, quality=obs.quality, threshold=0.35
    )

    # Phase 1: matched traffic — everything healthy, coverage perfect.
    for query in matched:
        engine.execute(query)
    assert auditor.flush()
    low_report = detector.observe(obs.query_log)["live_value"]
    card = catalog.scorecard("live_value")
    assert low_report.score < 0.35
    assert card.coverage_rate() == 1.0
    assert engine.health()["status"] == "healthy"

    # Phase 2: extremum deletions (visible staleness, no warning capture
    # needed) plus drifted traffic.
    values = table.column("value")
    keys = table.column("key")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for index in np.argsort(values)[::-1][:4]:
            engine.delete(
                "live_value",
                {"key": float(keys[index]), "value": float(values[index])},
            )
    for query in _shifted(rng, 48):
        engine.execute(query)
    assert auditor.flush()

    high_report = detector.observe(obs.query_log)["live_value"]
    assert high_report.score > low_report.score
    assert high_report.score >= 0.35
    assert high_report.recommend_rebuild
    assert card.extrema_staleness() > 0.0
    assert card.drift_score == pytest.approx(high_report.score)

    # Coverage on certified paths must survive all of it: the bounds are
    # hard, staleness and drift make them loose, never wrong.
    assert card.bound_violations == 0
    assert card.coverage_rate() == 1.0

    health = engine.health()
    assert health["status"] == HEALTH_DEGRADED
    assert health["synopses"]["live_value"] == HEALTH_DEGRADED
    assert health["violations"] == 0

    # The whole quality surface exports through the strict exposition.
    families = validate_exposition(prometheus_text(obs.metrics))
    for family in (
        "repro_quality_audits_total",
        "repro_quality_bound_violations_total",
        "repro_quality_coverage_rate",
        "repro_quality_error_p95",
        "repro_quality_tightness_ratio",
        "repro_quality_drift_score",
        "repro_quality_staleness",
        "repro_quality_sketch_staleness",
        "repro_quality_extrema_staleness",
        "repro_quality_health",
        "repro_audit_sampled_total",
        "repro_audit_rel_error",
        "repro_audit_seconds",
        "repro_audit_queue_depth",
        "repro_synopsis_staleness",
        "repro_synopsis_extrema_staleness",
    ):
        assert family in families, family

    snapshot = json_snapshot(obs)
    assert snapshot["quality"]["rollup"]["status"] == HEALTH_DEGRADED
    assert (
        snapshot["quality"]["scorecards"]["live_value"]["coverage_rate"] == 1.0
    )


def test_stale_audits_do_not_raise_violations(deployment):
    """Updates racing an in-flight audit degrade to error-only recording."""
    table, engine, catalog, obs, auditor = deployment
    rng = np.random.default_rng(9)
    for query in _matched(rng, 6):
        engine.execute(query)
    # Mutate truth *after* serving but before flushing: epochs recorded at
    # offer time no longer match, so coverage must not be judged against
    # the moved table.
    values = table.column("value")
    keys = table.column("key")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for index in range(3):
            engine.delete(
                "live_value",
                {"key": float(keys[index]), "value": float(values[index])},
            )
    assert auditor.flush()
    card = catalog.scorecard("live_value")
    assert card.audits == 6
    assert card.bound_violations == 0
