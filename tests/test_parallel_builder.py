"""Tests for the parallel multi-core shard builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builder import build_pass
from repro.core.config import PASSConfig
from repro.core.updates import DynamicPASS
from repro.data.table import Table
from repro.distributed.parallel import ParallelBuilder, build_sharded_pass
from repro.distributed.planner import ShardPlanner
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery


@pytest.fixture(scope="module")
def table() -> Table:
    rng = np.random.default_rng(11)
    n = 4000
    return Table(
        {
            "key": rng.uniform(0.0, 10.0, size=n),
            "value": np.abs(rng.normal(20.0, 5.0, size=n)),
        },
        name="parallel_test",
    )


@pytest.fixture(scope="module")
def config() -> PASSConfig:
    return PASSConfig(n_partitions=8, sample_rate=0.02, opt_sample_size=200, seed=5)


QUERIES = [
    AggregateQuery(agg, "value", RectPredicate.from_bounds(key=(low, low + 3.0)))
    for agg in ("SUM", "COUNT", "AVG")
    for low in (0.5, 4.0, 6.5)
]


def _same(a: float, b: float) -> bool:
    """Bit-exact equality with NaN == NaN (per-shard AVG may be undefined)."""
    return a == b or (np.isnan(a) and np.isnan(b))


def test_serial_build_matches_per_shard_manual_build(table, config):
    plan = ShardPlanner(3, "range").plan(table, "key")
    sharded = ParallelBuilder(executor="serial").build(plan, "value", ["key"], config)
    for index, chunk in enumerate(plan.tables):
        manual = build_pass(
            chunk, "value", ["key"], config.with_overrides(seed=config.seed + index)
        )
        shard = sharded.shards[index]
        for query in QUERIES:
            assert _same(shard.query(query).estimate, manual.query(query).estimate)


def test_process_pool_build_is_bit_identical_to_serial(table, config):
    plan = ShardPlanner(3, "range").plan(table, "key")
    serial = ParallelBuilder(executor="serial").build(plan, "value", ["key"], config)
    parallel = ParallelBuilder(max_workers=2, executor="process").build(
        plan, "value", ["key"], config
    )
    for query in QUERIES:
        a, b = serial.query(query), parallel.query(query)
        assert _same(a.estimate, b.estimate)
        assert _same(a.variance, b.variance)


def test_thread_pool_build_matches_serial(table, config):
    plan = ShardPlanner(2, "range").plan(table, "key")
    serial = ParallelBuilder(executor="serial").build(plan, "value", ["key"], config)
    threaded = ParallelBuilder(max_workers=2, executor="thread").build(
        plan, "value", ["key"], config
    )
    query = QUERIES[0]
    assert serial.query(query).estimate == threaded.query(query).estimate


def test_dynamic_build_produces_updatable_shards(table, config):
    plan = ShardPlanner(2, "range").plan(table, "key")
    sharded = ParallelBuilder(executor="serial").build(
        plan, "value", ["key"], config, dynamic=True
    )
    assert sharded.supports_updates
    assert all(isinstance(shard, DynamicPASS) for shard in sharded.shards)
    before = sharded.population_size
    sharded.insert({"key": 5.0, "value": 30.0})
    assert sharded.population_size == before + 1


def test_build_sharded_pass_convenience(table, config):
    sharded = build_sharded_pass(
        table,
        "value",
        "key",
        n_shards=3,
        config=config,
        executor="serial",
    )
    assert sharded.n_shards == 3
    assert sharded.population_size == table.n_rows
    assert sharded.shard_column == "key"


def test_population_and_sample_accounting(table, config):
    plan = ShardPlanner(4, "range").plan(table, "key")
    sharded = ParallelBuilder(executor="serial").build(plan, "value", ["key"], config)
    assert sharded.population_size == table.n_rows
    assert sharded.sample_size == sum(
        s.sample_size for s in map(_unwrap, sharded.shards)
    )
    assert sharded.n_partitions == sum(
        _unwrap(shard).n_partitions for shard in sharded.shards
    )
    assert sharded.storage_bytes() > 0
    assert sharded.build_seconds > 0


def _unwrap(shard):
    return shard.synopsis if isinstance(shard, DynamicPASS) else shard


def test_validation_errors():
    with pytest.raises(ValueError, match="unknown executor"):
        ParallelBuilder(executor="gpu")
    with pytest.raises(ValueError, match="max_workers"):
        ParallelBuilder(max_workers=0)
