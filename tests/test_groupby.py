"""The group-by query model and the single-synopsis grouped executor.

Covers the compilation semantics (bin edges, distinct values, cross
products, base-predicate intersection), the grouped result container, and
the core invariants of :func:`repro.core.batching.grouped_query`: answers
identical to sequential per-query execution, one shared mask pass per group
cell, and frontier-statistics pruning of provably empty cells.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.aggregation.partition import PartitionStats
from repro.core.batching import batch_leaf_masks, frontier_count, grouped_query
from repro.core.builder import build_pass
from repro.core.config import PASSConfig
from repro.core.pass_synopsis import PASSSynopsis
from repro.core.tree import PartitionTree
from repro.data.table import Table
from repro.query.groupby import (
    AggregateSpec,
    GroupByQuery,
    GroupingColumn,
    empty_group_result,
    execute_plan,
)
from repro.query.predicate import Box, Interval, RectPredicate
from repro.query.query import AggregateQuery, ExactEngine
from repro.sampling.stratified import Stratum

ALL_AGGS = ("SUM", "COUNT", "AVG", "MIN", "MAX")


@pytest.fixture(scope="module")
def table() -> Table:
    rng = np.random.default_rng(5)
    n = 8000
    return Table(
        {
            "key": rng.uniform(0.0, 100.0, size=n),
            "cat": rng.integers(0, 4, size=n).astype(float),
            "value": np.abs(rng.normal(20.0, 6.0, size=n)),
        },
        name="groupby_test",
    )


@pytest.fixture(scope="module")
def synopsis(table) -> PASSSynopsis:
    return build_pass(
        table,
        "value",
        ["key", "cat"],
        PASSConfig(n_partitions=32, sample_rate=0.1, opt_sample_size=400, seed=3),
    )


# ----------------------------------------------------------------------
# Grouping columns and compilation
# ----------------------------------------------------------------------
def test_bins_resolve_to_disjoint_covering_intervals():
    cells = GroupingColumn.bins("key", [0.0, 10.0, 20.0]).resolve()
    assert [label for label, _ in cells] == [(0.0, 10.0), (10.0, 20.0)]
    first, second = (interval for _, interval in cells)
    assert first.low == 0.0 and second.high == 20.0
    # Left-closed cells: the shared edge belongs to the right cell only.
    assert not first.contains_value(10.0)
    assert second.contains_value(10.0)
    assert first.high == float(np.nextafter(10.0, -math.inf))


def test_bins_validate_edges():
    with pytest.raises(ValueError, match="at least 2"):
        GroupingColumn.bins("key", [1.0])
    with pytest.raises(ValueError, match="strictly increasing"):
        GroupingColumn.bins("key", [0.0, 0.0, 1.0])
    with pytest.raises(ValueError, match="not both"):
        GroupingColumn("key", edges=(0.0, 1.0), values=(2.0,))


def test_distinct_resolution_from_table(table):
    cells = GroupingColumn.distinct("cat").resolve(table)
    assert [label for label, _ in cells] == [0.0, 1.0, 2.0, 3.0]
    assert all(interval.low == interval.high for _, interval in cells)


def test_distinct_discovery_requires_a_source():
    grouping = GroupingColumn.distinct("cat")
    with pytest.raises(ValueError, match="distinct-value discovery"):
        grouping.resolve(None)


def test_distinct_discovery_rejects_huge_cardinality():
    wide = Table({"cat": np.arange(2000, dtype=float)}, name="wide")
    with pytest.raises(ValueError, match="distinct values"):
        GroupingColumn.distinct("cat").resolve(wide)


def test_compile_cross_product_and_cell_order(table):
    plan = GroupByQuery(
        groupings=(
            GroupingColumn.bins("key", [0.0, 50.0, 100.0]),
            GroupingColumn.distinct("cat"),
        ),
        aggregates=(AggregateSpec("SUM", "value"),),
    ).compile(table)
    assert plan.n_cells == 2 * 4
    # First grouping is the slow axis of the cross product.
    assert plan.cells[0].labels == ((0.0, 50.0), 0.0)
    assert plan.cells[3].labels == ((0.0, 50.0), 3.0)
    assert plan.cells[4].labels == ((50.0, 100.0), 0.0)
    assert plan.n_queries == len(plan.queries()) == 8


def test_compile_intersects_base_predicate(table):
    plan = GroupByQuery(
        groupings=(GroupingColumn.bins("key", [0.0, 50.0, 100.0]),),
        aggregates=(AggregateSpec("COUNT", "value"),),
        predicate=RectPredicate.from_bounds(key=(60.0, 90.0), cat=(1.0, 2.0)),
    ).compile(table)
    # The [0, 50) cell is disjoint from key in [60, 90]: provably empty.
    assert plan.cells[0].predicate is None
    live = plan.live_cells()
    assert [index for index, _ in live] == [1]
    predicate = live[0][1].predicate
    assert predicate.interval("key") == Interval(60.0, 90.0)
    assert predicate.interval("cat") == Interval(1.0, 2.0)


def test_groupby_query_validation():
    agg = AggregateSpec("SUM", "value")
    with pytest.raises(ValueError, match="grouping column"):
        GroupByQuery(groupings=(), aggregates=(agg,))
    with pytest.raises(ValueError, match="aggregate"):
        GroupByQuery(groupings=(GroupingColumn.bins("k", [0, 1]),), aggregates=())
    with pytest.raises(ValueError, match="repeat"):
        GroupByQuery(
            groupings=(
                GroupingColumn.bins("k", [0, 1]),
                GroupingColumn.distinct("k"),
            ),
            aggregates=(agg,),
        )
    with pytest.raises(ValueError, match="repeat"):
        GroupByQuery(
            groupings=(GroupingColumn.bins("k", [0, 1]),), aggregates=(agg, agg)
        )


def test_aggregate_specs_accept_pairs():
    query = GroupByQuery(
        groupings=(GroupingColumn.bins("k", [0, 1]),),
        aggregates=(("sum", "value"), ("count", "value")),
    )
    assert [spec.name for spec in query.aggregates] == ["SUM(value)", "COUNT(value)"]
    assert query.value_columns == ("value",)


# ----------------------------------------------------------------------
# Grouped execution on one synopsis
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def groupby() -> GroupByQuery:
    return GroupByQuery(
        groupings=(
            GroupingColumn.bins("key", [0.0, 25.0, 50.0, 75.0, 100.0]),
            GroupingColumn.distinct("cat", values=(0.0, 1.0, 2.0, 3.0)),
        ),
        aggregates=tuple(AggregateSpec(agg, "value") for agg in ALL_AGGS),
    )


def test_grouped_query_matches_sequential(synopsis, groupby):
    plan = groupby.compile()
    grouped = grouped_query(synopsis, plan)
    position = 0
    flat = plan.queries()
    for index, _ in plan.live_cells():
        for result in grouped.cells[index]:
            sequential = synopsis.query(flat[position])
            position += 1
            # The vectorized executor assembles the same stratified formulas
            # from per-leaf matrix moments, so answers agree up to
            # floating-point summation order.
            for attr in ("estimate", "variance", "hard_lower", "hard_upper"):
                got, want = getattr(result, attr), getattr(sequential, attr)
                if math.isnan(want):
                    assert math.isnan(got), attr
                else:
                    assert got == pytest.approx(want, rel=1e-6, abs=1e-9), attr
            assert result.exact == sequential.exact
            assert result.tuples_processed == sequential.tuples_processed
            assert result.tuples_skipped == sequential.tuples_skipped
    assert position == len(flat)


def test_grouped_estimates_track_exact_groups(table, synopsis, groupby):
    plan = groupby.compile()
    grouped = grouped_query(synopsis, plan)
    exact = ExactEngine(table)
    counts = grouped.estimates()[:, list(ALL_AGGS).index("COUNT")]
    truth = np.array(
        [
            exact.execute(plan.cell_query(cell, AggregateSpec("COUNT", "value")))
            for cell in plan.cells
        ]
    )
    # COUNT estimates are unbiased; at 10% sampling the per-cell error of
    # ~500-tuple groups stays well under 50%.
    assert np.all(np.abs(counts - truth) <= np.maximum(0.5 * truth, 60.0))
    assert float(truth.sum()) == table.n_rows


def test_grouped_result_accessors(synopsis, groupby):
    grouped = grouped_query(synopsis, groupby.compile())
    assert len(grouped) == 16
    assert grouped.group_columns == ("key", "cat")
    assert grouped.aggregate_index("AVG(value)") == 2
    row = grouped.cell(((0.0, 25.0), 1.0))
    assert len(row) == len(ALL_AGGS)
    records = grouped.to_records()
    assert records[0]["key"] == (0.0, 25.0)
    assert set(records[0]) == {"key", "cat"} | {f"{a}(value)" for a in ALL_AGGS}
    with pytest.raises(KeyError):
        grouped.cell(((0.0, 25.0), 9.0))
    with pytest.raises(KeyError):
        grouped.aggregate_index("MEDIAN(value)")


def _hand_synopsis_with_empty_leaf() -> PASSSynopsis:
    """A synopsis whose middle partition is empty (bounded leaf boxes)."""
    boxes = [
        Box({"key": Interval(0.0, 10.0)}),
        Box({"key": Interval(float(np.nextafter(10.0, math.inf)), 20.0)}),
        Box({"key": Interval(float(np.nextafter(20.0, math.inf)), 30.0)}),
    ]
    stats = [
        PartitionStats(sum=10.0, count=4, min=1.0, max=4.0),
        PartitionStats.empty(),
        PartitionStats(sum=40.0, count=4, min=7.0, max=13.0),
    ]
    strata = [
        Stratum(
            box=boxes[0],
            size=4,
            sample_columns={
                "key": np.array([1.0, 4.0, 6.0, 9.0]),
                "value": np.array([1.0, 2.0, 3.0, 4.0]),
            },
        ),
        Stratum(box=boxes[1], size=0, sample_columns={}),
        Stratum(
            box=boxes[2],
            size=4,
            sample_columns={
                "key": np.array([21.0, 24.0, 26.0, 29.0]),
                "value": np.array([7.0, 9.0, 11.0, 13.0]),
            },
        ),
    ]
    tree = PartitionTree.build_from_leaves(boxes, stats)
    return PASSSynopsis(tree=tree, leaf_samples=strata, value_column="value")


def test_grouped_query_prunes_provably_empty_cells():
    synopsis = _hand_synopsis_with_empty_leaf()
    # The middle cell [10.5, 19.5) lies strictly inside the empty partition
    # (10, 20]; its frontier statistics prove it cannot match any tuple.
    plan = GroupByQuery(
        groupings=(GroupingColumn.bins("key", [0.0, 10.5, 19.5, 30.0]),),
        aggregates=(AggregateSpec("COUNT", "value"), AggregateSpec("AVG", "value")),
    ).compile()
    frontier = synopsis.tree.minimal_coverage_frontier(plan.cells[1].predicate)
    assert frontier_count(frontier) == 0
    grouped = grouped_query(synopsis, plan)
    count, avg = grouped.cells[1]
    assert count.exact and count.estimate == 0.0
    assert avg.exact and math.isnan(avg.estimate)
    assert count.tuples_processed == 0
    assert count.tuples_skipped == synopsis.population_size
    # Non-empty neighbours still answer normally.
    assert grouped.cells[0][0].estimate > 0.0
    assert grouped.cells[2][0].estimate > 0.0


def test_empty_group_result_semantics():
    assert empty_group_result("SUM").estimate == 0.0
    assert empty_group_result("COUNT").estimate == 0.0
    for agg in ("AVG", "MIN", "MAX"):
        assert math.isnan(empty_group_result(agg).estimate)
    result = empty_group_result("SUM", population=123)
    assert result.exact and result.tuples_skipped == 123


# ----------------------------------------------------------------------
# Shared-mask batching invariants
# ----------------------------------------------------------------------
def test_batch_leaf_masks_share_arrays_across_identical_predicates(synopsis):
    predicate = RectPredicate.from_bounds(key=(10.0, 60.0))
    queries = [AggregateQuery(agg, "value", predicate) for agg in ("SUM", "COUNT")]
    frontiers = [synopsis.lookup(query) for query in queries]
    masks = batch_leaf_masks(synopsis, queries, frontiers)
    assert masks[0], "expected at least one partially overlapped leaf"
    for leaf_index, mask in masks[0].items():
        assert masks[1][leaf_index] is mask  # shared, not merely equal
        stratum = synopsis.leaf_samples[leaf_index]
        np.testing.assert_array_equal(mask, stratum.match_mask(queries[0]))


def test_execute_plan_rejects_misaligned_executor():
    plan = GroupByQuery(
        groupings=(GroupingColumn.bins("key", [0.0, 1.0]),),
        aggregates=(AggregateSpec("SUM", "value"),),
    ).compile()
    with pytest.raises(ValueError, match="batch executor returned"):
        execute_plan(plan, lambda queries: [])
