"""Tests for the PASS synopsis: query processing, CIs, hard bounds, skipping."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import build_pass
from repro.core.config import PASSConfig
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery, ExactEngine


@pytest.fixture(scope="module")
def skewed_pass():
    """A PASS synopsis over a module-scoped skewed table (built once)."""
    from repro.data.table import Table

    rng = np.random.default_rng(77)
    n = 4000
    key = np.arange(n, dtype=float)
    value = np.concatenate(
        [
            np.full(int(n * 0.8), 5.0),
            np.abs(rng.normal(100.0, 20.0, size=n - int(n * 0.8))),
        ]
    )
    table = Table({"key": key, "value": value}, name="skewed_module")
    config = PASSConfig(n_partitions=16, sample_rate=0.05, partitioner="adp", seed=0)
    synopsis = build_pass(table, "value", ["key"], config)
    return table, synopsis


class TestQueryProcessing:
    def test_aligned_query_is_exact(self, skewed_pass):
        table, synopsis = skewed_pass
        box = synopsis.tree.leaves[2].box
        predicate = RectPredicate({"key": box.interval("key")})
        for agg in ("SUM", "COUNT", "AVG", "MIN", "MAX"):
            query = AggregateQuery(agg, "value", predicate)
            result = synopsis.query(query)
            truth = ExactEngine(table).execute(query)
            assert result.exact
            assert result.estimate == pytest.approx(truth)
            assert result.ci_half_width == 0.0
            assert result.tuples_processed == 0

    def test_partial_queries_are_close_and_covered_by_ci(self, skewed_pass):
        table, synopsis = skewed_pass
        engine = ExactEngine(table)
        rng = np.random.default_rng(5)
        inside_ci = 0
        n_queries = 40
        for _ in range(n_queries):
            low = float(rng.uniform(0, 3000))
            high = float(rng.uniform(low + 200, 4000))
            query = AggregateQuery.sum(
                "value", RectPredicate.from_bounds(key=(low, high))
            )
            result = synopsis.query(query)
            truth = engine.execute(query)
            assert result.relative_error(truth) < 0.5
            assert result.within_hard_bounds(truth)
            if result.exact or result.contains_truth(truth):
                inside_ci += 1
        # 99% nominal coverage; allow slack for the small query count.
        assert inside_ci >= 0.8 * n_queries

    def test_count_and_avg_partial_queries(self, skewed_pass):
        table, synopsis = skewed_pass
        engine = ExactEngine(table)
        predicate = RectPredicate.from_bounds(key=(100.5, 3702.5))
        for agg, tolerance in (("COUNT", 0.1), ("AVG", 0.25)):
            query = AggregateQuery(agg, "value", predicate)
            result = synopsis.query(query)
            truth = engine.execute(query)
            assert result.relative_error(truth) < tolerance
            assert result.within_hard_bounds(truth)

    def test_min_max_partial_queries_respect_bounds(self, skewed_pass):
        table, synopsis = skewed_pass
        engine = ExactEngine(table)
        predicate = RectPredicate.from_bounds(key=(1000.5, 3702.5))
        for agg in ("MIN", "MAX"):
            query = AggregateQuery(agg, "value", predicate)
            result = synopsis.query(query)
            truth = engine.execute(query)
            assert result.within_hard_bounds(truth)

    def test_empty_region_query(self, skewed_pass):
        _, synopsis = skewed_pass
        query = AggregateQuery.sum(
            "value", RectPredicate.from_bounds(key=(-500.0, -1.0))
        )
        result = synopsis.query(query)
        assert result.estimate == pytest.approx(0.0)

    def test_unconstrained_query_is_exact_from_root(self, skewed_pass):
        table, synopsis = skewed_pass
        query = AggregateQuery.sum("value", RectPredicate.everything())
        result = synopsis.query(query)
        assert result.exact
        assert result.estimate == pytest.approx(table.column("value").sum())

    def test_wrong_value_column_rejected(self, skewed_pass):
        _, synopsis = skewed_pass
        with pytest.raises(ValueError):
            synopsis.query(AggregateQuery.sum("key", RectPredicate.everything()))

    def test_skip_rate_increases_for_aligned_queries(self, skewed_pass):
        _, synopsis = skewed_pass
        narrow = AggregateQuery.sum(
            "value", RectPredicate.from_bounds(key=(10.0, 60.0))
        )
        box = synopsis.tree.leaves[0].box
        aligned = AggregateQuery.sum(
            "value", RectPredicate({"key": box.interval("key")})
        )
        assert synopsis.skip_rate(aligned) == pytest.approx(1.0)
        assert 0.0 <= synopsis.skip_rate(narrow) <= 1.0

    def test_custom_lambda_scales_interval(self, skewed_pass):
        _, synopsis = skewed_pass
        query = AggregateQuery.sum(
            "value", RectPredicate.from_bounds(key=(100.5, 3702.5))
        )
        narrow = synopsis.query(query, lam=1.0)
        wide = synopsis.query(query, lam=3.0)
        assert wide.ci_half_width == pytest.approx(3.0 * narrow.ci_half_width)


class TestSynopsisIntrospection:
    def test_sizes_and_storage(self, skewed_pass):
        table, synopsis = skewed_pass
        assert synopsis.population_size == table.n_rows
        assert synopsis.n_partitions == synopsis.tree.n_leaves
        assert synopsis.sample_size == sum(
            stratum.sample_size for stratum in synopsis.leaf_samples
        )
        assert synopsis.storage_bytes() > 0
        assert synopsis.value_column == "value"

    def test_leaf_sample_mismatch_rejected(self, skewed_pass):
        _, synopsis = skewed_pass
        from repro.core.pass_synopsis import PASSSynopsis

        with pytest.raises(ValueError):
            PASSSynopsis(synopsis.tree, synopsis.leaf_samples[:-1], "value")

    def test_replace_leaf_sample_bounds_checked(self, skewed_pass):
        _, synopsis = skewed_pass
        with pytest.raises(IndexError):
            synopsis.replace_leaf_sample(10_000, synopsis.leaf_samples[0])


class TestHardBoundProperty:
    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_hard_bounds_always_contain_truth(self, skewed_pass, data):
        """Property: the deterministic bounds contain the exact answer for any
        range query and any of SUM / COUNT / AVG."""
        table, synopsis = skewed_pass
        engine = ExactEngine(table)
        low = data.draw(st.floats(min_value=0.0, max_value=3500.0))
        width = data.draw(st.floats(min_value=10.0, max_value=3999.0 - low))
        agg = data.draw(st.sampled_from(["SUM", "COUNT", "AVG"]))
        query = AggregateQuery(
            agg, "value", RectPredicate.from_bounds(key=(low, low + width))
        )
        result = synopsis.query(query)
        truth = engine.execute(query)
        if math.isnan(truth):
            return
        assert result.hard_lower - 1e-6 <= truth <= result.hard_upper + 1e-6
