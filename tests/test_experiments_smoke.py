"""Smoke tests: every paper experiment runs end-to-end at a tiny scale.

These do not check absolute numbers (the benchmark harness and EXPERIMENTS.md
do that at a larger scale); they check that each experiment function produces
a well-formed result with the sections and columns its figure/table needs.
"""

from __future__ import annotations

import math


from repro.evaluation.experiments import (
    ablation_opt_sample_size,
    ablation_partitioners,
    ablation_sample_allocation,
    ablation_zero_variance_rule,
    figure3_error_vs_partitions,
    figure4_error_vs_sample_rate,
    figure5_ci_vs_sample_rate,
    figure6_adp_vs_eq_adversarial,
    figure7_adp_vs_eq_real,
    figure8_multidim,
    figure9_workload_shift,
    table1_accuracy,
    table2_end_to_end,
    table3_preprocessing_cost,
)

TINY = dict(n_rows=4_000, n_queries=12)


def finite_cells(result) -> int:
    count = 0
    for section in result.sections:
        for row in section.rows:
            for cell in row[1:]:
                if isinstance(cell, float) and math.isfinite(cell):
                    count += 1
    return count


class TestPaperExperiments:
    def test_table1(self):
        result = table1_accuracy(datasets=("intel",), n_partitions=8, **TINY)
        assert len(result.sections) == 4  # cost + COUNT + SUM + AVG
        assert finite_cells(result) > 0

    def test_figure3(self):
        result = figure3_error_vs_partitions(
            datasets=("intel",), partition_counts=(4, 8), **TINY
        )
        section = result.sections[0]
        assert section.headers == ("Partitions", "PASS", "US", "ST", "AQP++")
        assert len(section.rows) == 2

    def test_figure4_and_5(self):
        result4 = figure4_error_vs_sample_rate(
            datasets=("intel",), sample_rates=(0.2, 0.5), n_partitions=8, **TINY
        )
        result5 = figure5_ci_vs_sample_rate(
            datasets=("intel",), sample_rates=(0.2, 0.5), n_partitions=8, **TINY
        )
        assert len(result4.sections[0].rows) == 2
        assert len(result5.sections[0].rows) == 2

    def test_figure6(self):
        result = figure6_adp_vs_eq_adversarial(partition_counts=(4, 8), **TINY)
        titles = [section.title for section in result.sections]
        assert "Random queries" in titles and "Challenging queries" in titles

    def test_figure7(self):
        result = figure7_adp_vs_eq_real(
            datasets=("intel",), partition_counts=(4, 8), **TINY
        )
        assert len(result.sections) == 1
        assert len(result.sections[0].rows) == 2

    def test_figure8(self):
        result = figure8_multidim(n_leaves=16, max_dimensions=2, **TINY)
        rows = result.sections[0].rows
        assert [row[0] for row in rows] == ["1D", "2D"]
        # Skip rate column present and within [0, 1].
        assert all(0.0 <= row[-1] <= 1.0 for row in rows)

    def test_figure9(self):
        result = figure9_workload_shift(
            n_leaves=16, built_dimensions=2, max_dimensions=3, **TINY
        )
        rows = result.sections[0].rows
        assert [row[0] for row in rows] == ["1D", "2D", "3D"]

    def test_table2(self):
        result = table2_end_to_end(
            n_partitions=8, kd_leaves=16, max_dimensions=2, **TINY
        )
        cost = result.section("Mean cost")
        error = result.section("Median relative error")
        assert len(cost.rows) == 7  # 3 PASS + 2 VerdictDB + 2 DeepDB
        assert len(error.rows) == 7
        # Every system was evaluated on 3 datasets + nyc-2D.
        assert len(error.headers) == 1 + 4

    def test_table3(self):
        result = table3_preprocessing_cost(partition_counts=(4, 8), **TINY)
        rows = result.sections[0].rows
        assert [row[0] for row in rows] == [4, 8]
        assert all(row[1] > 0 for row in rows)  # build cost recorded


class TestAblations:
    def test_partitioners(self):
        result = ablation_partitioners(
            partitioners=("adp", "equal"), n_partitions=8, **TINY
        )
        assert {row[0] for row in result.sections[0].rows} == {"adp", "equal"}

    def test_zero_variance_rule(self):
        result = ablation_zero_variance_rule(n_partitions=8, **TINY)
        rows = result.sections[0].rows
        on_row = next(row for row in rows if "ON" in row[0])
        off_row = next(row for row in rows if "OFF" in row[0])
        # The rule can only reduce the number of samples touched.
        assert on_row[3] <= off_row[3]

    def test_sample_allocation(self):
        result = ablation_sample_allocation(n_partitions=8, **TINY)
        assert {row[0] for row in result.sections[0].rows} == {"proportional", "equal"}

    def test_opt_sample_size(self):
        result = ablation_opt_sample_size(
            opt_sample_sizes=(100, 200), n_partitions=8, **TINY
        )
        assert [row[0] for row in result.sections[0].rows] == [100, 200]
