"""Tests for the serving engine: caching, batching, concurrency, invalidation."""

from __future__ import annotations

import dataclasses
import math
import threading

import numpy as np
import pytest

from repro.core.builder import build_pass
from repro.core.config import PASSConfig
from repro.core.updates import DynamicPASS
from repro.data.table import Table
from repro.query.predicate import Interval, RectPredicate
from repro.query.query import AggregateQuery
from repro.serving.catalog import SynopsisCatalog
from repro.serving.engine import EXACT_FALLBACK, ServingEngine
from repro.serving.locks import ReadWriteLock


def assert_identical(a, b):
    """AQPResult equality treating NaN fields as equal (NaN != NaN otherwise)."""
    for field in dataclasses.fields(a):
        x, y = getattr(a, field.name), getattr(b, field.name)
        if isinstance(x, float) and math.isnan(x):
            assert isinstance(y, float) and math.isnan(y), field.name
        else:
            assert x == y, f"{field.name}: {x!r} != {y!r}"


def make_table(n: int = 5000, seed: int = 7) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        {
            "key": np.arange(n, dtype=float),
            "value": np.abs(rng.normal(40.0, 12.0, size=n)),
        },
        name="served",
    )


def make_workload(n_queries: int, seed: int = 0) -> list[AggregateQuery]:
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(n_queries):
        low, high = sorted(rng.uniform(0.0, 5000.0, size=2))
        predicate = RectPredicate.from_bounds(key=(float(low), float(high)))
        for agg in ("SUM", "COUNT", "AVG", "MIN", "MAX"):
            queries.append(AggregateQuery(agg, "value", predicate))
    return queries


@pytest.fixture(scope="module")
def served_setup():
    table = make_table()
    synopsis = build_pass(
        table,
        "value",
        ["key"],
        PASSConfig(n_partitions=16, partitioner="equal", sample_rate=0.02, seed=0),
    )
    catalog = SynopsisCatalog()
    catalog.register("value_by_key", synopsis, table_name="served")
    catalog.register_table(table, "served")
    return table, synopsis, catalog


class TestExecute:
    def test_matches_direct_synopsis_results(self, served_setup):
        _, synopsis, catalog = served_setup
        engine = ServingEngine(catalog)
        for query in make_workload(20):
            assert_identical(synopsis.query(query), engine.execute(query))

    def test_cache_hit_returns_same_result_and_counts(self, served_setup):
        _, _, catalog = served_setup
        engine = ServingEngine(catalog)
        query = AggregateQuery.sum(
            "value", RectPredicate.from_bounds(key=(100.0, 900.0))
        )
        first = engine.execute(query)
        second = engine.execute(query)
        assert first is second
        stats = engine.stats()["value_by_key"]
        assert stats.cache_hits == 1
        assert stats.cache_misses == 1
        assert stats.hit_rate == 0.5

    def test_cache_keys_are_canonical(self, served_setup):
        _, _, catalog = served_setup
        engine = ServingEngine(catalog)
        engine.execute(
            AggregateQuery.sum("value", RectPredicate.from_bounds(key=(0, 500)))
        )
        spelled_differently = AggregateQuery.sum(
            "value",
            RectPredicate({"key": Interval(0.0, 500.0), "other": Interval.unbounded()}),
        )
        engine.execute(spelled_differently)
        assert engine.stats()["value_by_key"].cache_hits == 1

    def test_exact_fallback_for_unmatched_query(self, served_setup):
        table, _, catalog = served_setup
        engine = ServingEngine(catalog)
        query = AggregateQuery.sum("key", RectPredicate.from_bounds(value=(0.0, 100.0)))
        result = engine.execute(query)
        assert result.exact
        truth = catalog.exact_engine("served").execute(query)
        assert result.estimate == truth
        assert EXACT_FALLBACK in engine.stats()

    def test_raises_without_synopsis_or_fallback(self, served_setup):
        _, synopsis, _ = served_setup
        catalog = SynopsisCatalog()
        catalog.register("only", synopsis)
        engine = ServingEngine(catalog)
        with pytest.raises(LookupError):
            engine.execute(
                AggregateQuery.sum("absent", RectPredicate.from_bounds(key=(0.0, 1.0)))
            )

    def test_lru_eviction_bounds_the_cache(self, served_setup):
        _, _, catalog = served_setup
        engine = ServingEngine(catalog, cache_size=8)
        for query in make_workload(10, seed=3):
            engine.execute(query)
        assert engine.cache_info() == {"size": 8, "capacity": 8}

    def test_cache_can_be_disabled(self, served_setup):
        _, _, catalog = served_setup
        engine = ServingEngine(catalog, cache_size=0)
        query = AggregateQuery.sum("value", RectPredicate.from_bounds(key=(0.0, 100.0)))
        engine.execute(query)
        engine.execute(query)
        stats = engine.stats()["value_by_key"]
        assert stats.cache_hits == 0
        assert stats.cache_misses == 2


class TestExecuteBatch:
    def test_batch_identical_to_direct_and_sequential(self, served_setup):
        _, synopsis, catalog = served_setup
        queries = make_workload(40, seed=5)
        direct = [synopsis.query(query) for query in queries]
        batched = ServingEngine(catalog).execute_batch(queries)
        sequential_engine = ServingEngine(catalog)
        sequential = [sequential_engine.execute(query) for query in queries]
        for d, b, s in zip(direct, batched, sequential):
            assert_identical(d, b)
            assert_identical(d, s)

    def test_duplicates_answered_once(self, served_setup):
        _, _, catalog = served_setup
        engine = ServingEngine(catalog)
        query = AggregateQuery.sum(
            "value", RectPredicate.from_bounds(key=(10.0, 400.0))
        )
        results = engine.execute_batch([query] * 5)
        assert all(result is results[0] for result in results)
        stats = engine.stats()["value_by_key"]
        assert stats.cache_misses == 1
        assert stats.cache_hits == 0

    def test_warm_cache_serves_batch_hits(self, served_setup):
        _, _, catalog = served_setup
        engine = ServingEngine(catalog)
        queries = make_workload(10, seed=9)
        engine.execute_batch(queries)
        engine.execute_batch(queries)
        stats = engine.stats()["value_by_key"]
        assert stats.cache_hits >= len(set(q.cache_key() for q in queries))

    def test_batch_mixes_synopsis_and_fallback(self, served_setup):
        _, _, catalog = served_setup
        engine = ServingEngine(catalog)
        routed = AggregateQuery.sum(
            "value", RectPredicate.from_bounds(key=(0.0, 300.0))
        )
        fallback = AggregateQuery.sum(
            "key", RectPredicate.from_bounds(value=(0.0, 50.0))
        )
        results = engine.execute_batch([routed, fallback])
        assert results[1].exact
        stats = engine.stats()
        assert "value_by_key" in stats and EXACT_FALLBACK in stats

    def test_empty_batch(self, served_setup):
        _, _, catalog = served_setup
        assert ServingEngine(catalog).execute_batch([]) == []


class TestUpdatesAndInvalidation:
    @pytest.fixture
    def dynamic_engine(self):
        table = make_table(n=2000, seed=3)
        dynamic = DynamicPASS(
            table,
            "value",
            ["key"],
            PASSConfig(n_partitions=8, partitioner="equal", sample_rate=0.05, seed=0),
        )
        catalog = SynopsisCatalog()
        catalog.register("dyn", dynamic, table_name="served")
        engine = ServingEngine(catalog)
        return dynamic, engine

    def test_insert_invalidates_overlapping_cached_results(self, dynamic_engine):
        dynamic, engine = dynamic_engine
        leaves = dynamic.synopsis.tree.leaves
        touched_box = leaves[0].box
        untouched_box = leaves[-1].box
        touched = AggregateQuery.sum(
            "value", RectPredicate({"key": touched_box.interval("key")})
        )
        untouched = AggregateQuery.sum(
            "value", RectPredicate({"key": untouched_box.interval("key")})
        )
        before_touched = engine.execute(touched)
        before_untouched = engine.execute(untouched)
        assert engine.cache_info()["size"] == 2

        row_key = float(touched_box.interval("key").high)
        engine.insert("dyn", {"key": row_key, "value": 123.0})

        # The overlapping entry was dropped and recomputes against the new
        # data (the query covers the leaf exactly, so the answer is exact).
        assert engine.cache_info()["size"] == 1
        after_touched = engine.execute(touched)
        assert after_touched.estimate == pytest.approx(before_touched.estimate + 123.0)
        # The untouched entry still serves its cached result object.
        assert engine.execute(untouched) is before_untouched
        assert engine.stats()["dyn"].invalidations == 1

    def test_delete_invalidates_too(self, dynamic_engine):
        dynamic, engine = dynamic_engine
        box = dynamic.synopsis.tree.leaves[2].box
        query = AggregateQuery.count(
            "value", RectPredicate({"key": box.interval("key")})
        )
        before = engine.execute(query)
        row_key = float(box.interval("key").high)
        engine.insert("dyn", {"key": row_key, "value": 9.0})
        engine.delete("dyn", {"key": row_key, "value": 9.0})
        after = engine.execute(query)
        assert after.estimate == before.estimate

    def test_update_on_static_synopsis_rejected(self, served_setup):
        _, _, catalog = served_setup
        engine = ServingEngine(catalog)
        with pytest.raises(TypeError, match="static"):
            engine.insert("value_by_key", {"key": 1.0, "value": 1.0})

    def test_manual_invalidate(self, served_setup):
        _, _, catalog = served_setup
        engine = ServingEngine(catalog)
        for query in make_workload(4, seed=21):
            engine.execute(query)
        assert engine.cache_info()["size"] > 0
        dropped = engine.invalidate()
        assert dropped > 0
        assert engine.cache_info()["size"] == 0


class TestConcurrency:
    def test_concurrent_readers_and_writer(self):
        table = make_table(n=2000, seed=13)
        dynamic = DynamicPASS(
            table,
            "value",
            ["key"],
            PASSConfig(n_partitions=8, partitioner="equal", sample_rate=0.05, seed=0),
        )
        catalog = SynopsisCatalog()
        catalog.register("dyn", dynamic, table_name="served")
        catalog.register_table(table, "served")
        engine = ServingEngine(catalog, cache_size=64)

        errors: list[Exception] = []
        results: list[float] = []
        stop = threading.Event()

        def reader(seed: int) -> None:
            queries = make_workload(10, seed=seed)
            try:
                for _ in range(5):
                    for query in queries:
                        result = engine.execute(query)
                        if query.agg.value in ("SUM", "COUNT"):
                            results.append(result.estimate)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def writer() -> None:
            rng = np.random.default_rng(99)
            try:
                for i in range(60):
                    row = {
                        "key": float(rng.uniform(0.0, 1999.0)),
                        "value": float(rng.uniform(1.0, 80.0)),
                    }
                    engine.insert("dyn", row)
                    if i % 3 == 0:
                        engine.delete("dyn", row)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                stop.set()

        threads = [threading.Thread(target=reader, args=(seed,)) for seed in range(4)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert all(math.isfinite(value) for value in results)
        assert engine.stats()["dyn"].queries > 0

    def test_rwlock_excludes_writers_from_readers(self):
        lock = ReadWriteLock()
        state = {"readers": 0, "writers": 0, "max_readers": 0, "violations": 0}
        guard = threading.Lock()

        def read() -> None:
            for _ in range(200):
                with lock.read_locked():
                    with guard:
                        state["readers"] += 1
                        state["max_readers"] = max(
                            state["max_readers"], state["readers"]
                        )
                        if state["writers"]:
                            state["violations"] += 1
                    with guard:
                        state["readers"] -= 1

        def write() -> None:
            for _ in range(100):
                with lock.write_locked():
                    with guard:
                        state["writers"] += 1
                        if state["readers"] or state["writers"] > 1:
                            state["violations"] += 1
                    with guard:
                        state["writers"] -= 1

        threads = [threading.Thread(target=read) for _ in range(3)]
        threads += [threading.Thread(target=write) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert state["violations"] == 0


class TestTelemetry:
    def test_latency_percentiles_populate_after_misses(self, served_setup):
        _, _, catalog = served_setup
        engine = ServingEngine(catalog)
        for query in make_workload(5, seed=31):
            engine.execute(query)
        stats = engine.stats()["value_by_key"]
        assert stats.queries == 25
        assert stats.p50_latency_ms >= 0.0
        assert stats.p99_latency_ms >= stats.p50_latency_ms
        assert stats.staleness == 0.0


class TestServedModeHarness:
    def test_evaluate_served_workload_matches_direct_metrics(self, served_setup):
        from repro.evaluation.harness import evaluate_served_workload
        from repro.evaluation.metrics import evaluate_workload
        from repro.query.query import ExactEngine

        table, synopsis, catalog = served_setup
        engine = ExactEngine(table)
        queries = make_workload(8, seed=41)
        direct = evaluate_workload(synopsis, queries, engine)
        served = evaluate_served_workload(ServingEngine(catalog), queries, engine)
        assert served.n_queries == direct.n_queries
        assert served.median_relative_error == direct.median_relative_error
        assert served.median_ci_ratio == direct.median_ci_ratio

    def test_batch_mode_produces_same_metrics(self, served_setup):
        from repro.evaluation.harness import evaluate_served_workload
        from repro.query.query import ExactEngine

        table, _, catalog = served_setup
        engine = ExactEngine(table)
        queries = make_workload(8, seed=43)
        sequential = evaluate_served_workload(ServingEngine(catalog), queries, engine)
        batched = evaluate_served_workload(
            ServingEngine(catalog), queries, engine, batch=True
        )
        assert batched.median_relative_error == sequential.median_relative_error
        assert batched.n_queries == sequential.n_queries

    def test_ground_truth_length_mismatch_rejected(self, served_setup):
        from repro.evaluation.harness import evaluate_served_workload
        from repro.query.query import ExactEngine

        table, _, catalog = served_setup
        with pytest.raises(ValueError, match="length"):
            evaluate_served_workload(
                ServingEngine(catalog),
                make_workload(2, seed=1),
                ExactEngine(table),
                ground_truth=[1.0],
            )
