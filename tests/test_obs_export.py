"""Tests for the exporters (repro.obs.export): Prometheus text format,
the strict exposition validator, and the JSON snapshot."""

import json

import pytest

from repro.obs import Observability
from repro.obs.export import (
    ExpositionError,
    json_snapshot,
    json_snapshot_text,
    prometheus_text,
    validate_exposition,
)
from repro.obs.metrics import MetricsRegistry, NullRegistry


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("repro_hits_total", "Cache hits.", {"synopsis": "s1"}).inc(3)
    registry.counter("repro_hits_total", "Cache hits.", {"synopsis": "s2"}).inc(1)
    registry.gauge("repro_inflight", "In-flight requests.").set(2)
    histogram = registry.histogram(
        "repro_latency_seconds", "Query latency.", buckets=(0.1, 1.0)
    )
    histogram.observe(0.05)
    histogram.observe(0.5)
    histogram.observe(5.0)
    return registry


class TestPrometheusText:
    def test_round_trips_through_the_strict_validator(self):
        text = prometheus_text(populated_registry())
        families = validate_exposition(text)
        assert families["repro_hits_total"] == 2
        assert families["repro_inflight"] == 1
        # 2 finite buckets + the +Inf bucket + _sum + _count.
        assert families["repro_latency_seconds"] == 5

    def test_histogram_buckets_are_cumulative(self):
        text = prometheus_text(populated_registry())
        bucket_lines = [
            line for line in text.splitlines() if "repro_latency_seconds_bucket" in line
        ]
        assert [line.rsplit(" ", 1)[1] for line in bucket_lines] == ["1", "2", "3"]
        assert 'le="+Inf"' in bucket_lines[-1]

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_odd_total", "Odd labels.", {"val": 'quo"te\\slash\nline'}
        ).inc()
        text = prometheus_text(registry)
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        families = validate_exposition(text)
        assert families["repro_odd_total"] == 1

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""
        assert prometheus_text(NullRegistry()) == ""


class TestValidator:
    def test_rejects_sample_without_help_type(self):
        with pytest.raises(ExpositionError, match="no preceding HELP/TYPE"):
            validate_exposition("orphan_total 1\n")

    def test_rejects_type_before_help(self):
        with pytest.raises(ExpositionError, match="TYPE before HELP"):
            validate_exposition("# TYPE a_total counter\na_total 1\n")

    def test_rejects_duplicate_family(self):
        text = (
            "# HELP a_total A.\n# TYPE a_total counter\na_total 1\n"
            "# HELP a_total A.\n"
        )
        with pytest.raises(ExpositionError, match="duplicate HELP"):
            validate_exposition(text)

    def test_rejects_duplicate_sample(self):
        text = "# HELP a_total A.\n# TYPE a_total counter\na_total 1\na_total 2\n"
        with pytest.raises(ExpositionError, match="duplicate sample"):
            validate_exposition(text)

    def test_rejects_counter_not_named_total(self):
        text = "# HELP hits H.\n# TYPE hits counter\nhits 1\n"
        with pytest.raises(ExpositionError, match="must be named"):
            validate_exposition(text)

    def test_rejects_negative_counter(self):
        text = "# HELP a_total A.\n# TYPE a_total counter\na_total -1\n"
        with pytest.raises(ExpositionError, match="invalid value"):
            validate_exposition(text)

    def test_rejects_malformed_labels(self):
        text = '# HELP a_total A.\n# TYPE a_total counter\na_total{k=unquoted} 1\n'
        with pytest.raises(ExpositionError, match="malformed labels"):
            validate_exposition(text)

    def test_rejects_unknown_type(self):
        with pytest.raises(ExpositionError, match="unknown metric type"):
            validate_exposition("# HELP a A.\n# TYPE a summary\na 1\n")

    def test_rejects_non_cumulative_histogram(self):
        text = (
            "# HELP lat_seconds L.\n# TYPE lat_seconds histogram\n"
            'lat_seconds_bucket{le="0.1"} 5\n'
            'lat_seconds_bucket{le="1"} 3\n'
            'lat_seconds_bucket{le="+Inf"} 5\n'
            "lat_seconds_sum 1\nlat_seconds_count 5\n"
        )
        with pytest.raises(ExpositionError, match="not cumulative"):
            validate_exposition(text)

    def test_rejects_histogram_missing_inf_bucket(self):
        text = (
            "# HELP lat_seconds L.\n# TYPE lat_seconds histogram\n"
            'lat_seconds_bucket{le="0.1"} 5\n'
            "lat_seconds_sum 1\nlat_seconds_count 5\n"
        )
        with pytest.raises(ExpositionError, match="missing the \\+Inf"):
            validate_exposition(text)

    def test_rejects_inf_bucket_count_mismatch(self):
        text = (
            "# HELP lat_seconds L.\n# TYPE lat_seconds histogram\n"
            'lat_seconds_bucket{le="+Inf"} 4\n'
            "lat_seconds_sum 1\nlat_seconds_count 5\n"
        )
        with pytest.raises(ExpositionError, match="!= _count"):
            validate_exposition(text)

    def test_rejects_declared_family_without_samples(self):
        with pytest.raises(ExpositionError, match="no samples"):
            validate_exposition("# HELP a_total A.\n# TYPE a_total counter\n")

    def test_rejects_unparseable_value(self):
        text = "# HELP a_total A.\n# TYPE a_total counter\na_total pancake\n"
        with pytest.raises(ExpositionError, match="unparseable value"):
            validate_exposition(text)


class TestJsonSnapshot:
    def test_structure_and_serializability(self):
        obs = Observability(trace_sample_rate=1.0)
        obs.metrics.counter("repro_hits_total", "Hits.").inc(2)
        with obs.tracer.span("serve.request", parent=None) as root:
            root.add_stage("cache.probe", 0.001)
        snapshot = json_snapshot(obs, slowest=3, tail=10)
        assert snapshot["metrics"]["repro_hits_total"]
        assert snapshot["slowest_traces"][0]["name"] == "serve.request"
        assert snapshot["slowest_traces"][0]["stages_ms"]["cache.probe"] > 0
        assert snapshot["query_log"] == {
            "total": 0,
            "retained": 0,
            "outcomes": {},
            "tail": [],
        }
        parsed = json.loads(json_snapshot_text(obs))
        assert parsed["slowest_traces"][0]["trace_id"] == root.trace_id

    def test_disabled_observability_snapshots_empty(self):
        snapshot = json_snapshot(Observability.disabled())
        assert snapshot["metrics"] == {}
        assert snapshot["slowest_traces"] == []
        assert snapshot["query_log"]["total"] == 0
