"""Tests for AggregateQuery, the exact engine, and the workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.query.aggregates import AggregateType
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery, ExactEngine
from repro.query.workload import (
    challenging_queries,
    max_variance_window,
    random_range_queries,
    template_queries,
)


class TestAggregateQuery:
    def test_convenience_constructors(self):
        predicate = RectPredicate.from_bounds(key=(0.0, 5.0))
        assert AggregateQuery.sum("value", predicate).agg == AggregateType.SUM
        assert AggregateQuery.count("value", predicate).agg == AggregateType.COUNT
        assert AggregateQuery.avg("value", predicate).agg == AggregateType.AVG

    def test_string_aggregate_is_parsed(self):
        query = AggregateQuery("max", "value", RectPredicate.everything())
        assert query.agg == AggregateType.MAX

    def test_with_aggregate_returns_new_query(self):
        query = AggregateQuery.sum("value", RectPredicate.everything())
        other = query.with_aggregate("count")
        assert other.agg == AggregateType.COUNT
        assert query.agg == AggregateType.SUM

    def test_predicate_columns(self):
        query = AggregateQuery.sum(
            "value", RectPredicate.from_bounds(a=(0, 1), b=(2, 3))
        )
        assert set(query.predicate_columns) == {"a", "b"}


class TestExactEngine:
    def test_results_match_numpy(self, tiny_table, range_query_factory):
        engine = ExactEngine(tiny_table)
        query = range_query_factory("SUM", 2.0, 6.0)
        mask = (tiny_table.column("key") >= 2.0) & (tiny_table.column("key") <= 6.0)
        assert engine.execute(query) == tiny_table.column("value")[mask].sum()
        assert engine.execute(query.with_aggregate("count")) == mask.sum()
        assert engine.execute(query.with_aggregate("avg")) == pytest.approx(
            tiny_table.column("value")[mask].mean()
        )
        assert engine.execute(query.with_aggregate("min")) == 3.0
        assert engine.execute(query.with_aggregate("max")) == 7.0

    def test_unconstrained_query_covers_everything(self, tiny_table):
        engine = ExactEngine(tiny_table)
        query = AggregateQuery.count("value", RectPredicate.everything())
        assert engine.execute(query) == tiny_table.n_rows

    def test_selectivity(self, tiny_table, range_query_factory):
        engine = ExactEngine(tiny_table)
        query = range_query_factory("SUM", 0.0, 4.0)
        assert engine.selectivity(query) == pytest.approx(0.5)

    def test_execute_many(self, tiny_table, range_query_factory):
        engine = ExactEngine(tiny_table)
        queries = [
            range_query_factory("SUM", 0.0, 4.0),
            range_query_factory("SUM", 5.0, 9.0),
        ]
        assert engine.execute_many(queries) == [15.0, 40.0]


class TestWorkloads:
    def test_random_range_queries_overlap_data(self, skewed_table):
        workload = random_range_queries(
            skewed_table, "value", ["key"], n_queries=50, rng=3
        )
        engine = ExactEngine(skewed_table)
        assert len(workload) == 50
        counts = [engine.execute(q.with_aggregate("count")) for q in workload]
        assert min(counts) > 0

    def test_random_range_queries_deterministic(self, skewed_table):
        a = random_range_queries(skewed_table, "value", ["key"], n_queries=5, rng=3)
        b = random_range_queries(skewed_table, "value", ["key"], n_queries=5, rng=3)
        assert a.queries == b.queries

    def test_random_range_queries_validation(self, skewed_table):
        with pytest.raises(ValueError):
            random_range_queries(skewed_table, "value", ["key"], n_queries=0)
        with pytest.raises(ValueError):
            random_range_queries(skewed_table, "value", [], n_queries=5)

    def test_with_aggregate_retargets_all_queries(self, skewed_table):
        workload = random_range_queries(
            skewed_table, "value", ["key"], n_queries=5, rng=1
        )
        counts = workload.with_aggregate("count")
        assert all(q.agg == AggregateType.COUNT for q in counts)

    def test_max_variance_window_finds_tail(self, skewed_table):
        window = max_variance_window(skewed_table, "value", "key", window_fraction=0.1)
        # The high-variance region of the skewed table is the final 20% of keys.
        assert window.low >= 0.75 * skewed_table.n_rows

    def test_challenging_queries_live_in_window(self, skewed_table):
        workload = challenging_queries(
            skewed_table, "value", "key", n_queries=20, rng=4, window_fraction=0.1
        )
        window = max_variance_window(skewed_table, "value", "key", window_fraction=0.1)
        for query in workload:
            interval = query.predicate.interval("key")
            assert interval.low >= window.low - 1e-9
            assert interval.high <= window.high + 1e-9

    def test_template_queries_constrain_first_dimensions(self, multi_table):
        workload = template_queries(
            multi_table, "value", ["a", "b", "c"], n_dimensions=2, n_queries=10, rng=5
        )
        for query in workload:
            assert set(query.predicate_columns) == {"a", "b"}

    def test_template_queries_dimension_validation(self, multi_table):
        with pytest.raises(ValueError):
            template_queries(
                multi_table, "value", ["a", "b"], n_dimensions=3, n_queries=5
            )


class TestGeneratorContracts:
    """Determinism and bounds validity of every workload generator."""

    def _generators(self, table):
        return {
            "random": lambda rng: random_range_queries(
                table, "value", ["key"], n_queries=25, rng=rng
            ),
            "challenging": lambda rng: challenging_queries(
                table, "value", "key", n_queries=25, rng=rng, window_fraction=0.1
            ),
            "template": lambda rng: template_queries(
                table, "value", ["key"], n_dimensions=1, n_queries=25, rng=rng
            ),
        }

    def test_generators_are_deterministic_under_a_fixed_seed(self, skewed_table):
        for name, generate in self._generators(skewed_table).items():
            first, second = generate(17), generate(17)
            assert first.queries == second.queries, name
            # An equivalent explicit Generator draws the same workload.
            from_generator = generate(np.random.default_rng(17))
            assert from_generator.queries == first.queries, name

    def test_different_seeds_draw_different_workloads(self, skewed_table):
        for name, generate in self._generators(skewed_table).items():
            assert generate(17).queries != generate(18).queries, name

    def test_emitted_boxes_are_valid_and_inside_the_data(self, skewed_table):
        low, high = skewed_table.column_bounds("key")
        for name, generate in self._generators(skewed_table).items():
            for query in generate(23):
                for column in query.predicate_columns:
                    interval = query.predicate.interval(column)
                    assert interval.low <= interval.high, name
                    assert np.isfinite(interval.low) and np.isfinite(interval.high)
                    # Endpoints are drawn from attribute values, so every
                    # emitted box stays inside the data's bounding range.
                    assert low <= interval.low and interval.high <= high, name

    def test_multi_column_boxes_are_valid(self, multi_table):
        workload = random_range_queries(
            multi_table, "value", ["a", "b", "c"], n_queries=20, rng=9
        )
        for query in workload:
            assert set(query.predicate_columns) == {"a", "b", "c"}
            for column in ("a", "b", "c"):
                interval = query.predicate.interval(column)
                col_low, col_high = multi_table.column_bounds(column)
                assert col_low <= interval.low <= interval.high <= col_high
