"""Property tests: the SoA execution engine is bit-identical to the object path.

The contract documented in ``docs/ARCHITECTURE.md`` and ``repro.core.soa`` is
not "numerically close" but *bit-identical*: for every classic aggregate the
flat engine must reproduce the object path's `AQPResult` field for field at
the level of IEEE-754 bit patterns — same covered/partial frontier order,
same floating-point summation order, same NaN poisoning, same
``nodes_visited`` count.  These tests compare float bits (``struct.pack``)
rather than values so that ``-0.0 != 0.0`` and differing NaN payloads would
fail, across random trees, predicates, grouped plans, the zero-variance
shortcut, and post-insert/delete staleness states.
"""

from __future__ import annotations

import functools
import math
import struct
import warnings

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st

from repro.core.batching import grouped_query
from repro.core.builder import build_pass
from repro.core.config import PASSConfig
from repro.core.soa import (
    _count_contribution,
    _fast_mean,
    _fast_var,
    _sum_contribution,
)
from repro.core.updates import DynamicPASS, StaleExtremaWarning
from repro.data.table import Table
from repro.query.aggregates import AggregateType
from repro.query.groupby import AggregateSpec, GroupByQuery, GroupingColumn
from repro.query.predicate import Interval, RectPredicate
from repro.query.query import AggregateQuery

N_ROWS = 1500
CLASSIC_AGGS = ("SUM", "COUNT", "AVG", "MIN", "MAX")
RESULT_FLOAT_FIELDS = (
    "estimate",
    "ci_half_width",
    "variance",
    "hard_lower",
    "hard_upper",
)


def _bits(value: float) -> bytes:
    """The IEEE-754 bit pattern of a float — the equality the contract uses."""
    return struct.pack("<d", float(value))


def assert_results_identical(flat, obj, context: str = "") -> None:
    """Every AQPResult field matches bit for bit between the two paths."""
    for field in RESULT_FLOAT_FIELDS:
        left, right = getattr(flat, field), getattr(obj, field)
        assert _bits(left) == _bits(right), (
            f"{context}{field}: soa={left!r} object={right!r}"
        )
    assert flat.tuples_processed == obj.tuples_processed, context
    assert flat.tuples_skipped == obj.tuples_skipped, context
    assert flat.exact == obj.exact, context


@functools.lru_cache(maxsize=None)
def _table(n_columns: int, seed: int) -> Table:
    rng = np.random.default_rng(seed)
    columns = {
        f"c{i}": rng.uniform(0.0, 100.0, size=N_ROWS) for i in range(n_columns)
    }
    columns["value"] = np.abs(rng.normal(50.0, 15.0, size=N_ROWS))
    return Table(columns, name="soa_equivalence")


@functools.lru_cache(maxsize=None)
def _synopsis(n_columns: int, n_partitions: int, seed: int, zero_variance: bool):
    table = _table(n_columns, seed)
    config = PASSConfig(
        n_partitions=n_partitions,
        sample_rate=0.05,
        partitioner="equal" if n_columns == 1 else "kd",
        opt_sample_size=200,
        zero_variance_rule=zero_variance,
        with_sketches=False,
        seed=seed,
    )
    return build_pass(table, "value", [f"c{i}" for i in range(n_columns)], config)


def _predicate(n_columns: int, fractions) -> RectPredicate:
    """A rectangle from per-column (start, width) fractions of [0, 100].

    Widths above 1 spill past the data domain, producing covered-root and
    empty-intersection cases alongside ordinary partial frontiers.
    """
    intervals = {}
    for i in range(n_columns):
        start, width = fractions[i]
        low = 100.0 * start
        intervals[f"c{i}"] = Interval(low, low + 100.0 * width)
    return RectPredicate(intervals)


_fraction_pair = st.tuples(
    st.floats(min_value=-0.2, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.4),
)


class TestSingleQueryBitIdentity:
    @given(
        n_columns=st.integers(min_value=1, max_value=3),
        n_partitions=st.sampled_from([16, 64, 128]),
        seed=st.integers(min_value=0, max_value=3),
        fractions=st.lists(_fraction_pair, min_size=3, max_size=3),
        agg=st.sampled_from(CLASSIC_AGGS),
    )
    def test_random_trees_and_predicates(
        self, n_columns, n_partitions, seed, fractions, agg
    ):
        synopsis = _synopsis(n_columns, n_partitions, seed, False)
        predicate = _predicate(n_columns, fractions)
        query = AggregateQuery(agg, "value", predicate)
        assert_results_identical(
            synopsis.query(query),
            synopsis.query_object(query),
            context=f"{agg} {predicate} ",
        )

    @given(agg=st.sampled_from(CLASSIC_AGGS))
    def test_unconstrained_predicate_is_exact_on_both_paths(self, agg):
        synopsis = _synopsis(1, 64, 0, False)
        query = AggregateQuery(agg, "value", RectPredicate.everything())
        flat, obj = synopsis.query(query), synopsis.query_object(query)
        assert_results_identical(flat, obj)
        assert flat.exact

    @given(
        fractions=st.lists(_fraction_pair, min_size=3, max_size=3),
        agg=st.sampled_from(("SUM", "AVG", "COUNT")),
    )
    def test_zero_variance_rule_replay(self, fractions, agg):
        """The level-order zero-variance replay matches the object descent."""
        synopsis = _synopsis(2, 64, 1, True)
        predicate = _predicate(2, fractions)
        query = AggregateQuery(agg, "value", predicate)
        assert_results_identical(synopsis.query(query), synopsis.query_object(query))


class TestFrontierBitIdentity:
    @given(
        n_columns=st.integers(min_value=1, max_value=3),
        fractions=st.lists(_fraction_pair, min_size=3, max_size=3),
    )
    def test_frontier_order_and_visit_count(self, n_columns, fractions):
        """Covered/partial node order and nodes_visited match the descent."""
        synopsis = _synopsis(n_columns, 64, 2, False)
        predicate = _predicate(n_columns, fractions)
        flat = synopsis.flat.materialize(synopsis.flat.frontier(predicate))
        obj = synopsis.tree.minimal_coverage_frontier(predicate)
        assert [id(node) for node in flat.covered] == [
            id(node) for node in obj.covered
        ]
        assert [id(node) for node in flat.partial] == [
            id(node) for node in obj.partial
        ]
        assert flat.nodes_visited == obj.nodes_visited


class TestGroupedBitIdentity:
    @given(
        n_bins=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=2),
    )
    def test_grouped_plan_matches_object_execution(self, n_bins, seed):
        synopsis = _synopsis(2, 64, seed, False)
        edges = [100.0 * i / n_bins for i in range(n_bins + 1)]
        plan = GroupByQuery(
            groupings=(
                GroupingColumn.bins("c0", edges),
                GroupingColumn.bins("c1", [0.0, 50.0, 100.0]),
            ),
            aggregates=tuple(
                AggregateSpec(agg, "value") for agg in CLASSIC_AGGS
            ),
        ).compile()
        synopsis.execution = "soa"
        flat_result = grouped_query(synopsis, plan)
        synopsis.execution = "object"
        try:
            object_result = grouped_query(synopsis, plan)
        finally:
            synopsis.execution = "soa"
        assert flat_result.labels == object_result.labels
        for label, flat_row, object_row in zip(
            flat_result.labels, flat_result.cells, object_result.cells
        ):
            for spec, flat_cell, object_cell in zip(
                plan.aggregates, flat_row, object_row
            ):
                assert_results_identical(
                    flat_cell, object_cell, context=f"{label} {spec.name} "
                )


class TestDynamicStalenessBitIdentity:
    @given(
        seed=st.integers(min_value=0, max_value=3),
        n_inserts=st.integers(min_value=0, max_value=25),
        n_deletes=st.integers(min_value=0, max_value=10),
        fractions=st.lists(_fraction_pair, min_size=1, max_size=1),
        agg=st.sampled_from(CLASSIC_AGGS),
    )
    def test_post_update_queries_stay_identical(
        self, seed, n_inserts, n_deletes, fractions, agg
    ):
        """Insert/delete-synced flat arrays answer like the mutated objects."""
        table = _table(1, seed)
        config = PASSConfig(
            n_partitions=16,
            sample_rate=0.05,
            partitioner="equal",
            opt_sample_size=200,
            with_sketches=False,
            seed=seed,
        )
        dynamic = DynamicPASS(table, "value", ["c0"], config=config)
        synopsis = dynamic.synopsis
        # Warm the flat engine *before* mutating so the test exercises the
        # incremental sync hooks, not a post-mutation rebuild.
        synopsis.flat
        rng = np.random.default_rng(seed + 100)
        for _ in range(n_inserts):
            dynamic.insert(
                {"c0": float(rng.uniform(0, 100)), "value": float(rng.uniform(0, 90))}
            )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", StaleExtremaWarning)
            for _ in range(n_deletes):
                row = int(rng.integers(0, N_ROWS))
                dynamic.delete(
                    {
                        "c0": float(table.column("c0")[row]),
                        "value": float(table.column("value")[row]),
                    }
                )
        predicate = _predicate(1, fractions)
        query = AggregateQuery(agg, "value", predicate)
        assert_results_identical(
            synopsis.query(query),
            synopsis.query_object(query),
            context=f"after {n_inserts} inserts / {n_deletes} deletes ",
        )


class TestUfuncReplicas:
    """The scalar numpy replicas used by the flat path are bitwise faithful."""

    @given(
        n=st.integers(min_value=1, max_value=4096),
        scale=st.sampled_from([1e-6, 1.0, 1e6]),
        seed=st.integers(min_value=0, max_value=9),
    )
    def test_fast_mean_matches_numpy(self, n, scale, seed):
        values = np.random.default_rng(seed).normal(0.0, scale, size=n)
        assert _bits(_fast_mean(values)) == _bits(float(values.mean()))

    @given(
        n=st.integers(min_value=2, max_value=4096),
        scale=st.sampled_from([1e-6, 1.0, 1e6]),
        seed=st.integers(min_value=0, max_value=9),
    )
    def test_fast_var_matches_numpy(self, n, scale, seed):
        values = np.random.default_rng(seed).normal(0.0, scale, size=n)
        assert _bits(_fast_var(values)) == _bits(float(np.var(values)))

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=60), min_size=3, max_size=8),
        seed=st.integers(min_value=0, max_value=9),
    )
    def test_batched_moments_match_scalar_contributions(self, sizes, seed):
        """`_segment_pairs` over gathered segments == the per-leaf replicas."""
        synopsis = _synopsis(1, 16, 0, False)
        flat = synopsis.flat
        rng = np.random.default_rng(seed)
        n_leaves = len(synopsis.leaf_samples)
        leaves = [
            int(leaf)
            for leaf in rng.choice(n_leaves, size=len(sizes), replace=False)
            if flat.sample_count(int(leaf)) > 0
        ]
        strata_sizes = [int(s) for s in sizes[: len(leaves)]]
        if not leaves:
            return
        low, high = 20.0, 80.0
        constraints = flat._mask_constraints(
            RectPredicate({"c0": Interval(low, high)})
        )
        sum_pairs, count_pairs = flat._batched_partial_moments(
            strata_sizes, leaves, constraints, need_sum=True, need_count=True
        )
        offsets = flat._samples.offsets
        values_column = flat._samples.columns["value"]
        for i, (size, leaf) in enumerate(zip(strata_sizes, leaves)):
            start, stop = int(offsets[leaf]), int(offsets[leaf + 1])
            mask = flat._leaf_mask(constraints, start, stop)
            expect_sum = _sum_contribution(
                values_column[start:stop], mask, size, flat._with_fpc
            )
            expect_count = _count_contribution(mask, size, flat._with_fpc)
            assert _bits(sum_pairs[i][0]) == _bits(expect_sum[0])
            assert _bits(sum_pairs[i][1]) == _bits(expect_sum[1])
            assert _bits(count_pairs[i][0]) == _bits(expect_count[0])
            assert _bits(count_pairs[i][1]) == _bits(expect_count[1])


class TestExecutionSwitch:
    def test_object_execution_never_builds_flat(self):
        table = _table(1, 0)
        config = PASSConfig(
            n_partitions=16, sample_rate=0.05, with_sketches=False, execution="object"
        )
        synopsis = build_pass(table, "value", ["c0"], config)
        query = AggregateQuery("SUM", "value", _predicate(1, [(0.1, 0.5)]))
        synopsis.query(query)
        assert synopsis._flat is None

    def test_invalid_execution_rejected(self):
        with pytest.raises(ValueError, match="execution"):
            PASSConfig(execution="vectorized")

    def test_nan_bits_still_compare_equal(self):
        assert _bits(float("nan")) == _bits(float("nan"))
        assert _bits(-0.0) != _bits(0.0)
        assert math.isnan(float("nan"))
