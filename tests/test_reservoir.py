"""Tests for reservoir sampling (Vitter's Algorithm R)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.reservoir import ReservoirSample


class TestReservoirBasics:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ReservoirSample(0)

    def test_keeps_everything_below_capacity(self):
        reservoir = ReservoirSample(10, rng=0)
        for i in range(5):
            reservoir.offer({"x": float(i)})
        assert len(reservoir) == 5
        assert reservoir.seen == 5

    def test_never_exceeds_capacity(self):
        reservoir = ReservoirSample(8, rng=0)
        for i in range(1_000):
            reservoir.offer({"x": float(i)})
        assert len(reservoir) == 8
        assert reservoir.seen == 1_000

    def test_offer_returns_evicted_row_when_replacing(self):
        reservoir = ReservoirSample(1, rng=0)
        reservoir.offer({"x": 0.0})
        evictions = sum(
            1 for i in range(1, 200) if reservoir.offer({"x": float(i)}) is not None
        )
        # With capacity 1 the expected number of acceptances is H_200 - 1 ~ 4.9;
        # any positive count shows replacement happens and returns the victim.
        assert evictions > 0

    def test_rows_returns_copies(self):
        reservoir = ReservoirSample(2, rng=0)
        reservoir.offer({"x": 1.0})
        rows = reservoir.rows
        rows[0]["x"] = 99.0
        assert reservoir.rows[0]["x"] == 1.0

    def test_column_and_as_columns(self):
        reservoir = ReservoirSample(3, rng=0)
        for i in range(3):
            reservoir.offer({"x": float(i), "y": float(10 + i)})
        assert list(reservoir.column("x")) == [0.0, 1.0, 2.0]
        columns = reservoir.as_columns(["x", "y"])
        assert set(columns) == {"x", "y"}

    def test_discard_removes_matching_row(self):
        reservoir = ReservoirSample(3, rng=0)
        reservoir.offer({"x": 1.0})
        reservoir.offer({"x": 2.0})
        assert reservoir.discard({"x": 1.0})
        assert not reservoir.discard({"x": 42.0})
        assert len(reservoir) == 1

    def test_rebase_seen_validation(self):
        reservoir = ReservoirSample(3, rng=0)
        reservoir.offer({"x": 1.0})
        reservoir.rebase_seen(500)
        assert reservoir.seen == 500
        with pytest.raises(ValueError):
            reservoir.rebase_seen(0)


class TestReservoirUniformity:
    def test_inclusion_probability_is_approximately_uniform(self):
        """Every stream element should be retained with probability ~ capacity/n."""
        capacity, stream_length, trials = 10, 100, 400
        counts = np.zeros(stream_length)
        for trial in range(trials):
            reservoir = ReservoirSample(capacity, rng=trial)
            for i in range(stream_length):
                reservoir.offer({"x": float(i)})
            for row in reservoir.rows:
                counts[int(row["x"])] += 1
        frequencies = counts / trials
        expected = capacity / stream_length
        # Early and late stream elements must be retained at similar rates.
        assert abs(frequencies[:20].mean() - expected) < 0.05
        assert abs(frequencies[-20:].mean() - expected) < 0.05

    @given(
        st.integers(min_value=1, max_value=20), st.integers(min_value=0, max_value=200)
    )
    @settings(max_examples=50)
    def test_size_invariant(self, capacity, n_items):
        reservoir = ReservoirSample(capacity, rng=7)
        for i in range(n_items):
            reservoir.offer({"x": float(i)})
        assert len(reservoir) == min(capacity, n_items)
        assert reservoir.seen == n_items
