"""Tests for the shared sampling estimators (phi transforms, variances)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.aggregates import AggregateType
from repro.sampling.estimators import (
    EstimateWithVariance,
    finite_population_correction,
    ratio_estimate,
    stratum_count_contribution,
    stratum_mean_estimate,
    stratum_sum_contribution,
    uniform_estimate,
)


class TestEstimateWithVariance:
    def test_std_error(self):
        assert EstimateWithVariance(1.0, 4.0).std_error == 2.0
        assert math.isnan(EstimateWithVariance(1.0, float("nan")).std_error)

    def test_scaled(self):
        scaled = EstimateWithVariance(2.0, 3.0).scaled(2.0)
        assert scaled.estimate == 4.0
        assert scaled.variance == 12.0

    def test_addition_of_independent_estimates(self):
        total = EstimateWithVariance(1.0, 2.0) + EstimateWithVariance(3.0, 4.0)
        assert total.estimate == 4.0
        assert total.variance == 6.0


class TestFPC:
    def test_full_sample_has_zero_correction(self):
        assert finite_population_correction(100, 100) == pytest.approx(0.0)

    def test_small_sample_close_to_one(self):
        assert finite_population_correction(10_000, 10) == pytest.approx(1.0, abs=0.01)

    def test_degenerate_population(self):
        assert finite_population_correction(1, 1) == 1.0


class TestUniformEstimate:
    def test_full_sample_recovers_exact_answers(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        mask = np.array([True, True, False, True])
        n = 4
        sum_est = uniform_estimate(AggregateType.SUM, values, mask, n)
        count_est = uniform_estimate(AggregateType.COUNT, values, mask, n)
        avg_est = uniform_estimate(AggregateType.AVG, values, mask, n)
        assert sum_est.estimate == pytest.approx(7.0)
        assert count_est.estimate == pytest.approx(3.0)
        assert avg_est.estimate == pytest.approx(7.0 / 3.0)

    def test_empty_sample(self):
        empty = np.array([])
        result = uniform_estimate(AggregateType.SUM, empty, empty.astype(bool), 100)
        assert result.estimate == 0.0
        assert math.isnan(result.variance)
        avg = uniform_estimate(AggregateType.AVG, empty, empty.astype(bool), 100)
        assert math.isnan(avg.estimate)

    def test_avg_with_no_matches_is_nan(self):
        values = np.array([1.0, 2.0])
        mask = np.array([False, False])
        result = uniform_estimate(AggregateType.AVG, values, mask, 10)
        assert math.isnan(result.estimate)

    def test_min_max_rejected(self):
        values = np.array([1.0])
        mask = np.array([True])
        with pytest.raises(ValueError):
            uniform_estimate(AggregateType.MIN, values, mask, 10)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            uniform_estimate(
                AggregateType.SUM, np.array([1.0, 2.0]), np.array([True]), 10
            )

    def test_sum_estimate_is_unbiased_on_average(self, rng):
        """Monte-Carlo check of unbiasedness of the SUM estimator."""
        population = rng.lognormal(0.0, 1.0, size=2_000)
        predicate = population > np.median(population)
        truth = population[predicate].sum()
        estimates = []
        for _ in range(300):
            idx = rng.choice(population.shape[0], size=200, replace=False)
            est = uniform_estimate(
                AggregateType.SUM, population[idx], predicate[idx], population.shape[0]
            )
            estimates.append(est.estimate)
        assert np.mean(estimates) == pytest.approx(truth, rel=0.05)

    def test_fpc_reduces_variance(self):
        values = np.arange(1.0, 51.0)
        mask = np.ones(50, dtype=bool)
        without = uniform_estimate(AggregateType.SUM, values, mask, 60, with_fpc=False)
        with_fpc = uniform_estimate(AggregateType.SUM, values, mask, 60, with_fpc=True)
        assert with_fpc.variance < without.variance


class TestStratumEstimators:
    def test_sum_contribution_full_sample(self):
        values = np.array([2.0, 4.0, 6.0])
        mask = np.array([True, False, True])
        result = stratum_sum_contribution(values, mask, stratum_size=3)
        assert result.estimate == pytest.approx(8.0)

    def test_count_contribution_scales_with_size(self):
        mask = np.array([True, True, False, False])
        result = stratum_count_contribution(mask, stratum_size=100)
        assert result.estimate == pytest.approx(50.0)
        assert result.variance > 0.0

    def test_empty_stratum_sample(self):
        result = stratum_sum_contribution(np.array([]), np.array([], dtype=bool), 50)
        assert result.estimate == 0.0
        assert math.isnan(result.variance)

    def test_mean_estimate(self):
        values = np.array([10.0, 20.0, 30.0])
        mask = np.array([True, True, False])
        result = stratum_mean_estimate(values, mask)
        assert result.estimate == pytest.approx(15.0)
        no_match = stratum_mean_estimate(values, np.zeros(3, dtype=bool))
        assert math.isnan(no_match.estimate)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e3), min_size=2, max_size=50),
        st.integers(min_value=50, max_value=10_000),
    )
    @settings(max_examples=80)
    def test_variances_are_non_negative(self, values, stratum_size):
        values = np.asarray(values)
        mask = values > np.median(values)
        sum_result = stratum_sum_contribution(values, mask, stratum_size)
        count_result = stratum_count_contribution(mask, stratum_size)
        assert sum_result.variance >= 0.0
        assert count_result.variance >= 0.0


class TestRatioEstimate:
    def test_simple_ratio(self):
        ratio = ratio_estimate(
            EstimateWithVariance(10.0, 1.0), EstimateWithVariance(5.0, 0.0)
        )
        assert ratio.estimate == pytest.approx(2.0)
        assert ratio.variance == pytest.approx(1.0 / 25.0)

    def test_zero_denominator_is_nan(self):
        ratio = ratio_estimate(
            EstimateWithVariance(10.0, 1.0), EstimateWithVariance(0.0, 0.0)
        )
        assert math.isnan(ratio.estimate)

    def test_nan_variance_propagates(self):
        ratio = ratio_estimate(
            EstimateWithVariance(10.0, float("nan")), EstimateWithVariance(5.0, 1.0)
        )
        assert ratio.estimate == pytest.approx(2.0)
        assert math.isnan(ratio.variance)
