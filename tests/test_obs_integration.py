"""End-to-end observability integration across the serving stack.

Covers the PR's acceptance criteria and satellites:

* a single query through :class:`AsyncServingEngine` (full-fidelity
  tracing) produces one ``serve.request`` span tree covering the
  coalesce/schedule/compile/execute stages, whose stage durations sum to
  within the recorded total;
* the query appears in the structured query log with its predicate box and
  cache outcome, and the Prometheus exposition of the same run parses
  cleanly under the strict validator;
* the trace context propagates across the asyncio scheduler boundary —
  engine- and core-level spans created on the executor thread nest under
  the request's root — including for coalesced stampedes;
* :class:`ServingStats` percentiles are computed over the *filled prefix*
  of the latency ring buffer (regression: a partially-filled window must
  not dilute the distribution with its zero initializer);
* every snapshot type exposes the uniform ``as_dict()`` contract;
* the query log materializes raw hot-path payload tuples lazily and
  preserves coalesced traffic weight via ``coalesced_waiters``.
"""

from __future__ import annotations

import asyncio
import math

import numpy as np
import pytest

from repro.core.config import PASSConfig
from repro.core.updates import DynamicPASS
from repro.data.table import Table
from repro.obs import Observability, validate_exposition
from repro.obs.querylog import QueryLog
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery
from repro.result import AQPResult
from repro.serving import AsyncServingEngine, ServingEngine, SynopsisCatalog
from repro.serving.stats import ServingStats

N_ROWS = 4000


def make_engine(obs: Observability) -> ServingEngine:
    rng = np.random.default_rng(5)
    table = Table(
        {
            "key": rng.uniform(0.0, 50.0, size=N_ROWS),
            "value": np.abs(rng.normal(20.0, 5.0, size=N_ROWS)),
        },
        name="obs_table",
    )
    synopsis = DynamicPASS(
        table,
        "value",
        ["key"],
        PASSConfig(n_partitions=8, sample_rate=0.05, opt_sample_size=200, seed=3),
    )
    catalog = SynopsisCatalog()
    catalog.register("obs_value", synopsis, table_name="obs_table")
    catalog.register_table(table)
    return ServingEngine(catalog, vectorized_batches=True, obs=obs)


def run(coro) -> None:
    asyncio.run(coro)


class TestAcceptance:
    """The PR's acceptance path: one query, one complete span tree."""

    def test_single_query_span_tree_and_query_log(self):
        obs = Observability(trace_sample_rate=1.0)
        engine = make_engine(obs)
        predicate = RectPredicate.from_bounds(key=(10.0, 30.0))
        query = AggregateQuery("AVG", "value", predicate)

        async def one_query():
            async with AsyncServingEngine(engine, batch_window=0.001) as tier:
                return await tier.execute(query)

        run(one_query())

        roots = obs.tracer.finished()
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "serve.request"
        assert root.attributes["outcome"] == "executed"

        stages = root.stage_durations_ms()
        # Fixed per-request stages are stamped onto the root; engine-level
        # work appears as child spans under it.
        for stamped in ("cache.probe", "scheduler.submit", "queue.wait"):
            assert stamped in stages, f"stamped stage {stamped!r} missing"
        for span_name in ("serving.execute_batch", "plan.compile", "frontier.descent"):
            assert root.find(span_name) is not None, f"span {span_name!r} missing"
        # Stage durations sum to within the recorded total: the root covers
        # every stage, so their sum can never exceed its duration.
        assert sum(stages.values()) <= root.duration_ms * 1.001

        records = obs.query_log.records()
        assert len(records) == 1
        record = records[0]
        assert record.outcome == "miss"
        assert record.synopsis == "obs_value"
        assert record.agg == "AVG"
        assert record.predicate_box == predicate.canonical_key()
        assert record.trace_id == root.trace_id
        assert record.total_ms > 0.0
        assert math.isfinite(record.error_bound_half_width)

        families = validate_exposition(obs.prometheus_text())
        for family in (
            "repro_serving_cache_misses_total",
            "repro_serving_query_latency_seconds",
            "repro_scheduler_batches_total",
            "repro_catalog_route_total",
        ):
            assert family in families, f"family {family!r} missing"

    def test_cache_hit_path_recorded(self):
        obs = Observability(trace_sample_rate=1.0)
        engine = make_engine(obs)
        query = AggregateQuery(
            "SUM", "value", RectPredicate.from_bounds(key=(0.0, 25.0))
        )

        async def twice():
            async with AsyncServingEngine(engine, batch_window=0.001) as tier:
                await tier.execute(query)
                await tier.execute(query)

        run(twice())
        outcomes = [record.outcome for record in obs.query_log.records()]
        assert outcomes == ["miss", "cache_hit"]
        hit_roots = [
            root
            for root in obs.tracer.finished()
            if root.attributes.get("outcome") == "cache_hit"
        ]
        assert len(hit_roots) == 1
        assert "cache.probe" in hit_roots[0].stage_durations_ms()


class TestTracePropagation:
    """Satellite: the trace context survives the asyncio scheduler boundary."""

    def test_executor_side_spans_nest_under_the_request_root(self):
        # The root span is created in the client coroutine; plan.compile and
        # frontier.descent run on the executor thread, reached through the
        # scheduler's drain task.  Neither context inherits the client's
        # contextvars — nesting only works if the carried span is re-activated
        # on the far side.
        obs = Observability(trace_sample_rate=1.0)
        engine = make_engine(obs)
        query = AggregateQuery(
            "COUNT", "value", RectPredicate.from_bounds(key=(5.0, 45.0))
        )

        async def one_query():
            async with AsyncServingEngine(engine, batch_window=0.001) as tier:
                await tier.execute(query)

        run(one_query())
        (root,) = obs.tracer.finished()
        batch_span = root.find("serving.execute_batch")
        assert batch_span is not None
        assert batch_span.trace_id == root.trace_id
        descent = root.find("frontier.descent")
        assert descent is not None and descent.trace_id == root.trace_id

    def test_coalesced_stampede_propagates_one_leader_trace(self):
        obs = Observability(trace_sample_rate=1.0)
        engine = make_engine(obs)
        hot = AggregateQuery(
            "AVG", "value", RectPredicate.from_bounds(key=(12.0, 38.0))
        )
        n_stampede = 16

        async def stampede():
            async with AsyncServingEngine(engine, batch_window=0.005) as tier:
                results = await asyncio.gather(
                    *(tier.execute(hot) for _ in range(n_stampede))
                )
                assert len({r.estimate for r in results}) == 1

        run(stampede())
        roots = obs.tracer.finished()
        executed = [r for r in roots if r.attributes.get("outcome") == "executed"]
        coalesced = [r for r in roots if r.attributes.get("outcome") == "coalesced"]
        assert len(executed) == 1
        assert len(coalesced) == n_stampede - 1
        leader = executed[0]
        # The executor-side engine work nests under the leader; followers
        # reference the leader's trace and stamp their join wait.
        assert leader.find("serving.execute_batch") is not None
        for follower in coalesced:
            assert follower.attributes["coalesced_with"] == leader.trace_id
            assert "coalesce.join" in follower.stage_durations_ms()

        # The query log summarizes the stampede: one executed record for the
        # leader plus one "coalesced" summary carrying the joiners' count.
        records = obs.query_log.records()
        summaries = [r for r in records if r.outcome == "coalesced"]
        assert len(summaries) == 1
        assert summaries[0].coalesced_waiters == n_stampede - 1
        assert summaries[0].trace_id == leader.trace_id

    def test_head_sampling_defaults_leave_most_requests_untraced(self):
        obs = Observability(trace_sample_rate=0.25)
        engine = make_engine(obs)
        rng = np.random.default_rng(2)
        queries = []
        for _ in range(16):
            low = float(rng.uniform(0.0, 40.0))
            queries.append(
                AggregateQuery(
                    "SUM", "value", RectPredicate.from_bounds(key=(low, low + 3.0))
                )
            )

        async def serial():
            async with AsyncServingEngine(engine, batch_window=0.0) as tier:
                for query in queries:
                    await tier.execute(query)

        run(serial())
        # 1-in-4 deterministic head sampling: 4 of 16 requests got span
        # trees; every request still reached the query log.
        assert len(obs.tracer.finished()) == 4
        assert obs.query_log.total == 16
        untraced = [r for r in obs.query_log.records() if r.trace_id == 0]
        assert len(untraced) == 12


class TestServingStatsRing:
    """Satellite regression: percentiles over the filled prefix only."""

    def test_partial_window_is_not_diluted_by_zero_initializer(self):
        stats = ServingStats(latency_window=1000)
        for _ in range(10):
            stats.record_miss(0.050)
        snapshot = stats.snapshot()
        # With the zero-initialized tail included, p50 would be 0.0 — the
        # 990 untouched slots would swamp the 10 real observations.
        assert snapshot.p50_latency_ms == pytest.approx(50.0)
        assert snapshot.p99_latency_ms == pytest.approx(50.0)

    def test_empty_window_percentiles_are_nan(self):
        snapshot = ServingStats().snapshot()
        assert math.isnan(snapshot.p50_latency_ms)
        assert math.isnan(snapshot.p99_latency_ms)

    def test_batched_misses_fill_the_ring_like_singles(self):
        single = ServingStats(latency_window=16)
        batched = ServingStats(latency_window=16)
        for _ in range(5):
            single.record_miss(0.010)
        batched.record_misses(5, 0.010)
        assert single.snapshot().p95_latency_ms == pytest.approx(
            batched.snapshot().p95_latency_ms
        )
        assert batched.snapshot().cache_misses == 5

    def test_batched_misses_larger_than_the_window(self):
        stats = ServingStats(latency_window=8)
        stats.record_misses(100, 0.020)
        snapshot = stats.snapshot()
        assert snapshot.cache_misses == 100
        assert snapshot.p50_latency_ms == pytest.approx(20.0)
        # The wrap bookkeeping keeps counting past the window.
        stats.record_miss(0.040)
        assert stats.snapshot().p99_latency_ms > 20.0


class TestSnapshotContracts:
    """Satellite: the uniform as_dict() contract across snapshot types."""

    def test_every_snapshot_type_round_trips_through_as_dict(self):
        obs = Observability(trace_sample_rate=1.0)
        engine = make_engine(obs)
        query = AggregateQuery(
            "AVG", "value", RectPredicate.from_bounds(key=(8.0, 22.0))
        )

        async def workload():
            async with AsyncServingEngine(engine, batch_window=0.001) as tier:
                await tier.execute(query)
                await tier.execute(query)
                return tier.stats()

        async_stats = asyncio.run(workload())

        tier_dict = async_stats.as_dict()
        assert tier_dict["scheduler"]["batches"] >= 1
        assert set(tier_dict) == {
            "scheduler",
            "coalesced",
            "invalidated_futures",
            "inflight",
        }

        serving_dict = engine.stats()["obs_value"].as_dict()
        assert serving_dict["cache_hits"] == 1
        assert serving_dict["cache_misses"] == 1
        assert serving_dict["hit_rate"] == pytest.approx(0.5)
        assert all(isinstance(key, str) for key in serving_dict)

    def test_shard_update_stats_as_dict(self):
        from repro.distributed.parallel import ParallelBuilder
        from repro.distributed.planner import ShardPlanner
        from repro.distributed.router import StreamingShardRouter

        rng = np.random.default_rng(9)
        table = Table(
            {
                "key": rng.uniform(0.0, 10.0, size=800),
                "value": rng.uniform(0.0, 5.0, size=800),
            },
            name="sharded",
        )
        config = PASSConfig(
            n_partitions=4, sample_rate=0.1, opt_sample_size=100, seed=1
        )
        plan = ShardPlanner(2, "range").plan(table, "key")
        sharded = ParallelBuilder(executor="serial").build(
            plan, "value", ["key"], config, dynamic=True
        )
        router = StreamingShardRouter(sharded, plan.tables, rebuild_threshold=None)
        router.insert({"key": 3.0, "value": 1.0})
        shard_dicts = [snapshot.as_dict() for snapshot in router.stats()]
        assert len(shard_dicts) == 2
        assert sum(d["inserts"] for d in shard_dicts) == 1
        for d in shard_dicts:
            assert {"inserts", "deletes", "rebuilds", "staleness"} <= set(d)


class TestQueryLogPayloads:
    """The hot path appends raw tuples; reads materialize them lazily."""

    @staticmethod
    def make_payload(outcome: str = "miss", result=None, waiters: int = 0) -> tuple:
        query = AggregateQuery(
            "SUM", "value", RectPredicate.from_bounds(key=(1.0, 2.0))
        )
        return (
            1_000.0,  # timestamp
            "obs_table",
            "obs_value",
            query,
            outcome,
            4.2,  # total_ms
            {"frontier.descent": 3.0},
            result,
            0.01,  # staleness
            7,  # trace_id
            waiters,
        )

    def test_raw_payload_materializes_derived_fields(self):
        log = QueryLog(capacity=8)
        result = AQPResult(
            estimate=10.0,
            ci_half_width=0.5,
            hard_lower=8.0,
            hard_upper=12.0,
            exact=False,
        )
        log.append_raw(self.make_payload(result=result))
        (record,) = log.records()
        assert record.agg == "SUM"
        assert record.cache_key
        assert record.predicate_box == (("key", 1.0, 2.0),)
        assert record.error_bound_half_width == 0.5
        assert record.hard_bound_width == pytest.approx(4.0)
        assert record.exact is False
        assert record.trace_id == 7
        assert record.stages_ms["frontier.descent"] == 3.0

    def test_rejection_payload_carries_nan_bounds(self):
        log = QueryLog(capacity=8)
        log.append_raw(self.make_payload(outcome="rejected", result=None))
        (record,) = log.records()
        assert math.isnan(record.error_bound_half_width)
        assert math.isinf(record.hard_bound_width)
        assert record.exact is False

    def test_invalid_outcome_rejected_eagerly(self):
        log = QueryLog(capacity=8)
        with pytest.raises(ValueError, match="unknown outcome"):
            log.append_raw(self.make_payload(outcome="pancake"))
        with pytest.raises(ValueError, match="unknown outcome"):
            log.extend_raw([self.make_payload(outcome="pancake")])
        assert log.total == 0

    def test_boxes_and_outcome_counts_read_raw_payloads(self):
        log = QueryLog(capacity=8)
        log.extend_raw(
            [self.make_payload(), self.make_payload(outcome="cache_hit")]
        )
        assert log.boxes() == [(("key", 1.0, 2.0),), (("key", 1.0, 2.0),)]
        assert log.outcome_counts() == {"miss": 1, "cache_hit": 1}

    def test_eviction_keeps_total_counting(self):
        log = QueryLog(capacity=2)
        for _ in range(5):
            log.append_raw(self.make_payload())
        assert len(log) == 2
        assert log.total == 5
        assert len(log.tail(10)) == 2

    def test_coalesced_waiters_preserved_through_materialization(self):
        log = QueryLog(capacity=8)
        log.append_raw(self.make_payload(outcome="coalesced", waiters=15))
        (record,) = log.records()
        assert record.coalesced_waiters == 15
        assert record.as_dict()["coalesced_waiters"] == 15
