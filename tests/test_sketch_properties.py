"""Property-based tests for the sketch laws and the sharded metamorphic bound.

Three families of properties, all driven by hypothesis (deterministic in CI
under the ``ci`` profile registered in ``conftest.py``):

* **Sketch laws** — merge commutativity (exact), merge associativity (bit
  exact for the KMV distinct sketch; within the certified rank-error bound
  for the quantile sketch), and ``to_arrays`` / ``from_arrays`` round-trip
  identity.
* **Certified error bounds under adversarial inputs** — whatever value
  multiset hypothesis constructs (sorted runs, constant blocks, duplicate
  floods, mixed magnitudes), the true rank of every quantile estimate stays
  within the sketch's self-reported ``rank_error_bound()``, and KMV stays
  *exact* below its capacity.
* **Sharding is metamorphic** (the acceptance property) — on a 100k-row
  workload, for random shard counts and random box predicates, the sharded
  scatter-gather QUANTILE / COUNT_DISTINCT answers and the single-synopsis
  answers must both contain the exact answer within their certified hard
  bounds, and the two certified intervals must overlap — sharding cannot
  move an estimate beyond the documented error.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

pytest.importorskip("hypothesis")

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.builder import build_pass
from repro.core.config import PASSConfig
from repro.data.table import Table
from repro.distributed.parallel import build_sharded_pass
from repro.query.predicate import Interval, RectPredicate
from repro.query.query import AggregateQuery, ExactEngine
from repro.sketches import DistinctSketch, QuantileSketch

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

_FINITE = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


@st.composite
def value_arrays(draw, min_size: int = 1, max_size: int = 400) -> np.ndarray:
    """Adversarially shaped float arrays: base values, duplication, ordering."""
    base = draw(st.lists(_FINITE, min_size=min_size, max_size=max_size))
    values = np.asarray(base, dtype=float)
    repeat = draw(st.integers(min_value=1, max_value=4))
    if repeat > 1:
        values = np.tile(values, repeat)
    shape = draw(st.sampled_from(["as-is", "sorted", "reversed", "constant"]))
    if shape == "sorted":
        values = np.sort(values)
    elif shape == "reversed":
        values = np.sort(values)[::-1]
    elif shape == "constant":
        values = np.full(values.size, values[0])
    return values


_QS = (0.0, 0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0)


def _assert_rank_bound(sketch: QuantileSketch, data: np.ndarray) -> None:
    """Every quantile estimate's true rank is within the certified bound."""
    ordered = np.sort(data)
    n = ordered.size
    bound = sketch.rank_error_bound()
    assert sketch.n == n
    for q in _QS:
        estimate = sketch.quantile(q)
        target = max(1, min(math.ceil(q * n), n))
        lo = np.searchsorted(ordered, estimate, side="left") + 1
        hi = np.searchsorted(ordered, estimate, side="right")
        assert lo <= target + bound, (q, estimate, lo, target, bound)
        assert hi >= target - bound, (q, estimate, hi, target, bound)


# ---------------------------------------------------------------------------
# Quantile sketch laws
# ---------------------------------------------------------------------------


class TestQuantileSketchLaws:
    @given(a=value_arrays(), b=value_arrays(), k=st.sampled_from([8, 16, 64]))
    def test_merge_commutativity_is_exact(self, a, b, k):
        left, right = QuantileSketch(k), QuantileSketch(k)
        left.update_array(a)
        right.update_array(b)
        ab, ba = left.merge(right), right.merge(left)
        assert ab.n == ba.n
        assert ab.rank_error_bound() == ba.rank_error_bound()
        for q in _QS:
            assert ab.quantile(q) == ba.quantile(q)

    @given(
        a=value_arrays(),
        b=value_arrays(),
        c=value_arrays(),
        k=st.sampled_from([8, 16, 64]),
    )
    def test_merge_associativity_within_certified_bound(self, a, b, c, k):
        sketches = []
        for part in (a, b, c):
            sketch = QuantileSketch(k)
            sketch.update_array(part)
            sketches.append(sketch)
        grouped_left = sketches[0].merge(sketches[1]).merge(sketches[2])
        grouped_right = sketches[0].merge(sketches[1].merge(sketches[2]))
        combined = np.concatenate([a, b, c])
        # Both groupings must answer within their own certified bound of the
        # true combined multiset — the meaningful associativity for a lossy
        # summary (bit equality is not promised; the bound is).
        _assert_rank_bound(grouped_left, combined)
        _assert_rank_bound(grouped_right, combined)
        assert grouped_left.n == grouped_right.n == combined.size
        assert grouped_left.min == grouped_right.min == combined.min()
        assert grouped_left.max == grouped_right.max == combined.max()

    @given(data=value_arrays(max_size=1000), k=st.sampled_from([8, 16, 64]))
    def test_rank_error_bound_under_adversarial_inputs(self, data, k):
        sketch = QuantileSketch(k)
        sketch.update_array(data)
        _assert_rank_bound(sketch, data)

    @given(data=value_arrays(), k=st.sampled_from([8, 32]))
    def test_round_trip_identity(self, data, k):
        sketch = QuantileSketch(k)
        sketch.update_array(data)
        loaded = QuantileSketch.from_arrays(sketch.to_arrays())
        assert loaded.n == sketch.n
        assert loaded.rank_error_bound() == sketch.rank_error_bound()
        assert loaded.min == sketch.min and loaded.max == sketch.max
        for q in _QS:
            assert loaded.quantile(q) == sketch.quantile(q)

    @given(
        data=value_arrays(),
        weight=st.integers(min_value=1, max_value=10_000),
        k=st.sampled_from([8, 32]),
    )
    def test_weighted_update_conserves_weight(self, data, weight, k):
        sketch = QuantileSketch(k)
        sketch.update_weighted(data, weight)
        assert sketch.n == weight
        assert sketch.min >= np.min(data) - 0.0  # inserted values come from data
        assert sketch.max <= np.max(data)


# ---------------------------------------------------------------------------
# Distinct sketch laws
# ---------------------------------------------------------------------------


class TestDistinctSketchLaws:
    @given(
        a=value_arrays(),
        b=value_arrays(),
        c=value_arrays(),
        k=st.sampled_from([16, 64]),
    )
    def test_merge_associativity_and_commutativity_bit_exact(self, a, b, c, k):
        sketches = []
        for part in (a, b, c):
            sketch = DistinctSketch(k)
            sketch.update_array(part)
            sketches.append(sketch)
        orders = [
            sketches[0].merge(sketches[1]).merge(sketches[2]),
            sketches[0].merge(sketches[1].merge(sketches[2])),
            sketches[2].merge(sketches[0]).merge(sketches[1]),
            sketches[1].merge(sketches[2].merge(sketches[0])),
        ]
        reference = orders[0]
        for other in orders[1:]:
            assert other.estimate() == reference.estimate()
            assert other.is_exact == reference.is_exact
            assert np.array_equal(
                other.to_arrays()["hashes"], reference.to_arrays()["hashes"]
            )

    @given(data=value_arrays(max_size=200))
    def test_exact_below_capacity_on_adversarial_inputs(self, data):
        truth = float(np.unique(data).shape[0])
        assume(truth <= 256)
        sketch = DistinctSketch(k=256)
        sketch.update_array(data)
        assert sketch.is_exact
        assert sketch.estimate() == truth
        assert sketch.error_fraction() == 0.0

    @given(data=value_arrays(), k=st.sampled_from([16, 64]))
    def test_round_trip_identity(self, data, k):
        sketch = DistinctSketch(k)
        sketch.update_array(data)
        loaded = DistinctSketch.from_arrays(sketch.to_arrays())
        assert loaded.estimate() == sketch.estimate()
        assert loaded.is_exact == sketch.is_exact
        assert np.array_equal(
            loaded.to_arrays()["hashes"], sketch.to_arrays()["hashes"]
        )


# ---------------------------------------------------------------------------
# Sharding is metamorphic: scatter-gather == single synopsis within bound
# ---------------------------------------------------------------------------

_N_ROWS = 100_000
_KEY_HIGH = 1000.0
_SHARD_COUNTS = (2, 3, 5)


@pytest.fixture(scope="module")
def sketch_workload():
    """A 100k-row workload: one synopsis plus sharded variants per count.

    The value column is quantized to ~2.5k distinct values so the distinct
    sketches stay unsaturated (their envelopes are then exact and the
    containment assertions deterministic); the quantile assertions rely only
    on the certified rank bounds, which hold for any data.
    """
    rng = np.random.default_rng(20260730)
    key = rng.uniform(0.0, _KEY_HIGH, size=_N_ROWS)
    value = np.round(np.abs(rng.normal(50.0, 15.0, size=_N_ROWS) + 0.02 * key), 1)
    table = Table({"key": key, "value": value}, name="sketch_workload")
    config = PASSConfig(
        n_partitions=32,
        sample_rate=0.01,
        partitioner="equal",
        sketch_quantile_k=200,
        sketch_distinct_k=8192,
    )
    single = build_pass(table, "value", ["key"], config)
    sharded = {
        count: build_sharded_pass(
            table,
            "value",
            "key",
            n_shards=count,
            config=config,
            executor="serial",
        )
        for count in _SHARD_COUNTS
    }
    return {
        "table": table,
        "engine": ExactEngine(table),
        "single": single,
        "sharded": sharded,
    }


@st.composite
def key_boxes(draw):
    """Random non-degenerate [low, high] boxes over the key domain."""
    low = draw(st.floats(min_value=0.0, max_value=_KEY_HIGH - 1.0))
    width = draw(st.floats(min_value=5.0, max_value=_KEY_HIGH))
    return low, min(low + width, _KEY_HIGH)


class TestShardingIsMetamorphic:
    @settings(max_examples=25)
    @given(
        box=key_boxes(),
        q=st.sampled_from([0.5, 0.95, 0.99]),
        n_shards=st.sampled_from(_SHARD_COUNTS),
    )
    def test_sharded_quantile_within_certified_bounds(
        self, sketch_workload, box, q, n_shards
    ):
        low, high = box
        query = AggregateQuery(
            "QUANTILE",
            "value",
            RectPredicate({"key": Interval(low, high)}),
            quantile=q,
        )
        engine = sketch_workload["engine"]
        matching = np.sort(
            sketch_workload["table"].column("value")[engine.predicate_mask(query)]
        )
        assume(matching.size > 0)
        # The sketch's rank-definition ground truth (value at rank ceil(q*m)).
        target = max(1, min(math.ceil(q * matching.size), matching.size))
        truth = float(matching[target - 1])

        single = sketch_workload["single"].query(query)
        merged = sketch_workload["sharded"][n_shards].query(query)
        # Certified bounds must contain the truth on both paths ...
        assert single.hard_lower <= truth <= single.hard_upper
        assert merged.hard_lower <= truth <= merged.hard_upper
        # ... so sharding cannot move the answer beyond the documented
        # epsilon: the two certified intervals must overlap, and each
        # estimate must lie inside the other path's interval envelope
        # stretched by nothing at all.
        assert max(single.hard_lower, merged.hard_lower) <= min(
            single.hard_upper, merged.hard_upper
        )

    @settings(max_examples=25)
    @given(box=key_boxes(), n_shards=st.sampled_from(_SHARD_COUNTS))
    def test_sharded_count_distinct_within_certified_bounds(
        self, sketch_workload, box, n_shards
    ):
        low, high = box
        query = AggregateQuery.count_distinct(
            "value", RectPredicate({"key": Interval(low, high)})
        )
        truth = sketch_workload["engine"].execute(query)
        single = sketch_workload["single"].query(query)
        merged = sketch_workload["sharded"][n_shards].query(query)
        assert single.hard_lower <= truth <= single.hard_upper
        assert merged.hard_lower <= truth <= merged.hard_upper
        assert max(single.hard_lower, merged.hard_lower) <= min(
            single.hard_upper, merged.hard_upper
        )

    @settings(max_examples=10)
    @given(
        q=st.sampled_from([0.5, 0.95]), n_shards=st.sampled_from(_SHARD_COUNTS)
    )
    def test_unfiltered_quantile_matches_across_paths(
        self, sketch_workload, q, n_shards
    ):
        """With no predicate there is no boundary: both paths are pure sketch
        merges of the same leaf sketches and must agree within the summed
        compaction error alone."""
        query = AggregateQuery(
            "QUANTILE", "value", RectPredicate.everything(), quantile=q
        )
        matching = np.sort(sketch_workload["table"].column("value"))
        target = max(1, min(math.ceil(q * matching.size), matching.size))
        truth = float(matching[target - 1])
        single = sketch_workload["single"].query(query)
        merged = sketch_workload["sharded"][n_shards].query(query)
        for result in (single, merged):
            assert result.tuples_processed == 0  # no partial leaves touched
            assert result.hard_lower <= truth <= result.hard_upper
        spread = abs(single.estimate - merged.estimate)
        envelope = (single.hard_upper - single.hard_lower) + (
            merged.hard_upper - merged.hard_lower
        )
        assert spread <= envelope
