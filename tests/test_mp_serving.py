"""Tests for multi-process serving over shared-memory synopses.

The acceptance bar is bit-identity: every query answered by the worker pool
(and through its HTTP front end) must return exactly the result the
in-process :class:`~repro.serving.engine.ServingEngine` produces — including
across an epoch flip mid-stream, where workers re-attach to a freshly
published generation without ever serving a torn synopsis.

The shutdown-leak tests double as the CI leak check's unit-level mirror: a
closed pool leaves no live worker processes and a closed publisher leaves no
named shared-memory segments behind.
"""

from __future__ import annotations

import dataclasses
import glob
import json
import math
import multiprocessing
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.builder import build_pass
from repro.core.config import PASSConfig
from repro.core.soa import FlatSynopsis
from repro.data.table import Table
from repro.distributed.parallel import ParallelBuilder
from repro.distributed.planner import ShardPlanner
from repro.distributed.router import StreamingShardRouter
from repro.obs import Observability
from repro.query.predicate import Interval, RectPredicate
from repro.query.query import AggregateQuery
from repro.result import AQPResult
from repro.serving import (
    MPHTTPServer,
    MPServingPool,
    ServingEngine,
    SynopsisCatalog,
    SynopsisPublisher,
)
from repro.serving.server import (
    query_from_payload,
    query_to_payload,
    result_from_payload,
    result_to_payload,
)
from repro.serving.shm import EpochRegister, attach_flat_synopsis

AGGS = ("SUM", "COUNT", "AVG", "MIN", "MAX")


def assert_identical(a, b):
    """AQPResult equality treating NaN fields as equal (NaN != NaN otherwise)."""
    for field in dataclasses.fields(a):
        x, y = getattr(a, field.name), getattr(b, field.name)
        if isinstance(x, float) and math.isnan(x):
            assert isinstance(y, float) and math.isnan(y), field.name
        else:
            assert x == y, f"{field.name}: {x!r} != {y!r}"


def make_table(seed: int, n: int = 4000) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        {
            "key": rng.uniform(0.0, 50.0, size=n),
            "value": np.abs(rng.lognormal(1.2, 0.6, size=n)),
        },
        name="mp_test",
    )


def build_synopsis(seed: int):
    return build_pass(
        make_table(seed),
        "value",
        ["key"],
        PASSConfig(n_partitions=16, sample_rate=0.01, opt_sample_size=400, seed=0),
    )


def seeded_queries(seed: int, n: int) -> list[AggregateQuery]:
    rng = np.random.default_rng(seed)
    queries = []
    for index in range(n):
        low, high = sorted(rng.uniform(0.0, 50.0, size=2).tolist())
        queries.append(
            AggregateQuery(
                AGGS[index % len(AGGS)],
                "value",
                RectPredicate({"key": Interval(low, high)}),
            )
        )
    return queries


@pytest.fixture(scope="module")
def synopses():
    return build_synopsis(seed=1), build_synopsis(seed=2)


def make_engine(synopsis) -> ServingEngine:
    catalog = SynopsisCatalog()
    catalog.register("mp_main", synopsis, table_name="mp_test")
    return ServingEngine(catalog)


class TestSegmentRoundTrip:
    def test_attach_is_zero_copy_and_bit_identical(self, synopses):
        synopsis, _ = synopses
        publisher = SynopsisPublisher()
        try:
            publisher.publish("mp_main", synopsis, table_name="mp_test")
            register = EpochRegister.attach(publisher.register_name)
            _, manifest = register.read()
            flat, attached = attach_flat_synopsis(
                manifest["entries"][0]["segment"]
            )
            assert isinstance(flat, FlatSynopsis)
            # Views point into the shared mapping and are read-only.
            for view in attached.arrays.values():
                assert not view.flags.writeable
                assert not view.flags.owndata
            for query in seeded_queries(seed=3, n=50):
                assert_identical(flat.query(query), synopsis.flat.query(query))
            attached.close()
            register.close()
        finally:
            publisher.close()

    def test_epoch_register_flips_are_atomic(self, synopses):
        synopsis, other = synopses
        publisher = SynopsisPublisher()
        try:
            first = publisher.publish("mp_main", synopsis, table_name="mp_test")
            register = EpochRegister.attach(publisher.register_name)
            epoch, manifest = register.read()
            assert epoch == first
            second = publisher.publish("mp_main", other, table_name="mp_test")
            assert second == first + 2  # seqlock epochs stay even
            epoch, manifest = register.read()
            assert epoch == second
            assert len(manifest["entries"]) == 1
            register.close()
        finally:
            publisher.close()

    def test_old_generation_stays_mapped_until_reader_closes(self, synopses):
        synopsis, other = synopses
        publisher = SynopsisPublisher()
        try:
            publisher.publish("mp_main", synopsis, table_name="mp_test")
            register = EpochRegister.attach(publisher.register_name)
            _, manifest = register.read()
            flat, attached = attach_flat_synopsis(
                manifest["entries"][0]["segment"]
            )
            publisher.publish("mp_main", other, table_name="mp_test")
            # The old segment's name is unlinked, but this reader's mapping
            # keeps the memory alive: answers stay bit-identical to the old
            # generation, never torn.
            for query in seeded_queries(seed=4, n=20):
                assert_identical(flat.query(query), synopsis.flat.query(query))
            attached.close()
            register.close()
        finally:
            publisher.close()

    def test_publish_catalog_skips_sharded_entries(self, synopses):
        synopsis, _ = synopses
        table = make_table(seed=9, n=1200)
        plan = ShardPlanner(2, "range").plan(table, "key")
        sharded = ParallelBuilder(executor="serial").build(
            plan,
            "value",
            ["key"],
            PASSConfig(n_partitions=4, sample_rate=0.05, opt_sample_size=200, seed=0),
        )
        catalog = SynopsisCatalog()
        catalog.register("single", synopsis, table_name="mp_test")
        catalog.register("sharded", sharded, table_name="mp_test")
        publisher = SynopsisPublisher()
        try:
            epoch, skipped = publisher.publish_catalog(catalog)
            assert skipped == ["sharded"]
            register = EpochRegister.attach(publisher.register_name)
            _, manifest = register.read()
            assert [e["name"] for e in manifest["entries"]] == ["single"]
            register.close()
        finally:
            publisher.close()


class TestMPServingPool:
    def test_batch_results_bit_identical_to_in_process_engine(self, synopses):
        synopsis, _ = synopses
        engine = make_engine(synopsis)
        queries = seeded_queries(seed=5, n=60)
        with SynopsisPublisher() as publisher:
            publisher.publish("mp_main", synopsis, table_name="mp_test")
            with MPServingPool(publisher.register_name, n_workers=2) as pool:
                results = pool.execute_batch(queries, table="mp_test")
                for result, query in zip(results, queries):
                    assert_identical(result, engine.execute(query, "mp_test"))

    def test_epoch_flip_mid_stream_never_serves_a_torn_synopsis(self, synopses):
        """Property-style: random interleave of batches and epoch flips.

        Every batch must be bit-identical to the generation live at dispatch
        time — the old one before the flip, the new one after — across a
        seeded schedule of publishes.
        """
        synopsis, other = synopses
        engines = {0: make_engine(synopsis), 1: make_engine(other)}
        generations = {0: synopsis, 1: other}
        rng = np.random.default_rng(12)
        with SynopsisPublisher() as publisher:
            publisher.publish("mp_main", synopsis, table_name="mp_test")
            live = 0
            with MPServingPool(publisher.register_name, n_workers=2) as pool:
                for round_index in range(6):
                    if round_index and rng.random() < 0.5:
                        live = 1 - live
                        publisher.publish(
                            "mp_main", generations[live], table_name="mp_test"
                        )
                    queries = seeded_queries(
                        seed=100 + round_index, n=int(rng.integers(5, 25))
                    )
                    results = pool.execute_batch(queries, table="mp_test")
                    for result, query in zip(results, queries):
                        assert_identical(
                            result, engines[live].execute(query, "mp_test")
                        )

    def test_unanswerable_queries_raise_lookup_error(self, synopses):
        synopsis, _ = synopses
        with SynopsisPublisher() as publisher:
            publisher.publish("mp_main", synopsis, table_name="mp_test")
            with MPServingPool(publisher.register_name, n_workers=1) as pool:
                unknown = AggregateQuery(
                    "SUM", "other_column", RectPredicate.everything()
                )
                with pytest.raises(LookupError):
                    pool.execute(unknown, table="mp_test")
                sketch = AggregateQuery(
                    "QUANTILE", "value", RectPredicate.everything(), quantile=0.5
                )
                with pytest.raises(LookupError):
                    pool.execute(sketch, table="mp_test")

    def test_pool_merges_worker_metrics_into_parent_registry(self, synopses):
        synopsis, _ = synopses
        obs = Observability()
        with SynopsisPublisher() as publisher:
            publisher.publish("mp_main", synopsis, table_name="mp_test")
            with MPServingPool(
                publisher.register_name, n_workers=1, obs=obs
            ) as pool:
                pool.execute_batch(seeded_queries(seed=6, n=10), table="mp_test")
        assert obs.metrics.counter("repro_mp_requests_total").value == 10
        assert obs.metrics.counter("repro_mp_chunks_total").value >= 1

    def test_shutdown_leaves_no_workers_or_segments(self, synopses):
        synopsis, _ = synopses
        publisher = SynopsisPublisher()
        publisher.publish("mp_main", synopsis, table_name="mp_test")
        pool = MPServingPool(publisher.register_name, n_workers=2)
        pool.execute_batch(seeded_queries(seed=7, n=5), table="mp_test")
        pool.close()
        assert multiprocessing.active_children() == []
        publisher.close()
        assert glob.glob("/dev/shm/pass-*") == []
        # Idempotent: closing again is a no-op, not an error.
        pool.close()
        publisher.close()
        with pytest.raises(RuntimeError):
            pool.execute_batch(seeded_queries(seed=7, n=1), table="mp_test")

    def test_router_swap_republishes_through_the_publisher(self):
        table = make_table(seed=11, n=1500)
        plan = ShardPlanner(1, "range").plan(table, "key")
        sharded = ParallelBuilder(executor="serial").build(
            plan,
            "value",
            ["key"],
            PASSConfig(n_partitions=4, sample_rate=0.05, opt_sample_size=200, seed=0),
            dynamic=True,
        )
        router = StreamingShardRouter(sharded, plan.tables, rebuild_threshold=0.05)
        with SynopsisPublisher() as publisher:
            listener = publisher.watch_router(router, "stream", table_name="mp_test")
            first_epoch = publisher.epoch
            rng = np.random.default_rng(13)
            for _ in range(sharded.shards[0].population_size):
                router.insert(
                    {
                        "key": float(rng.uniform(0.0, 50.0)),
                        "value": float(rng.uniform(1.0, 20.0)),
                    }
                )
                if router.stats()[0].rebuilds:
                    # Stop at the swap so the live shard IS the published
                    # generation (later inserts would drift past it until
                    # the next rebuild republishes).
                    break
            assert router.stats()[0].rebuilds >= 1
            assert publisher.epoch > first_epoch
            # The published generation is the swapped-in shard.
            register = EpochRegister.attach(publisher.register_name)
            _, manifest = register.read()
            flat, attached = attach_flat_synopsis(
                manifest["entries"][0]["segment"]
            )
            live = sharded.shards[0]
            for query in seeded_queries(seed=14, n=15):
                assert_identical(flat.query(query), live.synopsis.flat.query(query))
            attached.close()
            register.close()
            router.remove_swap_listener(listener)

    def test_multi_shard_router_is_rejected(self):
        table = make_table(seed=15, n=1200)
        plan = ShardPlanner(2, "range").plan(table, "key")
        sharded = ParallelBuilder(executor="serial").build(
            plan,
            "value",
            ["key"],
            PASSConfig(n_partitions=4, sample_rate=0.05, opt_sample_size=200, seed=0),
            dynamic=True,
        )
        router = StreamingShardRouter(sharded, plan.tables, rebuild_threshold=None)
        with SynopsisPublisher() as publisher:
            with pytest.raises(ValueError, match="single-shard"):
                publisher.watch_router(router, "stream")


class TestJSONProtocol:
    def test_query_payload_round_trip_is_canonical(self):
        query = AggregateQuery(
            "AVG", "value", RectPredicate({"key": Interval(1.5, 7.25)})
        )
        decoded, table = query_from_payload(query_to_payload(query, "mp_test"))
        assert decoded == query
        assert table == "mp_test"

    def test_result_payload_round_trip_is_exact_with_nan(self):
        result_nan = result_from_payload(
            result_to_payload(
                AQPResult(
                    estimate=3.5,
                    ci_half_width=float("nan"),
                    variance=float("nan"),
                    hard_lower=-math.inf,
                    hard_upper=math.inf,
                    tuples_processed=7,
                    tuples_skipped=2,
                    exact=False,
                )
            )
        )
        assert result_nan.estimate == 3.5
        assert math.isnan(result_nan.ci_half_width)
        assert result_nan.hard_lower == -math.inf

    def test_malformed_payload_raises_value_error(self):
        with pytest.raises(ValueError):
            query_from_payload({"value_column": "value"})


class TestHTTPFrontEnd:
    @pytest.fixture()
    def stack(self, synopses):
        synopsis, _ = synopses
        obs = Observability()
        publisher = SynopsisPublisher()
        publisher.publish("mp_main", synopsis, table_name="mp_test")
        pool = MPServingPool(publisher.register_name, n_workers=1, obs=obs)
        server = MPHTTPServer(pool, max_pending=8, obs=obs)
        base = server.serve_in_thread()
        yield base, server, synopsis
        server.close()
        pool.close()
        publisher.close()

    def post(self, url: str, payload: dict):
        request = urllib.request.Request(
            url,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())

    def test_query_round_trip_matches_engine(self, stack):
        base, _, synopsis = stack
        engine = make_engine(synopsis)
        for query in seeded_queries(seed=8, n=10):
            status, payload = self.post(
                base + "/query", query_to_payload(query, "mp_test")
            )
            assert status == 200
            assert_identical(
                result_from_payload(payload["result"]),
                engine.execute(query, "mp_test"),
            )

    def test_healthz_reports_epoch_and_workers(self, stack):
        base, _, _ = stack
        with urllib.request.urlopen(base + "/healthz") as response:
            payload = json.loads(response.read())
        assert payload["status"] == "ok"
        assert payload["workers"] == 1

    def test_metrics_exposition_includes_pool_counters(self, stack):
        base, server, _ = stack
        self.post(
            base + "/query",
            query_to_payload(seeded_queries(seed=8, n=1)[0], "mp_test"),
        )
        with urllib.request.urlopen(base + "/metrics") as response:
            text = response.read().decode("utf-8")
        assert "repro_mp_requests_total" in text

    def test_groupby_fans_out_cells(self, stack):
        base, _, synopsis = stack
        engine = make_engine(synopsis)
        status, payload = self.post(
            base + "/groupby",
            {
                "groupings": [{"column": "key", "edges": [0.0, 25.0, 50.0]}],
                "aggregates": [{"agg": "AVG", "value_column": "value"}],
                "table": "mp_test",
            },
        )
        assert status == 200
        assert len(payload["cells"]) == 2
        for cell in payload["cells"]:
            low, high = cell["labels"][0]
            query = AggregateQuery(
                "AVG", "value", RectPredicate({"key": Interval(low, high)})
            )
            assert_identical(
                result_from_payload(cell["results"][0]),
                engine.execute(query, "mp_test"),
            )

    def test_bad_payload_is_a_400_not_a_crash(self, stack):
        base, _, _ = stack
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.post(base + "/query", {"value_column": "value"})
        assert excinfo.value.code == 400

    def test_admission_control_rejects_with_429(self, stack):
        base, server, _ = stack
        # Fill the admission window by hand, then knock: typed 429.
        admitted = [server.admit() for _ in range(server.max_pending)]
        assert all(admitted)
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self.post(
                    base + "/query",
                    query_to_payload(seeded_queries(seed=8, n=1)[0], "mp_test"),
                )
            assert excinfo.value.code == 429
            detail = json.loads(excinfo.value.read())
            assert detail["error"] == "overloaded"
            assert detail["capacity"] == server.max_pending
        finally:
            for _ in admitted:
                server.release()
