"""Unit tests for the answer-quality layer: scorecards, drift, audit parts."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.config import PASSConfig
from repro.core.updates import DynamicPASS
from repro.data.table import Table
from repro.obs.audit import TruthOracle, _rank_error
from repro.obs.drift import (
    DriftReport,
    WorkloadDriftDetector,
    WorkloadFingerprint,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.quality import (
    HEALTH_DEGRADED,
    HEALTH_HEALTHY,
    HEALTH_VIOLATING,
    QualityScorecard,
    QualityStore,
    QualityThresholds,
)
from repro.obs.querylog import QueryLog
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery
from repro.serving.persistence import (
    load_synopsis,
    load_workload_fingerprint,
    save_synopsis,
    save_workload_fingerprint,
)


class TestQualityScorecard:
    def test_records_error_coverage_and_tightness(self):
        card = QualityScorecard("s")
        card.record_audit(
            rel_error=0.01, covered=True, tightness=4.0, certified=True
        )
        card.record_audit(
            rel_error=0.03, covered=True, tightness=6.0, certified=True
        )
        assert card.audits == 2
        assert card.bound_violations == 0
        assert card.coverage_rate() == 1.0
        assert card.tightness_ratio() == pytest.approx(5.0)
        p50, _p90, p95 = card.error_percentiles()
        assert 0.01 <= p50 <= 0.03
        assert p95 <= 0.03

    def test_violation_on_certified_path_flips_health(self):
        card = QualityScorecard("s")
        card.record_audit(
            rel_error=0.5, covered=False, tightness=1.0, certified=True
        )
        assert card.bound_violations == 1
        assert card.health(QualityThresholds()) == HEALTH_VIOLATING

    def test_uncertified_audits_never_count_as_violations(self):
        card = QualityScorecard("s")
        card.record_audit(
            rel_error=0.5, covered=False, tightness=1.0, certified=False
        )
        card.record_audit(
            rel_error=0.5, covered=False, tightness=1.0, certified=True, stale=True
        )
        assert card.audits == 2
        assert card.bound_violations == 0
        assert card.stale_audits == 1
        # No assessed audits at all: coverage is vacuously perfect.
        assert card.coverage_rate() == 1.0

    def test_degraded_on_high_error_or_drift(self):
        thresholds = QualityThresholds(max_error_p95=0.1, max_drift_score=0.5)
        card = QualityScorecard("s")
        for _ in range(10):
            card.record_audit(
                rel_error=0.2, covered=True, tightness=3.0, certified=True
            )
        assert card.health(thresholds) == HEALTH_DEGRADED
        calm = QualityScorecard("t")
        calm.set_drift_score(0.9)
        assert calm.health(thresholds) == HEALTH_DEGRADED
        calm.set_drift_score(0.1)
        assert calm.health(thresholds) == HEALTH_HEALTHY

    def test_as_dict_is_json_ready(self):
        card = QualityScorecard("s")
        card.record_audit(
            rel_error=0.02, covered=True, tightness=2.0, certified=True
        )
        payload = card.as_dict(QualityThresholds())
        assert payload["synopsis"] == "s"
        assert payload["audits"] == 1
        assert payload["health"] == HEALTH_HEALTHY
        assert isinstance(payload["coverage_rate"], float)

    def test_instruments_register_once_and_export(self):
        registry = MetricsRegistry()
        card = QualityScorecard("s")
        card.register_instruments(registry)
        card.record_audit(
            rel_error=0.02, covered=True, tightness=2.0, certified=True
        )
        from repro.obs.export import prometheus_text, validate_exposition

        families = validate_exposition(prometheus_text(registry))
        assert "repro_quality_audits_total" in families
        assert "repro_quality_coverage_rate" in families
        assert "repro_audit_rel_error" in families


class TestQualityStore:
    def test_scorecard_is_lazy_and_cached(self):
        store = QualityStore(None)
        card = store.scorecard("a")
        assert store.scorecard("a") is card
        assert store.names() == ["a"]

    def test_merge_from_prefers_existing_cards(self):
        donor = QualityStore(None)
        donor_card = donor.scorecard("a")
        donor_card.record_audit(
            rel_error=0.1, covered=True, tightness=2.0, certified=True
        )
        target = QualityStore(MetricsRegistry())
        target.merge_from(donor)
        assert target.scorecard("a") is donor_card
        assert target.scorecard("a").audits == 1

    def test_health_rollup_worst_wins(self):
        store = QualityStore(None)
        store.scorecard("ok").record_audit(
            rel_error=0.001, covered=True, tightness=3.0, certified=True
        )
        store.scorecard("bad").record_audit(
            rel_error=0.9, covered=False, tightness=1.0, certified=True
        )
        rollup = store.health()
        assert rollup["status"] == HEALTH_VIOLATING
        assert rollup["synopses"]["ok"] == HEALTH_HEALTHY
        assert rollup["violations"] == 1


class TestWorkloadFingerprint:
    DOMAINS = {"x": (0.0, 100.0)}

    @staticmethod
    def boxes(ranges):
        return [(("x", float(low), float(high)),) for low, high in ranges]

    def test_identical_workloads_have_zero_distance(self):
        boxes = self.boxes([(0, 50), (25, 75), (50, 100)])
        base = WorkloadFingerprint.from_boxes(boxes, self.DOMAINS)
        window = base.like(boxes)
        assert base.distance(window) == pytest.approx(0.0, abs=1e-12)

    def test_disjoint_workloads_have_high_distance(self):
        base = WorkloadFingerprint.from_boxes(
            self.boxes([(0, 10), (5, 15)]), self.DOMAINS
        )
        shifted = base.like(self.boxes([(90, 100), (85, 95)]))
        assert base.distance(shifted) > 0.9

    def test_weights_shift_the_fingerprint(self):
        boxes = self.boxes([(0, 10), (90, 100)])
        even = WorkloadFingerprint.from_boxes(boxes, self.DOMAINS)
        skewed = even.like(boxes, weights=[100.0, 1.0])
        assert even.distance(skewed) > 0.2

    def test_unconstrained_column_registers_as_drift(self):
        constrained = WorkloadFingerprint.from_boxes(
            self.boxes([(0, 50)] * 8), self.DOMAINS
        )
        scans = constrained.like([()] * 8)
        assert constrained.distance(scans) > 0.9

    def test_hot_ranges_find_the_traffic_peak(self):
        base = WorkloadFingerprint.from_boxes(
            self.boxes([(90, 95)] * 10 + [(0, 100)]), self.DOMAINS, n_bins=10
        )
        (low, high, share) = base.hot_ranges(top=1)["x"][0]
        assert low == pytest.approx(90.0)
        assert high == pytest.approx(100.0)
        assert share > 0.5

    def test_distance_requires_matching_columns(self):
        a = WorkloadFingerprint.from_boxes(self.boxes([(0, 10)]), self.DOMAINS)
        b = WorkloadFingerprint.from_boxes(
            [(("y", 0.0, 1.0),)], {"y": (0.0, 1.0)}
        )
        with pytest.raises(ValueError):
            a.distance(b)

    def test_infinite_domains_are_clipped(self):
        fp = WorkloadFingerprint.from_boxes(
            self.boxes([(0, 10)]),
            {"x": (-math.inf, math.inf)},
        )
        assert fp.total_weight == 1.0

    def test_arrays_round_trip(self):
        base = WorkloadFingerprint.from_boxes(
            self.boxes([(0, 50), (25, 75)]), self.DOMAINS
        )
        header, arrays = base.to_arrays()
        back = WorkloadFingerprint.from_arrays(header, arrays)
        assert back.columns == base.columns
        assert back.total_weight == base.total_weight
        assert base.distance(back) == pytest.approx(0.0, abs=1e-12)

    def test_npz_round_trip(self, tmp_path):
        base = WorkloadFingerprint.from_boxes(
            self.boxes([(0, 50), (25, 75), (10, 90)]), self.DOMAINS
        )
        path = save_workload_fingerprint(base, tmp_path / "base")
        assert path.name.endswith(".npz")
        back = load_workload_fingerprint(path)
        assert base.distance(back) == pytest.approx(0.0, abs=1e-12)


class TestDriftDetector:
    def _log_with(self, boxes, synopsis="s", waiters=0):
        log = QueryLog(capacity=256)
        for low, high in boxes:
            query = AggregateQuery.sum(
                "v", RectPredicate.from_bounds(x=(float(low), float(high)))
            )
            log.append_raw(
                (
                    0.0,
                    "t",
                    synopsis,
                    query,
                    "miss",
                    1.0,
                    {},
                    None,
                    0.0,
                    0,
                    waiters,
                )
            )
        return log

    def test_matched_traffic_scores_low_and_shifted_high(self):
        matched = [(0, 40), (20, 60), (40, 80)] * 4
        baseline = WorkloadFingerprint.from_boxes(
            [(("x", float(a), float(b)),) for a, b in matched],
            {"x": (0.0, 100.0)},
        )
        store = QualityStore(None)
        detector = WorkloadDriftDetector(
            {"s": baseline}, quality=store, threshold=0.35
        )
        low = detector.observe(self._log_with(matched))["s"]
        assert low.score < 0.1
        assert not low.recommend_rebuild
        shifted = [(95, 99)] * 12
        high = detector.observe(self._log_with(shifted))["s"]
        assert high.score > 0.35
        assert high.recommend_rebuild
        assert store.scorecard("s").drift_score == pytest.approx(high.score)
        assert isinstance(high, DriftReport)
        assert high.as_dict()["recommend_rebuild"] is True

    def test_coalesced_waiters_weight_the_window(self):
        baseline = WorkloadFingerprint.from_boxes(
            [(("x", 0.0, 40.0),)] * 4, {"x": (0.0, 100.0)}
        )
        detector = WorkloadDriftDetector({"s": baseline}, threshold=0.35)
        # One matched record vs one shifted record with 50 waiters: the
        # stampede dominates the window only if weights are honored.
        log = self._log_with([(0, 40)])
        shifted_log = self._log_with([(95, 99)], waiters=50)
        for entry in shifted_log.tail(1):
            log.append(entry)
        report = detector.observe(log)["s"]
        assert report.weight == pytest.approx(52.0)
        assert report.score > 0.35

    def test_unknown_synopses_are_ignored(self):
        baseline = WorkloadFingerprint.from_boxes(
            [(("x", 0.0, 40.0),)], {"x": (0.0, 100.0)}
        )
        detector = WorkloadDriftDetector({"s": baseline})
        report = detector.observe(self._log_with([(0, 40)], synopsis="other"))
        assert report["s"].n_records == 0
        assert report["s"].score == 0.0


class TestWeightedQueryLog:
    def _append(self, log, waiters):
        query = AggregateQuery.sum(
            "v", RectPredicate.from_bounds(x=(0.0, 1.0))
        )
        log.append_raw(
            (0.0, "t", "s", query, "coalesced", 1.0, {}, None, 0.0, 0, waiters)
        )

    def test_boxes_expand_by_waiter_weight(self):
        log = QueryLog(capacity=16)
        self._append(log, 0)
        self._append(log, 3)
        assert len(log.boxes()) == 5
        weights = [weight for _, weight in log.weighted_boxes()]
        assert weights == [1, 4]
        assert [w for _, w in log.weighted_records()] == [1, 4]


class TestExtremaStaleness:
    @staticmethod
    def make_dynamic(n=512, seed=3):
        rng = np.random.default_rng(seed)
        table = Table(
            {
                "key": np.arange(n, dtype=float),
                "value": rng.uniform(10.0, 90.0, size=n),
            },
            name="dyn",
        )
        config = PASSConfig(
            n_partitions=4, sample_rate=0.1, partitioner="equal", seed=0
        )
        return table, DynamicPASS(table, "value", ["key"], config=config, rng=1)

    def test_extremum_delete_increments_gauge(self):
        table, dynamic = self.make_dynamic()
        assert dynamic.extrema_staleness == 0.0
        values = table.column("value")
        top = np.argsort(values)[::-1][:3]
        with pytest.warns(Warning):
            for index in top:
                dynamic.delete(
                    {"key": float(index), "value": float(values[index])}
                )
        assert dynamic.extrema_stale_deletes >= 1
        assert dynamic.extrema_staleness == pytest.approx(
            dynamic.extrema_stale_deletes / dynamic._build_population
        )

    def test_interior_delete_does_not_increment(self):
        table, dynamic = self.make_dynamic()
        values = table.column("value")
        median_index = int(np.argsort(values)[len(values) // 2])
        dynamic.delete(
            {"key": float(median_index), "value": float(values[median_index])}
        )
        assert dynamic.extrema_stale_deletes == 0

    def test_counter_survives_persistence(self, tmp_path):
        table, dynamic = self.make_dynamic()
        values = table.column("value")
        index = int(np.argmax(values))
        with pytest.warns(Warning):
            dynamic.delete({"key": float(index), "value": float(values[index])})
        path = save_synopsis(dynamic, tmp_path / "dyn")
        reloaded = load_synopsis(path)
        assert reloaded.extrema_stale_deletes == dynamic.extrema_stale_deletes
        assert reloaded.extrema_staleness == pytest.approx(
            dynamic.extrema_staleness
        )


class TestTruthOracle:
    @staticmethod
    def make_table():
        return Table(
            {
                "key": np.array([0.0, 1.0, 2.0, 3.0]),
                "value": np.array([10.0, 20.0, 30.0, 40.0]),
            },
            name="t",
        )

    def test_replays_inserts_and_deletes(self):
        oracle = TruthOracle(self.make_table())
        oracle.note({"key": 4.0, "value": 50.0}, "insert")
        oracle.note({"key": 1.0, "value": 20.0}, "delete")
        arrays = oracle.arrays()
        assert sorted(arrays["value"].tolist()) == [10.0, 30.0, 40.0, 50.0]
        assert oracle.version == 2
        assert not oracle.lost_sync

    def test_unfindable_delete_loses_sync(self):
        oracle = TruthOracle(self.make_table())
        oracle.note({"key": 99.0, "value": 99.0}, "delete")
        assert oracle.arrays() is None
        assert oracle.lost_sync

    def test_partial_row_loses_sync(self):
        oracle = TruthOracle(self.make_table())
        oracle.note({"key": 4.0}, "insert")
        assert oracle.lost_sync
        assert oracle.arrays() is None


class TestRankError:
    def test_zero_inside_interval(self):
        values = np.arange(100, dtype=float)
        median = float(np.quantile(values, 0.5))
        assert _rank_error(values, median, 0.5) <= 0.01

    def test_positive_when_off_target(self):
        values = np.arange(100, dtype=float)
        assert _rank_error(values, 90.0, 0.5) == pytest.approx(0.4, abs=0.02)
