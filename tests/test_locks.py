"""ReadWriteLock edge cases: writer starvation bound and re-entrancy errors.

The serving engine's reader-writer lock is writer-preferring: an arriving
writer blocks *new* readers, so a steady query stream cannot starve updates.
These tests pin that bound down with explicit orderings, and cover the
re-entrancy detection (a non-reentrant lock that silently deadlocked on
re-entrant acquisition would be far worse than one that raises).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.serving.locks import ReadWriteLock


# ----------------------------------------------------------------------
# Basic sharing
# ----------------------------------------------------------------------
def test_readers_share_the_lock_concurrently():
    lock = ReadWriteLock()
    n_readers = 4
    inside = threading.Barrier(n_readers, timeout=5.0)
    done = []

    def reader():
        with lock.read_locked():
            inside.wait()  # all readers inside simultaneously or we deadlock
            done.append(True)

    threads = [threading.Thread(target=reader) for _ in range(n_readers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=5.0)
    assert done == [True] * n_readers


# ----------------------------------------------------------------------
# Writer preference / starvation bound
# ----------------------------------------------------------------------
def test_waiting_writer_blocks_new_readers():
    lock = ReadWriteLock()
    order: list[str] = []
    reader_holding = threading.Event()
    writer_waiting = threading.Event()
    release_first_reader = threading.Event()

    def first_reader():
        with lock.read_locked():
            reader_holding.set()
            assert release_first_reader.wait(timeout=5.0)

    def writer():
        assert reader_holding.wait(timeout=5.0)
        writer_waiting.set()
        with lock.write_locked():
            order.append("writer")

    def second_reader():
        assert writer_waiting.wait(timeout=5.0)
        time.sleep(0.05)  # give the writer time to register as waiting
        with lock.read_locked():
            order.append("second_reader")

    threads = [
        threading.Thread(target=first_reader),
        threading.Thread(target=writer),
        threading.Thread(target=second_reader),
    ]
    for thread in threads:
        thread.start()
    time.sleep(0.15)
    # Writer waits on the first reader; the second reader must queue behind
    # the writer even though the lock is only read-held right now.
    assert order == []
    release_first_reader.set()
    for thread in threads:
        thread.join(timeout=5.0)
    assert order == ["writer", "second_reader"]


def test_writer_acquires_under_continuous_reader_churn():
    lock = ReadWriteLock()
    stop = threading.Event()
    writer_done = threading.Event()

    def reader_churn():
        while not stop.is_set():
            with lock.read_locked():
                time.sleep(0.001)

    readers = [threading.Thread(target=reader_churn) for _ in range(4)]
    for thread in readers:
        thread.start()
    time.sleep(0.05)  # the read side is saturated before the writer arrives

    def writer():
        with lock.write_locked():
            writer_done.set()

    writer_thread = threading.Thread(target=writer)
    start = time.perf_counter()
    writer_thread.start()
    acquired = writer_done.wait(timeout=2.0)
    waited = time.perf_counter() - start
    stop.set()
    writer_thread.join(timeout=5.0)
    for thread in readers:
        thread.join(timeout=5.0)
    assert acquired, "writer starved by a continuous reader stream"
    # Writer preference bounds the wait to roughly one reader critical
    # section, not the length of the reader stream (which only stops after).
    assert waited < 1.0


# ----------------------------------------------------------------------
# Re-entrancy detection
# ----------------------------------------------------------------------
def test_reentrant_read_raises():
    lock = ReadWriteLock()
    with lock.read_locked():
        with pytest.raises(RuntimeError, match="not reentrant"):
            lock.acquire_read()


def test_read_to_write_upgrade_raises():
    lock = ReadWriteLock()
    with lock.read_locked():
        with pytest.raises(RuntimeError, match="not reentrant"):
            lock.acquire_write()


def test_reentrant_write_raises():
    lock = ReadWriteLock()
    with lock.write_locked():
        with pytest.raises(RuntimeError, match="not reentrant"):
            lock.acquire_write()


def test_write_to_read_downgrade_raises():
    lock = ReadWriteLock()
    with lock.write_locked():
        with pytest.raises(RuntimeError, match="not reentrant"):
            lock.acquire_read()


def test_lock_usable_after_reentrancy_error():
    lock = ReadWriteLock()
    with lock.read_locked():
        with pytest.raises(RuntimeError):
            lock.acquire_write()
    # The failed acquisition left no residue: both modes still work.
    with lock.write_locked():
        pass
    with lock.read_locked():
        pass


def test_sequential_reacquisition_is_fine():
    lock = ReadWriteLock()
    for _ in range(3):
        with lock.read_locked():
            pass
        with lock.write_locked():
            pass
