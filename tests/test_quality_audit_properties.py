"""Property tests: audited certified bounds always contain the exact answer.

The central contract of the quality layer is that it *confirms* the paper's
hard-bound guarantee rather than merely restating it: for any box predicate
over any shard layout, the exact answer recomputed by the auditor must fall
inside the served certified bounds — coverage 1.0, zero violations.  Sketch
answers (QUANTILE / COUNT_DISTINCT) are self-certified instead: the audit
may realize rank / relative error, but the truth must stay inside the
sketch's own bounds (``sketch_misses == 0``).
"""

from __future__ import annotations

import functools
import math

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.builder import build_pass
from repro.core.config import PASSConfig
from repro.data.table import Table
from repro.distributed.parallel import build_sharded_pass
from repro.obs.audit import AccuracyAuditor
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery, ExactEngine
from repro.serving.catalog import SynopsisCatalog
from repro.serving.engine import ServingEngine

N_ROWS = 1500
KEY_DOMAIN = (0.0, 100.0)

CERTIFIED_AGGS = ("SUM", "COUNT", "AVG", "MIN", "MAX")


@functools.lru_cache(maxsize=None)
def _table() -> Table:
    rng = np.random.default_rng(17)
    key = rng.uniform(*KEY_DOMAIN, size=N_ROWS)
    value = np.abs(rng.normal(50.0, 15.0, size=N_ROWS) + 0.2 * key)
    return Table({"key": key, "value": value}, name="audited")


@functools.lru_cache(maxsize=None)
def _synopsis(n_shards: int):
    config = PASSConfig(n_partitions=8, sample_rate=0.05, opt_sample_size=200, seed=5)
    if n_shards == 1:
        return build_pass(_table(), "value", ["key"], config)
    return build_sharded_pass(
        _table(), "value", "key", n_shards=n_shards, config=config, executor="serial"
    )


def _serving(n_shards: int) -> tuple[ServingEngine, SynopsisCatalog]:
    catalog = SynopsisCatalog()
    catalog.register("audited_value", _synopsis(n_shards), table_name="audited")
    catalog.register_table(_table(), "audited")
    # cache_size=0: duplicate random queries must still reach the auditor
    # (cache hits are never offered for audit).
    return ServingEngine(catalog, cache_size=0), catalog


def _bounds(draw) -> tuple[float, float]:
    low = draw(st.floats(*KEY_DOMAIN, allow_nan=False, allow_infinity=False))
    high = draw(st.floats(*KEY_DOMAIN, allow_nan=False, allow_infinity=False))
    return (low, high) if low <= high else (high, low)


@st.composite
def certified_workloads(draw):
    n_shards = draw(st.sampled_from([1, 2, 4]))
    queries = []
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        low, high = _bounds(draw)
        agg = draw(st.sampled_from(CERTIFIED_AGGS))
        queries.append(
            AggregateQuery(
                agg, "value", RectPredicate.from_bounds(key=(low, high))
            )
        )
    return n_shards, queries


@st.composite
def sketch_workloads(draw):
    n_shards = draw(st.sampled_from([1, 2, 4]))
    queries = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        low, high = _bounds(draw)
        predicate = RectPredicate.from_bounds(key=(low, high))
        if draw(st.booleans()):
            q = draw(st.sampled_from([0.1, 0.25, 0.5, 0.9, 0.95]))
            queries.append(AggregateQuery.at_quantile("value", q, predicate))
        else:
            queries.append(AggregateQuery.count_distinct("value", predicate))
    return n_shards, queries


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(workload=certified_workloads())
def test_certified_bounds_cover_exact_answers(workload):
    n_shards, queries = workload
    engine, catalog = _serving(n_shards)
    exact = ExactEngine(_table())
    with AccuracyAuditor(engine, sample_every=1, max_rate=None) as auditor:
        auditable = 0
        for query in queries:
            result = engine.execute(query)
            # The audit re-derives this independently; assert it inline too
            # so a failure pinpoints the query, not just the tally.
            truth = exact.execute(query)
            if math.isnan(truth):
                # Empty selection: AVG/MIN/MAX have no exact answer and
                # the auditor skips them unless the estimate is NaN too.
                if math.isnan(result.estimate):
                    auditable += 1
                continue
            assert result.hard_lower <= truth <= result.hard_upper
            auditable += 1
        assert auditor.flush(), "auditor did not drain"
        card = catalog.scorecard("audited_value")
        assert card.audits == auditable
        assert card.bound_violations == 0
        assert card.coverage_rate() == 1.0
        assert card.health() != "violating"


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(workload=sketch_workloads())
def test_sketch_answers_stay_inside_self_certified_bounds(workload):
    n_shards, queries = workload
    engine, catalog = _serving(n_shards)
    exact = ExactEngine(_table())
    with AccuracyAuditor(engine, sample_every=1, max_rate=None) as auditor:
        auditable = 0
        for query in queries:
            result = engine.execute(query)
            truth = exact.execute(query)
            if math.isnan(truth) and not math.isnan(result.estimate):
                continue  # empty selection: auditor skips it
            auditable += 1
        assert auditor.flush(), "auditor did not drain"
        card = catalog.scorecard("audited_value")
        assert card.sketch_audits == auditable
        # Sketch paths are self-certified, never counted as hard-bound
        # violations — but the truth must respect the sketch's own bounds.
        assert card.sketch_misses == 0
        assert card.bound_violations == 0


class TestEngineCloseStopsAuditor:
    """Engine teardown owns auditor shutdown (no leaked daemon workers)."""

    def test_close_stops_and_detaches_the_auditor(self):
        engine, _ = _serving(n_shards=1)
        auditor = AccuracyAuditor(engine, sample_every=1, max_rate=None)
        assert engine.auditor is auditor
        assert auditor._worker.is_alive()

        engine.close()
        assert engine.auditor is None
        assert not auditor._worker.is_alive()
        # Idempotent: a second close (and a second stop) is a no-op.
        engine.close()
        auditor.stop()

    def test_context_manager_close_stops_the_auditor(self):
        with _serving(n_shards=1)[0] as engine:
            auditor = AccuracyAuditor(engine, sample_every=1, max_rate=None)
            engine.execute(
                AggregateQuery("SUM", "value", RectPredicate.from_bounds(key=(0, 60)))
            )
            assert auditor.flush(), "auditor did not drain"
        assert engine.auditor is None
        assert not auditor._worker.is_alive()

    def test_stop_warns_when_join_times_out(self):
        """A worker stuck past the join deadline is reported, not swallowed."""
        engine, _ = _serving(n_shards=1)
        auditor = AccuracyAuditor(engine, sample_every=1, max_rate=None)
        # Simulate a wedged worker: a thread that ignores the stop signal.
        import threading
        import warnings as _warnings

        release = threading.Event()
        stuck = threading.Thread(target=release.wait, daemon=True)
        stuck.start()
        real_worker, auditor._worker = auditor._worker, stuck
        try:
            with pytest.warns(RuntimeWarning, match="did not stop"):
                auditor.stop(timeout=0.05)
        finally:
            release.set()
            stuck.join(5.0)
            # Drain the real worker too so nothing outlives the test.
            auditor._worker = real_worker
            with _warnings.catch_warnings():
                _warnings.simplefilter("ignore", RuntimeWarning)
                auditor.stop()
        assert engine.auditor is None
