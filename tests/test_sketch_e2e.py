"""End-to-end tests: QUANTILE / COUNT_DISTINCT through all four query paths.

The acceptance shape of the sketch subsystem: ``QUANTILE(0.5/0.95/0.99)``
and ``COUNT_DISTINCT`` must be answerable through

1. a single synopsis (``PASSSynopsis.query``),
2. grouped execution (``grouped_query`` over a compiled plan),
3. sharded scatter-gather (``ShardedSynopsis.query`` / ``query_grouped``),
4. the cached serving engine (``execute`` / ``execute_grouped``),

on a 100k-row workload, with every path's certified hard bounds containing
the exact answer and the sharded estimates consistent with the
single-synopsis estimates.  Streaming-update maintenance and persistence
round trips are covered at the end.
"""

from __future__ import annotations

import math
import warnings

import numpy as np
import pytest

from repro.core.batching import batch_query, grouped_query
from repro.core.builder import build_pass
from repro.core.config import PASSConfig
from repro.core.updates import DynamicPASS
from repro.data.table import Table
from repro.distributed.parallel import ParallelBuilder, build_sharded_pass
from repro.distributed.planner import ShardPlanner
from repro.distributed.router import StreamingShardRouter
from repro.evaluation.harness import evaluate_served_workload
from repro.query.aggregates import AggregateType
from repro.query.groupby import AggregateSpec, GroupByQuery, GroupingColumn
from repro.query.predicate import Interval, RectPredicate
from repro.query.query import AggregateQuery, ExactEngine
from repro.query.workload import random_range_queries
from repro.serving.catalog import SynopsisCatalog
from repro.serving.engine import ServingEngine
from repro.serving.persistence import load_synopsis, save_synopsis

N_ROWS = 100_000
QUANTILES = (0.5, 0.95, 0.99)


@pytest.fixture(scope="module")
def workload_table() -> Table:
    rng = np.random.default_rng(42)
    key = rng.uniform(0.0, 1000.0, size=N_ROWS)
    value = np.round(np.abs(rng.normal(50.0, 15.0, size=N_ROWS) + 0.02 * key), 1)
    return Table({"key": key, "value": value}, name="events")


@pytest.fixture(scope="module")
def config() -> PASSConfig:
    return PASSConfig(
        n_partitions=32,
        sample_rate=0.01,
        partitioner="equal",
        sketch_distinct_k=8192,
    )


@pytest.fixture(scope="module")
def synopsis(workload_table, config):
    return build_pass(workload_table, "value", ["key"], config)


@pytest.fixture(scope="module")
def sharded(workload_table, config):
    return build_sharded_pass(
        workload_table, "value", "key", n_shards=4, config=config, executor="serial"
    )


@pytest.fixture(scope="module")
def engine(workload_table):
    return ExactEngine(workload_table)


def rank_truth(engine: ExactEngine, query: AggregateQuery) -> float:
    """Ground truth under the sketch's rank definition (value at ceil(q*m))."""
    matching = np.sort(
        engine.table.column(query.value_column)[engine.predicate_mask(query)]
    )
    target = max(1, min(math.ceil(query.quantile * matching.size), matching.size))
    return float(matching[target - 1])


def box_query(agg: str, low: float, high: float, **kwargs) -> AggregateQuery:
    return AggregateQuery(
        agg, "value", RectPredicate({"key": Interval(low, high)}), **kwargs
    )


class TestSingleSynopsisPath:
    def test_quantiles_within_certified_bounds(self, synopsis, engine):
        for q in QUANTILES:
            query = box_query("QUANTILE", 100.0, 900.0, quantile=q)
            result = synopsis.query(query)
            truth = rank_truth(engine, query)
            assert result.hard_lower <= truth <= result.hard_upper
            # The point estimate is far tighter than the conservative
            # certified interval.
            assert abs(result.estimate - truth) <= 0.05 * abs(truth)
        # At the median the certified interval itself is usefully tight.
        median = synopsis.query(box_query("QUANTILE", 100.0, 900.0, quantile=0.5))
        assert median.hard_upper - median.hard_lower < 25.0

    def test_count_distinct_within_certified_bounds(self, synopsis, engine):
        query = box_query("COUNT_DISTINCT", 100.0, 900.0)
        result = synopsis.query(query)
        truth = engine.execute(query)
        assert result.hard_lower <= truth <= result.hard_upper
        assert result.estimate == pytest.approx(truth, rel=0.05)

    def test_batch_query_matches_sequential(self, synopsis):
        queries = [
            box_query("QUANTILE", 50.0, 500.0, quantile=0.95),
            box_query("COUNT_DISTINCT", 50.0, 500.0),
            box_query("SUM", 50.0, 500.0),
        ]
        batched = batch_query(synopsis, queries)
        for query, result in zip(queries, batched):
            assert result.estimate == synopsis.query(query).estimate

    def test_median_alias_and_skip_rate(self, synopsis):
        median = synopsis.query(box_query("MEDIAN", 0.0, 1000.0))
        p50 = synopsis.query(box_query("QUANTILE", 0.0, 1000.0, quantile=0.5))
        assert median.estimate == p50.estimate
        assert synopsis.skip_rate(box_query("QUANTILE", 100.0, 900.0)) > 0.9

    def test_small_synopsis_bounds_contain_interpolated_quantile(self):
        # Regression: with <= k values the sketch is exact under its
        # nearest-rank definition, but the certified bounds must still
        # contain the linearly interpolated (numpy.quantile-style) truth,
        # which lies between two order statistics.
        rng = np.random.default_rng(123)
        table = Table(
            {
                "key": np.arange(40, dtype=float),
                "value": np.round(rng.normal(100.0, 5.0, size=40), 5),
            },
            name="tiny",
        )
        synopsis = build_pass(
            table,
            "value",
            ["key"],
            PASSConfig(n_partitions=4, sample_rate=0.5, partitioner="equal"),
        )
        exact = ExactEngine(table)
        for q in (0.25, 0.5, 0.9):
            query = AggregateQuery(
                "QUANTILE", "value", RectPredicate.everything(), quantile=q
            )
            result = synopsis.query(query)
            truth = exact.execute(query)
            assert result.hard_lower <= truth <= result.hard_upper

    def test_sketchless_synopsis_refuses_with_clear_error(self, workload_table):
        bare = build_pass(
            workload_table,
            "value",
            ["key"],
            PASSConfig(
                n_partitions=8,
                sample_rate=0.01,
                partitioner="equal",
                with_sketches=False,
            ),
        )
        assert not bare.has_sketches
        with pytest.raises(ValueError, match="without sketches"):
            bare.query(box_query("QUANTILE", 0.0, 500.0))


class TestGroupedPath:
    @pytest.fixture(scope="class")
    def plan(self):
        return GroupByQuery(
            groupings=(GroupingColumn.bins("key", [0, 250, 500, 750, 1000]),),
            aggregates=(
                AggregateSpec("SUM", "value"),
                AggregateSpec("QUANTILE", "value", 0.5),
                AggregateSpec("QUANTILE", "value", 0.95),
                AggregateSpec("COUNT_DISTINCT", "value"),
            ),
        ).compile()

    def test_grouped_equals_sequential_per_cell(self, synopsis, plan):
        grouped = grouped_query(synopsis, plan)
        for index, cell in plan.live_cells():
            for position, spec in enumerate(plan.aggregates):
                direct = synopsis.query(plan.cell_query(cell, spec))
                answer = grouped.cells[index][position]
                assert answer.estimate == direct.estimate
                assert answer.hard_lower == direct.hard_lower
                assert answer.hard_upper == direct.hard_upper

    def test_grouped_truth_containment_per_cell(self, synopsis, engine, plan):
        grouped = grouped_query(synopsis, plan)
        for index, cell in plan.live_cells():
            for position, spec in enumerate(plan.aggregates):
                query = plan.cell_query(cell, spec)
                answer = grouped.cells[index][position]
                if spec.agg == AggregateType.QUANTILE:
                    truth = rank_truth(engine, query)
                elif spec.agg == AggregateType.COUNT_DISTINCT:
                    truth = engine.execute(query)
                else:
                    continue
                assert answer.hard_lower <= truth <= answer.hard_upper

    def test_sketch_only_plan_works(self, synopsis):
        plan = GroupByQuery(
            groupings=(GroupingColumn.bins("key", [0, 500, 1000]),),
            aggregates=(AggregateSpec("QUANTILE", "value", 0.99),),
        ).compile()
        grouped = grouped_query(synopsis, plan)
        assert len(grouped) == 2
        assert all(np.isfinite(row[0].estimate) for row in grouped.cells)

    def test_to_records_uses_percentile_names(self, synopsis, plan):
        records = grouped_query(synopsis, plan).to_records()
        assert "P95(value)" in records[0]
        assert "COUNT_DISTINCT(value)" in records[0]


class TestShardedPath:
    def test_sharded_consistent_with_single(self, synopsis, sharded, engine):
        for q in QUANTILES:
            query = box_query("QUANTILE", 123.0, 789.0, quantile=q)
            single = synopsis.query(query)
            merged = sharded.query(query)
            truth = rank_truth(engine, query)
            assert single.hard_lower <= truth <= single.hard_upper
            assert merged.hard_lower <= truth <= merged.hard_upper
            assert max(single.hard_lower, merged.hard_lower) <= min(
                single.hard_upper, merged.hard_upper
            )

    def test_sharded_count_distinct(self, sharded, engine):
        query = box_query("COUNT_DISTINCT", 123.0, 789.0)
        result = sharded.query(query)
        truth = engine.execute(query)
        assert result.hard_lower <= truth <= result.hard_upper

    def test_no_matching_data_answers_null(self, sharded):
        # The outermost shard / leaf boxes are unbounded, so a key range
        # beyond the data still routes somewhere — but no sample matches and
        # no covered mass exists, so the answer is NULL with finite
        # boundary-derived bounds.
        none_match = box_query("QUANTILE", 2000.0, 3000.0, quantile=0.5)
        result = sharded.query(none_match)
        assert math.isnan(result.estimate)
        assert np.isfinite(result.hard_lower) and np.isfinite(result.hard_upper)

    def test_mixed_batch_classic_and_sketch(self, sharded, synopsis):
        queries = [
            box_query("SUM", 100.0, 600.0),
            box_query("QUANTILE", 100.0, 600.0, quantile=0.95),
            box_query("AVG", 100.0, 600.0),
            box_query("COUNT_DISTINCT", 100.0, 600.0),
        ]
        results = sharded.query_batch(queries)
        assert len(results) == len(queries)
        for query, result in zip(queries, results):
            assert result.estimate == sharded.query(query).estimate

    def test_sharded_grouped_with_sketch_aggregates(self, sharded, engine):
        groupby = GroupByQuery(
            groupings=(GroupingColumn.bins("key", [0, 500, 1000]),),
            aggregates=(
                AggregateSpec("QUANTILE", "value", 0.95),
                AggregateSpec("COUNT_DISTINCT", "value"),
            ),
        )
        grouped = sharded.query_grouped(groupby.compile())
        plan = groupby.compile()
        for index, cell in plan.live_cells():
            for position, spec in enumerate(plan.aggregates):
                query = plan.cell_query(cell, spec)
                answer = grouped.cells[index][position]
                truth = (
                    rank_truth(engine, query)
                    if spec.agg == AggregateType.QUANTILE
                    else engine.execute(query)
                )
                assert answer.hard_lower <= truth <= answer.hard_upper


class TestServingPath:
    @pytest.fixture()
    def serving(self, workload_table, synopsis, sharded):
        catalog = SynopsisCatalog()
        catalog.register("single", synopsis, table_name="events")
        catalog.register_table(workload_table, "events")
        return ServingEngine(catalog)

    def test_cache_distinguishes_percentiles(self, serving):
        p50 = serving.execute(box_query("QUANTILE", 10.0, 700.0, quantile=0.5))
        p95 = serving.execute(box_query("QUANTILE", 10.0, 700.0, quantile=0.95))
        assert p50.estimate < p95.estimate
        again = serving.execute(box_query("QUANTILE", 10.0, 700.0, quantile=0.95))
        assert again.estimate == p95.estimate
        stats = serving.stats()["single"]
        assert stats.cache_hits >= 1
        assert serving.cache_info()["size"] >= 2

    def test_grouped_serving_with_sketches(self, serving, engine):
        groupby = GroupByQuery(
            groupings=(GroupingColumn.bins("key", [0, 250, 500, 750, 1000]),),
            aggregates=(
                AggregateSpec("AVG", "value"),
                AggregateSpec("QUANTILE", "value", 0.99),
            ),
        )
        grouped = serving.execute_grouped(groupby, table="events")
        assert len(grouped) == 4
        plan = groupby.compile()
        for index, cell in plan.live_cells():
            query = plan.cell_query(cell, plan.aggregates[1])
            truth = rank_truth(engine, query)
            answer = grouped.cells[index][1]
            assert answer.hard_lower <= truth <= answer.hard_upper

    def test_sketchless_entry_routes_to_exact_fallback(self, workload_table, engine):
        bare = build_pass(
            workload_table,
            "value",
            ["key"],
            PASSConfig(
                n_partitions=8,
                sample_rate=0.01,
                partitioner="equal",
                with_sketches=False,
            ),
        )
        catalog = SynopsisCatalog()
        catalog.register("bare", bare, table_name="events")
        catalog.register_table(workload_table, "events")
        serving = ServingEngine(catalog)
        query = box_query("COUNT_DISTINCT", 100.0, 400.0)
        result = serving.execute(query)
        assert result.exact
        assert result.estimate == engine.execute(query)
        # Classic aggregates still route to the synopsis.
        assert serving.execute(box_query("SUM", 100.0, 400.0)).exact is False

    def test_served_workload_evaluation(self, serving, engine, workload_table):
        workload = random_range_queries(
            workload_table,
            "value",
            ["key"],
            n_queries=8,
            agg="QUANTILE",
            quantile=0.95,
            rng=3,
        )
        metrics = evaluate_served_workload(serving, workload.queries, engine)
        assert metrics.n_queries == 8
        assert metrics.median_relative_error < 0.1


class TestStreamingMaintenance:
    def test_inserts_update_sketches_and_deletes_track_staleness(self):
        table = Table(
            {
                "key": np.arange(2_000, dtype=float),
                "value": np.arange(2_000, dtype=float),
            },
            name="stream",
        )
        dynamic = DynamicPASS(
            table,
            "value",
            ["key"],
            PASSConfig(n_partitions=8, sample_rate=0.05, partitioner="equal"),
        )
        everything = AggregateQuery(
            "QUANTILE", "value", RectPredicate.everything(), quantile=0.99
        )
        before = dynamic.query(everything).estimate
        for i in range(400):
            dynamic.insert({"key": 1000.0, "value": 10_000.0 + i})
        after = dynamic.query(everything).estimate
        assert after > before
        assert dynamic.sketch_staleness == 0.0

        distinct_before = dynamic.query(
            AggregateQuery.count_distinct("value", RectPredicate.everything())
        ).estimate
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            dynamic.delete({"key": 0.0, "value": 0.0})
            dynamic.delete({"key": 1.0, "value": 1.0})
        assert dynamic.sketch_staleness == pytest.approx(2 / 2_000)
        # Rebuild reconstructs sketches and clears the drift counter.
        dynamic.rebuild(table)
        assert dynamic.sketch_staleness == 0.0
        assert distinct_before > 0

    def test_router_surfaces_sketch_staleness(self, workload_table):
        plan = ShardPlanner(2, "range").plan(workload_table, "key")
        shards = ParallelBuilder(executor="serial").build(
            plan,
            "value",
            config=PASSConfig(n_partitions=8, sample_rate=0.01, partitioner="equal"),
            dynamic=True,
        )
        router = StreamingShardRouter(shards, plan.tables, rebuild_threshold=None)
        router.insert({"key": 10.0, "value": 42.0})
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            router.delete({"key": 10.0, "value": 42.0})
        stats = router.stats()
        assert any(s.sketch_staleness > 0 for s in stats)
        assert shards.sketch_staleness > 0
        assert shards.supports_sketches


class TestPersistenceRoundTrips:
    def test_static_synopsis_round_trip(self, synopsis, tmp_path):
        loaded = load_synopsis(save_synopsis(synopsis, tmp_path / "single"))
        assert loaded.has_sketches
        for q in QUANTILES:
            query = box_query("QUANTILE", 200.0, 800.0, quantile=q)
            assert loaded.query(query).estimate == synopsis.query(query).estimate
        distinct = box_query("COUNT_DISTINCT", 200.0, 800.0)
        assert loaded.query(distinct).estimate == synopsis.query(distinct).estimate

    def test_sharded_round_trip(self, sharded, tmp_path):
        loaded = load_synopsis(save_synopsis(sharded, tmp_path / "sharded"))
        query = box_query("QUANTILE", 200.0, 800.0, quantile=0.95)
        original = sharded.query(query)
        restored = loaded.query(query)
        assert restored.estimate == original.estimate
        assert restored.hard_lower == original.hard_lower
        assert restored.hard_upper == original.hard_upper

    def test_dynamic_round_trip_preserves_staleness(self, tmp_path):
        table = Table(
            {
                "key": np.arange(1_000, dtype=float),
                "value": np.arange(1_000, dtype=float),
            },
            name="dyn",
        )
        dynamic = DynamicPASS(
            table,
            "value",
            ["key"],
            PASSConfig(n_partitions=4, sample_rate=0.05, partitioner="equal"),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            dynamic.delete({"key": 0.0, "value": 0.0})
        loaded = load_synopsis(save_synopsis(dynamic, tmp_path / "dynamic"))
        assert loaded.sketch_staleness == dynamic.sketch_staleness
        query = AggregateQuery(
            "QUANTILE", "value", RectPredicate.everything(), quantile=0.5
        )
        assert loaded.query(query).estimate == dynamic.query(query).estimate
