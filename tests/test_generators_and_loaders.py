"""Tests for the surrogate dataset generators and the name-based loaders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generators import (
    adversarial,
    instacart_like,
    intel_wireless_like,
    nyc_taxi_like,
    uniform_random,
)
from repro.data.loaders import DATASET_LOADERS, load_dataset


class TestGenerators:
    def test_uniform_random_schema(self):
        table = uniform_random(n_rows=100, n_predicate_columns=2)
        assert table.n_rows == 100
        assert {"c0", "c1", "value"} <= set(table.column_names)

    def test_uniform_random_rejects_bad_rows(self):
        with pytest.raises(ValueError):
            uniform_random(n_rows=0)

    def test_intel_like_structure(self):
        table = intel_wireless_like(n_rows=5_000, seed=7)
        assert table.n_rows == 5_000
        assert {"time", "light", "sensor_id"} <= set(table.column_names)
        # The aggregation column is strictly positive (paper's assumption).
        assert table.column("light").min() > 0.0
        # Times are sorted (a sensor trace).
        assert np.all(np.diff(table.column("time")) >= 0)

    def test_intel_like_partition_variance_below_global(self):
        """Stratifying on time must reduce variance — the property PASS exploits."""
        table = intel_wireless_like(n_rows=20_000, seed=7)
        time = table.column("time")
        light = table.column("light")
        global_var = float(np.var(light))
        edges = np.quantile(time, np.linspace(0, 1, 33))
        local_vars = []
        for low, high in zip(edges[:-1], edges[1:]):
            mask = (time >= low) & (time <= high)
            if mask.sum() > 1:
                local_vars.append(float(np.var(light[mask])))
        assert np.mean(local_vars) < 0.8 * global_var

    def test_instacart_like_structure(self):
        table = instacart_like(n_rows=5_000, seed=13)
        reordered = table.column("reordered")
        assert set(np.unique(reordered)) <= {0.0, 1.0}
        assert 0.05 < reordered.mean() < 0.95

    def test_nyc_like_structure(self):
        table = nyc_taxi_like(n_rows=5_000, seed=23)
        assert {"pickup_time", "pickup_date", "pu_location_id", "trip_distance"} <= set(
            table.column_names
        )
        distances = table.column("trip_distance")
        assert distances.min() > 0
        # Heavy tail: the max is far above the median.
        assert distances.max() > 5 * np.median(distances)

    def test_adversarial_structure(self):
        table = adversarial(n_rows=8_000, zero_fraction=0.875, seed=41)
        value = table.column("value")
        n_zero = int(round(8_000 * 0.875))
        assert np.all(value[:n_zero] == 0.0)
        assert np.all(value[n_zero:] > 0.0)
        # Keys are unique and sorted.
        keys = table.column("key")
        assert len(np.unique(keys)) == 8_000

    def test_adversarial_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            adversarial(n_rows=10, zero_fraction=1.5)

    def test_generators_are_deterministic(self):
        a = intel_wireless_like(n_rows=1_000, seed=5)
        b = intel_wireless_like(n_rows=1_000, seed=5)
        assert np.allclose(a.column("light"), b.column("light"))

    def test_generators_vary_with_seed(self):
        a = intel_wireless_like(n_rows=1_000, seed=5)
        b = intel_wireless_like(n_rows=1_000, seed=6)
        assert not np.allclose(a.column("light"), b.column("light"))


class TestLoaders:
    @pytest.mark.parametrize("name", sorted(DATASET_LOADERS))
    def test_load_each_dataset(self, name):
        spec = load_dataset(name, n_rows=2_000)
        assert spec.table.n_rows == 2_000
        assert spec.value_column in spec.table
        for column in spec.predicate_columns:
            assert column in spec.table
        assert spec.default_predicate_column == spec.predicate_columns[0]

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError, match="known datasets"):
            load_dataset("does-not-exist")

    def test_nyc_has_five_predicate_columns(self):
        spec = load_dataset("nyc", n_rows=1_000)
        assert len(spec.predicate_columns) == 5
