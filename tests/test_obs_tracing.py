"""Unit tests for the tracer (repro.obs.tracing): nesting, propagation,
head sampling, suppression, and the bounded finished-trace store."""

import threading

import pytest

from repro.obs.tracing import NullSpan, NullTracer, Span, Tracer


class TestAmbientNesting:
    def test_span_nests_under_ambient_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
            assert tracer.current() is outer
        assert tracer.current() is None
        assert outer.children == [inner]
        assert inner.end_s is not None and outer.end_s is not None

    def test_explicit_none_parent_forces_new_root(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("detached", parent=None) as detached:
                assert detached.parent_id is None
                assert detached.trace_id != outer.trace_id
        roots = tracer.finished()
        assert {root.name for root in roots} == {"outer", "detached"}

    def test_attributes_via_kwargs(self):
        tracer = Tracer()
        with tracer.span("op", batch_size=8) as span:
            span.set_attribute("nodes_visited", 42)
        assert span.attributes == {"batch_size": 8, "nodes_visited": 42}

    def test_explicit_start_end_lifecycle(self):
        tracer = Tracer()
        root = tracer.start("serve.request", parent=None)
        child = tracer.start("work", parent=root)
        tracer.end(child)
        tracer.end(root)
        tracer.end(root)  # idempotent: no double-append to the store
        assert len(tracer.finished()) == 1
        assert root.find("work") is child


class TestStages:
    def test_add_stage_accumulates_repeats(self):
        span = Span("root", trace_id=1, span_id=1, parent_id=None, start_s=0.0)
        span.add_stage("cache.probe", 0.001)
        span.add_stage("cache.probe", 0.002)
        assert span.stages["cache.probe"] == pytest.approx(0.003)

    def test_stage_durations_merge_stamped_and_children(self):
        tracer = Tracer()
        root = tracer.start("serve.request", parent=None)
        root.add_stage("queue.wait", 0.004)
        root.add_stage("plan.compile", 0.001)  # same name as the child below
        child = tracer.start("plan.compile", parent=root, start_s=root.start_s)
        tracer.end(child, end_s=root.start_s + 0.002)
        tracer.end(root)
        stages = root.stage_durations_ms()
        assert stages["queue.wait"] == pytest.approx(4.0)
        assert stages["plan.compile"] == pytest.approx(3.0)  # 1ms stamped + 2ms span

    def test_open_span_duration_is_nan(self):
        tracer = Tracer()
        span = tracer.start("open", parent=None)
        assert span.duration_ms != span.duration_ms  # NaN


class TestHeadSampling:
    def test_first_request_always_sampled_then_one_in_n(self):
        tracer = Tracer(sample_every=4)
        roots = [tracer.sample_root("serve.request") for _ in range(8)]
        sampled = [root is not None for root in roots]
        assert sampled == [True, False, False, False, True, False, False, False]

    def test_sample_every_one_traces_everything(self):
        tracer = Tracer(sample_every=1)
        assert all(tracer.sample_root("r") is not None for _ in range(5))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Tracer(max_traces=0)
        with pytest.raises(ValueError):
            Tracer(sample_every=0)


class TestSuppression:
    def test_suppress_scope_yields_null_contexts(self):
        # The executor-side batch path suppresses ambient-parented spans when
        # the batch leader was not head-sampled — otherwise every layer below
        # the scheduler would open orphan roots that flood the trace store.
        tracer = Tracer()
        with tracer.suppress():
            assert tracer.current() is None
            with tracer.span("plan.compile") as span:
                assert isinstance(span, NullSpan)
        assert tracer.finished() == []

    def test_explicit_parent_bypasses_suppression(self):
        tracer = Tracer()
        root = tracer.start("serve.request", parent=None)
        with tracer.suppress():
            with tracer.span("work", parent=root) as span:
                assert isinstance(span, Span)
        tracer.end(root)
        assert root.find("work") is span

    def test_suppression_is_scoped(self):
        tracer = Tracer()
        with tracer.suppress():
            pass
        with tracer.span("after") as span:
            assert isinstance(span, Span)


class TestActivation:
    def test_activate_carries_span_across_a_thread(self):
        # The cross-boundary half of propagation: run_in_executor does not
        # copy the caller's contextvars, so the executor thread re-installs
        # the carried root explicitly.
        tracer = Tracer()
        root = tracer.start("serve.request", parent=None)
        seen: list[Span] = []

        def executor_side():
            with tracer.activate(root):
                with tracer.span("serving.execute_batch") as batch_span:
                    seen.append(batch_span)

        thread = threading.Thread(target=executor_side)
        thread.start()
        thread.join()
        tracer.end(root)
        assert seen[0].trace_id == root.trace_id
        assert root.find("serving.execute_batch") is seen[0]


class TestTraceStore:
    def test_bounded_store_evicts_oldest(self):
        tracer = Tracer(max_traces=3)
        for i in range(5):
            with tracer.span(f"r{i}", parent=None):
                pass
        assert [root.name for root in tracer.finished()] == ["r2", "r3", "r4"]

    def test_find_trace_and_slowest_and_clear(self):
        tracer = Tracer()
        root = tracer.start("slow", parent=None)
        tracer.end(root, end_s=root.start_s + 1.0)
        fast = tracer.start("fast", parent=None)
        tracer.end(fast, end_s=fast.start_s + 0.1)
        assert tracer.find_trace(root.trace_id) is root
        assert tracer.find_trace(-1) is None
        assert [span.name for span in tracer.slowest(1)] == ["slow"]
        tracer.clear()
        assert tracer.finished() == []


class TestNullTracer:
    def test_everything_is_inert(self):
        tracer = NullTracer()
        assert tracer.sample_every == 1
        assert tracer.sample_root("r") is None
        span = tracer.start("r")
        assert isinstance(span, NullSpan)
        tracer.end(span)
        with tracer.span("r") as inner:
            inner.add_stage("s", 1.0)
            inner.set_attribute("k", "v")
        with tracer.activate(span):
            assert tracer.current() is None
        with tracer.suppress():
            pass
        assert tracer.finished() == []
        assert tracer.slowest() == []
        assert tracer.find_trace(0) is None
        assert span.stage_durations_ms() == {}
        assert span.find("anything") is None
        assert span.render() == ""
        assert list(span.iter_tree()) == [span]
