"""Tests for the 1-D partitioners (DP, equal-depth, hill climbing) and boundaries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.table import Table
from repro.partitioning.boundaries import (
    boundaries_from_ranks,
    boxes_from_boundaries,
    partition_masks,
)
from repro.partitioning.dp import (
    approximate_dp_partition,
    naive_dp_partition,
    optimal_count_partition,
)
from repro.partitioning.equal import equal_depth_boundaries, equal_depth_partition
from repro.partitioning.hill_climbing import hill_climbing_partition
from repro.partitioning.max_variance import MaxVarianceOracle


def partition_sizes(table: Table, column: str, boxes) -> list[int]:
    values = table.column(column)
    return [int(box.mask({column: values}).sum()) for box in boxes]


class TestBoundaries:
    def test_boxes_from_boundaries_partition_the_line(self):
        boxes = boxes_from_boundaries("x", [1.0, 5.0])
        assert len(boxes) == 3
        values = np.array([-10.0, 0.5, 1.0, 3.0, 5.0, 100.0])
        masks = partition_masks(values, boxes, "x")
        counts = np.sum(masks, axis=0)
        # Every value belongs to exactly one box.
        assert np.all(counts.sum(axis=0) if counts.ndim else counts == 1)
        total = sum(int(mask.sum()) for mask in masks)
        assert total == values.shape[0]

    def test_duplicate_boundaries_deduplicated(self):
        boxes = boxes_from_boundaries("x", [2.0, 2.0, 2.0])
        assert len(boxes) == 2

    def test_boundaries_from_ranks(self):
        sorted_values = np.array([1.0, 2.0, 3.0, 4.0])
        assert boundaries_from_ranks(sorted_values, [1]) == [2.0]
        with pytest.raises(IndexError):
            boundaries_from_ranks(sorted_values, [9])


class TestEqualDepth:
    def test_equal_sizes(self, skewed_table):
        boxes = equal_depth_partition(skewed_table, "key", 8)
        sizes = partition_sizes(skewed_table, "key", boxes)
        assert sum(sizes) == skewed_table.n_rows
        assert max(sizes) - min(sizes) <= 2

    def test_boundaries_count(self, skewed_table):
        boundaries = equal_depth_boundaries(skewed_table.column("key"), 8)
        assert len(boundaries) == 7

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            equal_depth_boundaries(np.array([]), 4)
        with pytest.raises(ValueError):
            equal_depth_boundaries(np.array([1.0]), 0)


class TestOptimalCountPartition:
    def test_equal_count_buckets(self, skewed_table):
        result = optimal_count_partition(skewed_table, "key", 10)
        sizes = partition_sizes(skewed_table, "key", result.boxes)
        assert max(sizes) - min(sizes) <= 2
        assert result.objective > 0


class TestNaiveDP:
    def test_tiny_exact_partitioning_isolates_outlier(self):
        """A single huge-variance region should get its own partition."""
        key = np.arange(20.0)
        value = np.array([1.0] * 15 + [50.0, 60.0, 55.0, 52.0, 58.0])
        table = Table({"key": key, "value": value})
        result = naive_dp_partition(table, "value", "key", 2, agg="SUM")
        assert result.n_partitions == 2
        sizes = partition_sizes(table, "key", result.boxes)
        # The split should isolate (most of) the noisy tail from the flat head.
        assert min(sizes) <= 6

    def test_objective_decreases_with_more_partitions(self):
        rng = np.random.default_rng(3)
        key = np.arange(60.0)
        value = np.abs(rng.normal(20, 10, size=60))
        table = Table({"key": key, "value": value})
        objectives = [
            naive_dp_partition(table, "value", "key", k, agg="SUM").objective
            for k in (1, 2, 4)
        ]
        assert objectives[0] >= objectives[1] >= objectives[2]


class TestApproximateDP:
    def test_boxes_partition_every_row(self, skewed_table):
        result = approximate_dp_partition(
            skewed_table, "value", "key", 16, opt_sample_size=400
        )
        sizes = partition_sizes(skewed_table, "key", result.boxes)
        assert sum(sizes) == skewed_table.n_rows

    def test_adversarial_data_concentrates_partitions_in_tail(self, adversarial_small):
        result = approximate_dp_partition(
            adversarial_small, "value", "key", 16, opt_sample_size=800, rng=0
        )
        sizes = partition_sizes(adversarial_small, "key", result.boxes)
        # One partition should hold (almost all of) the zero region, so it is
        # far larger than the rest, which subdivide the high-variance tail.
        assert max(sizes) > 0.6 * adversarial_small.n_rows
        assert len(sizes) >= 8

    def test_count_template_short_circuits_to_equal(self, skewed_table):
        result = approximate_dp_partition(skewed_table, "value", "key", 8, agg="COUNT")
        sizes = partition_sizes(skewed_table, "key", result.boxes)
        assert max(sizes) - min(sizes) <= 2

    def test_avg_template_runs(self, skewed_table):
        result = approximate_dp_partition(
            skewed_table, "value", "key", 8, agg="AVG", opt_sample_size=400, delta=0.05
        )
        assert result.n_partitions >= 2

    def test_requested_partitions_upper_bound(self, skewed_table):
        result = approximate_dp_partition(
            skewed_table, "value", "key", 12, opt_sample_size=300
        )
        assert result.n_partitions <= 12

    def test_sample_size_parameters_are_exclusive(self, skewed_table):
        with pytest.raises(ValueError):
            approximate_dp_partition(
                skewed_table, "value", "key", 4, opt_sample_size=10, opt_sample_rate=0.1
            )
        with pytest.raises(ValueError):
            approximate_dp_partition(
                skewed_table, "value", "key", 4, opt_sample_rate=1.5
            )

    def test_deterministic_given_seed(self, skewed_table):
        a = approximate_dp_partition(
            skewed_table, "value", "key", 8, opt_sample_size=300, rng=5
        )
        b = approximate_dp_partition(
            skewed_table, "value", "key", 8, opt_sample_size=300, rng=5
        )
        assert a.boundaries == b.boundaries

    def test_adp_objective_comparable_to_equal_depth(self, adversarial_small):
        """The optimized partitioning's worst bucket should beat equal-depth's."""
        adp = approximate_dp_partition(
            adversarial_small, "value", "key", 16, opt_sample_size=800, rng=0
        )
        # Score both partitionings with the same oracle over the same sample.
        rng = np.random.default_rng(0)
        idx = rng.choice(adversarial_small.n_rows, size=800, replace=False)
        keys = adversarial_small.column("key")[idx]
        values = adversarial_small.column("value")[idx]
        order = np.argsort(keys)
        keys, values = keys[order], values[order]
        oracle = MaxVarianceOracle(values, agg="SUM")

        def worst(boundaries):
            edges = np.searchsorted(keys, np.asarray(boundaries), side="right") - 1
            edges = [-1] + sorted(int(e) for e in edges) + [len(keys) - 1]
            worst_value = 0.0
            for lo, hi in zip(edges[:-1], edges[1:]):
                if lo + 1 <= hi:
                    worst_value = max(worst_value, oracle.max_variance(lo + 1, hi))
            return worst_value

        eq_boundaries = equal_depth_boundaries(adversarial_small.column("key"), 16)
        assert worst(adp.boundaries) <= worst(eq_boundaries) * 1.05


class TestHillClimbing:
    def test_produces_valid_partitioning(self, skewed_table):
        result = hill_climbing_partition(
            skewed_table, "value", "key", 8, opt_sample_size=400, rng=1
        )
        sizes = partition_sizes(skewed_table, "key", result.boxes)
        assert sum(sizes) == skewed_table.n_rows
        assert result.n_partitions <= 8

    def test_objective_not_worse_than_equal_start(self, skewed_table):
        """Hill climbing starts from equal-depth breaks and only accepts improvements."""
        result = hill_climbing_partition(
            skewed_table,
            "value",
            "key",
            8,
            opt_sample_size=400,
            max_iterations=0,
            rng=1,
        )
        improved = hill_climbing_partition(
            skewed_table,
            "value",
            "key",
            8,
            opt_sample_size=400,
            max_iterations=400,
            rng=1,
        )
        assert improved.objective <= result.objective + 1e-9

    def test_invalid_partition_count(self, skewed_table):
        with pytest.raises(ValueError):
            hill_climbing_partition(skewed_table, "value", "key", 0)
