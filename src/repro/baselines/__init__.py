"""Comparison systems: AQP++, a VerdictDB-style scramble, a DeepDB-style model."""

from repro.baselines.aqp_pp import AQPPlusPlus
from repro.baselines.deepdb_sim import DeepDBModel
from repro.baselines.verdictdb_sim import VerdictDBScramble

__all__ = ["AQPPlusPlus", "DeepDBModel", "VerdictDBScramble"]
