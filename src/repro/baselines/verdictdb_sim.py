"""A VerdictDB-style scramble baseline (Park et al., SIGMOD 2018).

VerdictDB materializes a *scramble*: a pre-drawn uniform sample of the
original table (optionally the whole table), stored with block identifiers so
that variational subsampling can estimate errors.  Queries run only against
the scramble and scale results by the inverse sampling ratio.

This simplified reimplementation keeps the parts the paper's end-to-end
comparison (Table 2) exercises: scrambles of a configurable ratio, full-scan
query answering over the scramble with CLT error estimates from subsample
block variance, and the storage / latency cost profile that follows from
storing and scanning the scramble.  Join support and the rest of VerdictDB's
query coverage are out of scope.
"""

from __future__ import annotations

import math
import time
from typing import Sequence

import numpy as np

from repro.data.table import Table
from repro.query.aggregates import AggregateType
from repro.query.query import AggregateQuery
from repro.result import AQPResult, LAMBDA_99

__all__ = ["VerdictDBScramble"]


class VerdictDBScramble:
    """A scramble-based AQP synopsis.

    Parameters
    ----------
    table:
        Source table.
    value_column / predicate_columns:
        Column roles; only these columns are retained in the scramble.
    scramble_ratio:
        Fraction of the table stored in the scramble (1.0 reproduces the
        paper's VerdictDB-100% configuration).
    n_blocks:
        Number of subsample blocks used for variance estimation (variational
        subsampling uses O(sqrt(n)) blocks; a fixed moderate count is enough
        for the reproduction).
    rng:
        Numpy generator or seed.
    """

    def __init__(
        self,
        table: Table,
        value_column: str,
        predicate_columns: Sequence[str],
        scramble_ratio: float = 0.1,
        n_blocks: int = 100,
        lam: float = LAMBDA_99,
        rng: np.random.Generator | int | None = 0,
    ) -> None:
        if not 0.0 < scramble_ratio <= 1.0:
            raise ValueError("scramble_ratio must be in (0, 1]")
        if n_blocks <= 1:
            raise ValueError("n_blocks must be at least 2")
        generator = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )
        start = time.perf_counter()
        self._value_column = value_column
        self._predicate_columns = list(predicate_columns)
        self._population_size = table.n_rows
        self._ratio = scramble_ratio
        self._lam = lam

        keep_columns = [value_column] + [
            column for column in self._predicate_columns if column != value_column
        ]
        scramble_size = max(1, int(round(scramble_ratio * table.n_rows)))
        self._scramble = table.project(keep_columns).sample(scramble_size, generator)
        self._values = self._scramble.column(value_column).astype(float)
        self._blocks = generator.integers(0, n_blocks, size=self._scramble.n_rows)
        self._n_blocks = n_blocks
        self.build_seconds = time.perf_counter() - start

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def scramble_size(self) -> int:
        """Number of rows stored in the scramble."""
        return self._scramble.n_rows

    @property
    def population_size(self) -> int:
        """Number of rows in the original table."""
        return self._population_size

    def storage_bytes(self) -> int:
        """Approximate scramble footprint (columns plus block ids)."""
        return self._scramble.memory_bytes() + self._blocks.nbytes

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def query(self, query: AggregateQuery, lam: float | None = None) -> AQPResult:
        """Answer a query by scanning the scramble and scaling by 1 / ratio."""
        if query.value_column != self._value_column:
            raise ValueError(
                f"scramble was built for column {self._value_column!r}, "
                f"query aggregates {query.value_column!r}"
            )
        lam = self._lam if lam is None else lam
        agg = query.agg
        predicate = query.predicate
        if len(predicate) == 0:
            match_mask = np.ones(self.scramble_size, dtype=bool)
        else:
            match_mask = predicate.mask(self._scramble.columns(predicate.columns))

        matched_values = self._values[match_mask]
        exact_scramble = self._ratio >= 1.0
        if agg == AggregateType.COUNT:
            estimate = float(match_mask.sum()) / self._ratio
        elif agg == AggregateType.SUM:
            estimate = float(matched_values.sum()) / self._ratio
        elif agg == AggregateType.AVG:
            estimate = (
                float(matched_values.mean()) if matched_values.size else float("nan")
            )
        elif agg == AggregateType.MIN:
            estimate = (
                float(matched_values.min()) if matched_values.size else float("nan")
            )
        else:
            estimate = (
                float(matched_values.max()) if matched_values.size else float("nan")
            )

        if agg in (AggregateType.MIN, AggregateType.MAX):
            variance = 0.0 if exact_scramble else float("nan")
        else:
            variance = 0.0 if exact_scramble else self._block_variance(agg, match_mask)
        if math.isnan(variance):
            half_width = float("nan")
        else:
            half_width = lam * math.sqrt(max(variance, 0.0))
        return AQPResult(
            estimate=estimate,
            ci_half_width=half_width,
            variance=variance,
            tuples_processed=self.scramble_size,
            tuples_skipped=self._population_size - self.scramble_size,
            exact=exact_scramble,
        )

    def _block_variance(self, agg: AggregateType, match_mask: np.ndarray) -> float:
        """Variance of the estimator from per-block (subsample) estimates."""
        block_estimates = []
        block_weight = self._n_blocks / self._ratio
        for block in range(self._n_blocks):
            block_mask = self._blocks == block
            in_block = match_mask & block_mask
            if agg == AggregateType.COUNT:
                block_estimates.append(float(in_block.sum()) * block_weight)
            elif agg == AggregateType.SUM:
                block_estimates.append(
                    float(self._values[in_block].sum()) * block_weight
                )
            else:  # AVG
                matched = self._values[in_block]
                if matched.size == 0:
                    continue
                block_estimates.append(float(matched.mean()))
        if len(block_estimates) <= 1:
            return float("nan")
        estimates = np.asarray(block_estimates)
        # Variance of the mean of the (approximately independent) block estimates.
        return float(np.var(estimates)) / len(block_estimates)
