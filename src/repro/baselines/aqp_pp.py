"""AQP++ baseline (Peng et al., SIGMOD 2018).

AQP++ precomputes a set of aggregate queries over a flat partitioning chosen
by a hill-climbing heuristic, matches a new query to the closest precomputed
aggregates, and approximates the remaining "gap" with a **uniform** sample of
the whole table.  The two structural differences from PASS highlighted by the
paper are therefore reproduced faithfully:

* the partitioning comes from hill climbing rather than the provable dynamic
  program; and
* the gap is estimated from a global uniform sample rather than stratified
  samples confined to the partially overlapped partitions.
"""

from __future__ import annotations

import math
import time
from typing import Sequence

import numpy as np

from repro.aggregation.partition import PartitionStats
from repro.aggregation.strat_agg import hard_bounds
from repro.data.table import Table
from repro.partitioning.equal import equal_depth_partition
from repro.partitioning.hill_climbing import hill_climbing_partition
from repro.partitioning.kdtree import kd_partition
from repro.query.aggregates import AggregateType
from repro.query.predicate import Box, Relation
from repro.query.query import AggregateQuery
from repro.result import AQPResult, LAMBDA_99
from repro.sampling.estimators import (
    EstimateWithVariance,
    ratio_estimate,
)

__all__ = ["AQPPlusPlus"]


class AQPPlusPlus:
    """Precomputed partition aggregates plus a global uniform sample.

    Parameters
    ----------
    table:
        Source table.
    value_column:
        Aggregation column.
    predicate_columns:
        Predicate columns; one column uses the 1-D hill-climbing partitioner,
        several columns use a breadth-first k-d tree (the construction the
        paper describes for its multi-dimensional AQP++ comparison).
    n_partitions:
        Number of precomputed partitions ``B``.
    sample_rate / sample_size:
        Uniform sampling budget used for gap estimation.
    partitioner:
        ``"hill"`` (default, the AQP++ heuristic) or ``"equal"``.
    boxes:
        Pre-computed partition boxes; when given, the internal partitioner is
        skipped (used by the workload-shift experiment to reuse a 2-D
        partitioning for other query templates).
    rng:
        Numpy generator or seed.
    """

    def __init__(
        self,
        table: Table,
        value_column: str,
        predicate_columns: Sequence[str],
        n_partitions: int = 64,
        sample_rate: float | None = 0.005,
        sample_size: int | None = None,
        partitioner: str = "hill",
        lam: float = LAMBDA_99,
        opt_sample_size: int | None = None,
        boxes: Sequence[Box] | None = None,
        rng: np.random.Generator | int | None = 0,
    ) -> None:
        if (sample_rate is None) == (sample_size is None):
            raise ValueError("provide exactly one of sample_rate or sample_size")
        if partitioner not in ("hill", "equal"):
            raise ValueError("partitioner must be 'hill' or 'equal'")
        generator = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )
        start = time.perf_counter()
        self._value_column = value_column
        self._predicate_columns = list(predicate_columns)
        self._lam = lam
        self._population_size = table.n_rows

        # --- choose the precomputed partitions -------------------------------
        if boxes is not None:
            boxes = list(boxes)
        elif len(self._predicate_columns) > 1:
            kd_result = kd_partition(
                table,
                value_column,
                self._predicate_columns,
                n_partitions,
                policy="breadth_first",
                opt_sample_size=opt_sample_size,
                rng=generator,
            )
            boxes = list(kd_result.boxes)
        elif partitioner == "equal":
            boxes = equal_depth_partition(
                table, self._predicate_columns[0], n_partitions
            )
        else:
            result = hill_climbing_partition(
                table,
                value_column,
                self._predicate_columns[0],
                n_partitions,
                opt_sample_size=opt_sample_size,
                rng=generator,
            )
            boxes = list(result.boxes)
        self._boxes = boxes

        # --- precompute the partition aggregates ------------------------------
        values = table.column(value_column).astype(float)
        self._stats: list[PartitionStats] = []
        self._sizes: list[int] = []
        for box in boxes:
            mask = box.mask(table.columns(box.columns))
            self._stats.append(PartitionStats.from_values(values[mask]))
            self._sizes.append(int(mask.sum()))

        # --- draw the global uniform sample -----------------------------------
        if sample_rate is not None:
            sample_size = max(1, int(round(sample_rate * table.n_rows)))
        sample_size = min(sample_size, table.n_rows)
        keep_columns = [value_column] + [
            column for column in self._predicate_columns if column != value_column
        ]
        box_columns = sorted({col for box in boxes for col in box.columns})
        for column in box_columns:
            if column not in keep_columns:
                keep_columns.append(column)
        sample_table = table.project(keep_columns).sample(sample_size, generator)
        self._sample = sample_table
        self._sample_values = sample_table.column(value_column).astype(float)
        self.build_seconds = time.perf_counter() - start

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_partitions(self) -> int:
        """Number of precomputed partitions."""
        return len(self._boxes)

    @property
    def sample_size(self) -> int:
        """Size of the global uniform sample."""
        return self._sample.n_rows

    def storage_bytes(self) -> int:
        """Approximate synopsis footprint (aggregates plus sample)."""
        return len(self._boxes) * 5 * 8 + self._sample.memory_bytes()

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def query(self, query: AggregateQuery, lam: float | None = None) -> AQPResult:
        """Answer a query: exact covered partitions + uniform-sample gap."""
        if query.value_column != self._value_column:
            raise ValueError(
                f"synopsis was built for column {self._value_column!r}, "
                f"query aggregates {query.value_column!r}"
            )
        lam = self._lam if lam is None else lam
        agg = query.agg
        covered_idx, partial_idx = self._classify(query)
        covered_stats = [self._stats[i] for i in covered_idx]
        partial_stats = [self._stats[i] for i in partial_idx]
        bounds = hard_bounds(agg, covered_stats, partial_stats)

        if agg in (AggregateType.MIN, AggregateType.MAX):
            estimate = bounds.upper if agg == AggregateType.MAX else bounds.lower
            exact = not partial_idx
            return AQPResult(
                estimate=estimate,
                ci_half_width=0.0 if exact else float("nan"),
                variance=0.0 if exact else float("nan"),
                hard_lower=bounds.lower,
                hard_upper=bounds.upper,
                tuples_processed=0 if exact else self.sample_size,
                tuples_skipped=self._population_size,
                exact=exact,
            )

        if agg == AggregateType.AVG:
            numerator = self._estimate(
                AggregateType.SUM, query, covered_idx, partial_idx
            )
            denominator = self._estimate(
                AggregateType.COUNT, query, covered_idx, partial_idx
            )
            if denominator.estimate == 0:
                estimate = EstimateWithVariance(float("nan"), float("nan"))
            elif not partial_idx:
                estimate = EstimateWithVariance(
                    numerator.estimate / denominator.estimate, 0.0
                )
            else:
                estimate = ratio_estimate(numerator, denominator)
        else:
            estimate = self._estimate(agg, query, covered_idx, partial_idx)

        exact = not partial_idx
        if exact:
            half_width, variance = 0.0, 0.0
        elif math.isnan(estimate.variance):
            half_width, variance = float("nan"), float("nan")
        else:
            variance = estimate.variance
            half_width = lam * math.sqrt(max(variance, 0.0))
        processed = 0 if exact else self.sample_size
        skipped = sum(self._sizes[i] for i in covered_idx)
        return AQPResult(
            estimate=estimate.estimate,
            ci_half_width=half_width,
            variance=variance,
            hard_lower=bounds.lower,
            hard_upper=bounds.upper,
            tuples_processed=processed,
            tuples_skipped=skipped,
            exact=exact,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _classify(self, query: AggregateQuery) -> tuple[list[int], list[int]]:
        covered: list[int] = []
        partial: list[int] = []
        for index, box in enumerate(self._boxes):
            relation = query.predicate.relation_to_box(box)
            if relation == Relation.COVER:
                covered.append(index)
            elif relation == Relation.PARTIAL:
                partial.append(index)
        return covered, partial

    def _estimate(
        self,
        agg: AggregateType,
        query: AggregateQuery,
        covered_idx: list[int],
        partial_idx: list[int],
    ) -> EstimateWithVariance:
        """Exact covered part plus a uniform-sample estimate of the gap."""
        if agg == AggregateType.SUM:
            exact_part = sum(self._stats[i].sum for i in covered_idx)
        else:
            exact_part = float(sum(self._stats[i].count for i in covered_idx))
        if not partial_idx:
            return EstimateWithVariance(exact_part, 0.0)

        # Gap = tuples matching the predicate inside the partially covered
        # partitions; estimated by restricting the global uniform sample to
        # those partitions and scaling by N / K.
        predicate_mask = (
            np.ones(self.sample_size, dtype=bool)
            if len(query.predicate) == 0
            else query.predicate.mask(self._sample.columns(query.predicate.columns))
        )
        partial_mask = np.zeros(self.sample_size, dtype=bool)
        for index in partial_idx:
            box = self._boxes[index]
            partial_mask |= box.mask(self._sample.columns(box.columns))
        gap_mask = predicate_mask & partial_mask
        if agg == AggregateType.SUM:
            phi = gap_mask.astype(float) * self._sample_values * self._population_size
        else:
            phi = gap_mask.astype(float) * self._population_size
        gap_estimate = float(phi.mean())
        gap_variance = (
            float(np.var(phi)) / self.sample_size if self.sample_size > 1 else 0.0
        )
        return EstimateWithVariance(exact_part + gap_estimate, gap_variance)
