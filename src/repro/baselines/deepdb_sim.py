"""A DeepDB-style learned-model baseline (Hilprecht et al., VLDB 2020).

DeepDB learns a relational sum-product network over a sample of the data and
answers aggregate queries from the model alone — no per-query data access.
The reproduction keeps the characteristics that matter for the paper's
end-to-end comparison (Table 2):

* the model is *trained* from a sample of the data (10% or 100%);
* query answering touches only the model (lowest latency of all systems);
* per-column distributions are captured well, so 1-D workloads are answered
  accurately, but correlations across predicate columns are only captured
  through an independence-style factorization, so accuracy degrades on
  higher-dimensional templates — the same qualitative behaviour Table 2
  reports for DeepDB.

The model stores, per predicate column, an equi-depth histogram of the column
together with the per-bin count and per-bin sum of the aggregation column.
COUNT uses a product of per-column selectivities; AVG combines per-column
conditional means; SUM is their product.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.data.table import Table
from repro.query.aggregates import AggregateType
from repro.query.query import AggregateQuery
from repro.result import AQPResult

__all__ = ["DeepDBModel"]


@dataclass
class _ColumnModel:
    """Histogram model of one predicate column.

    ``edges`` has ``n_bins + 1`` entries; bin ``i`` covers
    ``[edges[i], edges[i+1])`` except the last bin, which is closed.
    """

    edges: np.ndarray
    counts: np.ndarray
    value_sums: np.ndarray

    @property
    def total_count(self) -> float:
        return float(self.counts.sum())

    def range_fraction(self, low: float, high: float) -> float:
        """Estimated fraction of rows with the column inside ``[low, high]``."""
        if self.total_count == 0:
            return 0.0
        overlap = _bin_overlap(self.edges, low, high)
        return float((overlap * self.counts).sum()) / self.total_count

    def range_mean(self, low: float, high: float) -> float:
        """Estimated mean of the aggregation column conditioned on the range."""
        overlap = _bin_overlap(self.edges, low, high)
        count = float((overlap * self.counts).sum())
        if count == 0:
            return float("nan")
        return float((overlap * self.value_sums).sum()) / count


def _bin_overlap(edges: np.ndarray, low: float, high: float) -> np.ndarray:
    """Fraction of each histogram bin overlapped by ``[low, high]``.

    Within a bin the rows are assumed uniformly distributed (the standard
    histogram interpolation assumption).
    """
    left = edges[:-1]
    right = edges[1:]
    width = np.maximum(right - left, 1e-300)
    inter_low = np.maximum(left, low)
    inter_high = np.minimum(right, high)
    overlap = np.clip((inter_high - inter_low) / width, 0.0, 1.0)
    # Degenerate bins (repeated edges) are either fully in or out.
    degenerate = right <= left
    if degenerate.any():
        inside = (left >= low) & (left <= high)
        overlap = np.where(degenerate, inside.astype(float), overlap)
    return overlap


class DeepDBModel:
    """A factorized histogram model trained from a data sample.

    Parameters
    ----------
    table:
        Source table.
    value_column / predicate_columns:
        Column roles.
    training_ratio:
        Fraction of the table sampled for training (0.1 and 1.0 in Table 2).
    n_bins:
        Number of equi-depth bins per predicate column.
    rng:
        Numpy generator or seed.
    """

    def __init__(
        self,
        table: Table,
        value_column: str,
        predicate_columns: Sequence[str],
        training_ratio: float = 0.1,
        n_bins: int = 64,
        rng: np.random.Generator | int | None = 0,
    ) -> None:
        if not 0.0 < training_ratio <= 1.0:
            raise ValueError("training_ratio must be in (0, 1]")
        if n_bins < 2:
            raise ValueError("n_bins must be at least 2")
        generator = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )
        start = time.perf_counter()
        self._value_column = value_column
        self._predicate_columns = list(predicate_columns)
        self._population_size = table.n_rows

        training_size = max(2, int(round(training_ratio * table.n_rows)))
        keep_columns = [value_column] + [
            column for column in self._predicate_columns if column != value_column
        ]
        training = table.project(keep_columns).sample(
            min(training_size, table.n_rows), generator
        )
        values = training.column(value_column).astype(float)
        self._global_mean = float(values.mean()) if values.size else float("nan")

        self._columns: Dict[str, _ColumnModel] = {}
        for column in self._predicate_columns:
            keys = training.column(column).astype(float)
            edges = np.quantile(keys, np.linspace(0.0, 1.0, n_bins + 1))
            edges = np.asarray(edges, dtype=float)
            edges[-1] = np.nextafter(edges[-1], np.inf)
            bins = np.clip(
                np.searchsorted(edges, keys, side="right") - 1, 0, n_bins - 1
            )
            counts = np.bincount(bins, minlength=n_bins).astype(float)
            value_sums = np.bincount(bins, weights=values, minlength=n_bins)
            self._columns[column] = _ColumnModel(
                edges=edges, counts=counts, value_sums=value_sums
            )
        self.build_seconds = time.perf_counter() - start

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def population_size(self) -> int:
        """Number of rows in the original table."""
        return self._population_size

    def storage_bytes(self) -> int:
        """Approximate model footprint (histogram arrays)."""
        total = 0
        for model in self._columns.values():
            total += model.edges.nbytes + model.counts.nbytes + model.value_sums.nbytes
        return total

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def query(self, query: AggregateQuery, lam: float | None = None) -> AQPResult:
        """Answer a query from the model only (no data access)."""
        if query.value_column != self._value_column:
            raise ValueError(
                f"model was trained for column {self._value_column!r}, "
                f"query aggregates {query.value_column!r}"
            )
        agg = query.agg
        predicate = query.predicate
        constrained = [
            column for column in predicate.columns if column in self._columns
        ]

        selectivity = 1.0
        conditional_means = []
        for column in constrained:
            interval = predicate.interval(column)
            model = self._columns[column]
            selectivity *= model.range_fraction(interval.low, interval.high)
            mean = model.range_mean(interval.low, interval.high)
            if not np.isnan(mean):
                conditional_means.append(mean)

        count_estimate = selectivity * self._population_size
        if conditional_means:
            avg_estimate = float(np.mean(conditional_means))
        else:
            avg_estimate = self._global_mean

        if agg == AggregateType.COUNT:
            estimate = count_estimate
        elif agg == AggregateType.SUM:
            estimate = count_estimate * avg_estimate
        elif agg == AggregateType.AVG:
            estimate = avg_estimate if count_estimate > 0 else float("nan")
        else:
            # MIN / MAX are not meaningfully supported by the density model.
            estimate = float("nan")

        return AQPResult(
            estimate=estimate,
            ci_half_width=float("nan"),
            variance=float("nan"),
            tuples_processed=0,
            tuples_skipped=self._population_size,
            exact=False,
        )
