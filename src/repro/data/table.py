"""A tiny numpy-backed column store.

The paper's problem setup (Section 2) works over a collection of tuples
``P = {(c_i, a_i)}`` where ``c_i`` are predicate attributes and ``a_i`` is the
numeric aggregation attribute.  :class:`Table` holds those attributes as named
numpy columns and offers just enough relational machinery for the rest of the
library: schema introspection, row selection by boolean mask, row sampling,
sorting, and vertical projection.

The class is deliberately small — it is a substrate, not a DBMS.  Everything
the synopses need (ground truth evaluation, stratification, sampling) is a
vectorised numpy operation over these columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Sequence

import numpy as np

__all__ = ["Column", "Table"]


@dataclass(frozen=True)
class Column:
    """A named, immutable numeric column.

    Parameters
    ----------
    name:
        Column name used in predicates and aggregate specifications.
    values:
        One-dimensional numpy array of numeric values.  The array is stored
        as-is (no copy) but flagged non-writeable to keep tables immutable.
    """

    name: str
    values: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.values)
        if values.ndim != 1:
            raise ValueError(
                f"column {self.name!r} must be one-dimensional, "
                f"got shape {values.shape}"
            )
        if not np.issubdtype(values.dtype, np.number) and values.dtype != np.bool_:
            raise TypeError(
                f"column {self.name!r} must be numeric or boolean, "
                f"got dtype {values.dtype}"
            )
        object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return int(self.values.shape[0])

    @property
    def dtype(self) -> np.dtype:
        """The numpy dtype of the column values."""
        return self.values.dtype

    def min(self) -> float:
        """Minimum value of the column (nan for empty columns)."""
        return float(self.values.min()) if len(self) else float("nan")

    def max(self) -> float:
        """Maximum value of the column (nan for empty columns)."""
        return float(self.values.max()) if len(self) else float("nan")


class Table:
    """An immutable, numpy-backed relational table.

    A :class:`Table` is an ordered mapping of column names to equal-length
    numpy arrays.  All operations return new tables (or numpy views); the
    underlying arrays are never mutated.

    Parameters
    ----------
    columns:
        Mapping of column name to 1-D array-like of values.  All columns must
        have the same length.
    name:
        Optional human-readable table name, used in reports and ``repr``.
    """

    def __init__(self, columns: Mapping[str, Iterable], name: str = "table") -> None:
        self._name = name
        self._columns: Dict[str, np.ndarray] = {}
        n_rows: int | None = None
        for col_name, values in columns.items():
            array = np.asarray(values)
            if array.ndim != 1:
                raise ValueError(
                    f"column {col_name!r} must be one-dimensional, "
                    f"got shape {array.shape}"
                )
            if n_rows is None:
                n_rows = array.shape[0]
            elif array.shape[0] != n_rows:
                raise ValueError(
                    f"column {col_name!r} has {array.shape[0]} rows, expected {n_rows}"
                )
            self._columns[col_name] = array
        self._n_rows = int(n_rows or 0)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_columns(cls, name: str = "table", **columns: Iterable) -> "Table":
        """Build a table from keyword column arrays.

        Example
        -------
        >>> t = Table.from_columns(time=[1, 2, 3], light=[10.0, 11.0, 9.5])
        >>> t.n_rows
        3
        """
        return cls(columns, name=name)

    @classmethod
    def from_records(
        cls, records: Sequence[Mapping[str, float]], name: str = "table"
    ) -> "Table":
        """Build a table from a sequence of row dictionaries.

        All records must share exactly the same keys.
        """
        if not records:
            return cls({}, name=name)
        keys = list(records[0].keys())
        columns = {key: np.array([record[key] for record in records]) for key in keys}
        return cls(columns, name=name)

    # ------------------------------------------------------------------
    # Schema and access
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Human-readable table name."""
        return self._name

    @property
    def n_rows(self) -> int:
        """Number of rows in the table."""
        return self._n_rows

    @property
    def column_names(self) -> list[str]:
        """Names of all columns, in insertion order."""
        return list(self._columns.keys())

    def __len__(self) -> int:
        return self._n_rows

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._columns

    def __iter__(self) -> Iterator[str]:
        return iter(self._columns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(self.column_names)
        return f"Table(name={self._name!r}, n_rows={self._n_rows}, columns=[{cols}])"

    def column(self, column_name: str) -> np.ndarray:
        """Return the raw numpy array of a column.

        Raises
        ------
        KeyError
            If the column does not exist; the error message lists available
            column names to aid debugging.
        """
        try:
            return self._columns[column_name]
        except KeyError:
            available = ", ".join(self.column_names)
            raise KeyError(
                f"unknown column {column_name!r}; available columns: {available}"
            ) from None

    def columns(self, column_names: Sequence[str]) -> Dict[str, np.ndarray]:
        """Return a dict of the requested columns (raw arrays)."""
        return {name: self.column(name) for name in column_names}

    # ------------------------------------------------------------------
    # Relational-ish operations
    # ------------------------------------------------------------------
    def select(self, mask: np.ndarray, name: str | None = None) -> "Table":
        """Return a new table containing only rows where ``mask`` is True."""
        mask = np.asarray(mask)
        if mask.dtype != np.bool_:
            raise TypeError("select() expects a boolean mask")
        if mask.shape[0] != self._n_rows:
            raise ValueError(
                f"mask has {mask.shape[0]} entries, table has {self._n_rows} rows"
            )
        return Table(
            {col: values[mask] for col, values in self._columns.items()},
            name=name or self._name,
        )

    def take(self, indices: np.ndarray, name: str | None = None) -> "Table":
        """Return a new table containing the rows at ``indices`` (in order)."""
        indices = np.asarray(indices)
        return Table(
            {col: values[indices] for col, values in self._columns.items()},
            name=name or self._name,
        )

    def project(self, column_names: Sequence[str], name: str | None = None) -> "Table":
        """Return a new table with only the requested columns."""
        return Table(
            {col: self.column(col) for col in column_names},
            name=name or self._name,
        )

    def sort_by(self, column_name: str, name: str | None = None) -> "Table":
        """Return a new table sorted ascending by ``column_name`` (stable)."""
        order = np.argsort(self.column(column_name), kind="stable")
        return self.take(order, name=name)

    def sample(
        self,
        n: int,
        rng: np.random.Generator,
        replace: bool = False,
        name: str | None = None,
    ) -> "Table":
        """Return a uniform random sample of ``n`` rows.

        Parameters
        ----------
        n:
            Number of rows to draw.  Clamped to the table size when sampling
            without replacement.
        rng:
            Numpy random generator to draw from (callers own the seed).
        replace:
            Sample with replacement when True.
        """
        if n < 0:
            raise ValueError("sample size must be non-negative")
        if not replace:
            n = min(n, self._n_rows)
        indices = rng.choice(self._n_rows, size=n, replace=replace)
        return self.take(indices, name=name)

    def head(self, n: int = 5) -> "Table":
        """Return the first ``n`` rows (useful for inspection in examples)."""
        return self.take(np.arange(min(n, self._n_rows)))

    def concat(self, other: "Table", name: str | None = None) -> "Table":
        """Vertically concatenate two tables with identical schemas."""
        if set(self.column_names) != set(other.column_names):
            raise ValueError(
                "cannot concatenate tables with different schemas: "
                f"{self.column_names} vs {other.column_names}"
            )
        return Table(
            {
                col: np.concatenate([self.column(col), other.column(col)])
                for col in self.column_names
            },
            name=name or self._name,
        )

    # ------------------------------------------------------------------
    # Statistics helpers used throughout the synopses
    # ------------------------------------------------------------------
    def column_bounds(self, column_name: str) -> tuple[float, float]:
        """Return ``(min, max)`` of a column; ``(nan, nan)`` when empty."""
        values = self.column(column_name)
        if values.shape[0] == 0:
            return (float("nan"), float("nan"))
        return (float(values.min()), float(values.max()))

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the column data in bytes."""
        return int(sum(values.nbytes for values in self._columns.values()))

    def to_records(self) -> list[dict[str, float]]:
        """Materialise the table as a list of row dictionaries (small tables)."""
        names = self.column_names
        arrays = [self._columns[name] for name in names]
        return [
            {name: array[i].item() for name, array in zip(names, arrays)}
            for i in range(self._n_rows)
        ]
