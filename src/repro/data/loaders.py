"""Dataset loaders keyed by name.

The experiment harness refers to datasets by short names ("intel", "instacart",
"nyc", "adversarial").  :func:`load_dataset` resolves those names to the
surrogate generators in :mod:`repro.data.generators` together with the default
aggregation / predicate column choices used by the paper's experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.data.generators import (
    adversarial,
    instacart_like,
    intel_wireless_like,
    nyc_taxi_like,
)
from repro.data.table import Table

__all__ = ["DatasetSpec", "DATASET_LOADERS", "load_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """A loaded dataset plus the column roles the paper's experiments use.

    Attributes
    ----------
    table:
        The loaded :class:`~repro.data.table.Table`.
    value_column:
        Name of the aggregation column (``A`` in the paper).
    predicate_columns:
        Names of the predicate columns (``C1..Cd``), in the order the
        multi-dimensional query templates add them.
    """

    table: Table
    value_column: str
    predicate_columns: tuple[str, ...]

    @property
    def default_predicate_column(self) -> str:
        """The single predicate column used by the 1-D experiments."""
        return self.predicate_columns[0]


def _seed_kwargs(seed: int | None) -> dict:
    """Only forward an explicit seed so generator defaults stay deterministic."""
    return {} if seed is None else {"seed": seed}


def _load_intel(n_rows: int, seed: int | None) -> DatasetSpec:
    table = intel_wireless_like(n_rows=n_rows, **_seed_kwargs(seed))
    return DatasetSpec(table=table, value_column="light", predicate_columns=("time",))


def _load_instacart(n_rows: int, seed: int | None) -> DatasetSpec:
    table = instacart_like(n_rows=n_rows, **_seed_kwargs(seed))
    return DatasetSpec(
        table=table, value_column="reordered", predicate_columns=("product_id",)
    )


def _load_nyc(n_rows: int, seed: int | None) -> DatasetSpec:
    table = nyc_taxi_like(n_rows=n_rows, **_seed_kwargs(seed))
    return DatasetSpec(
        table=table,
        value_column="trip_distance",
        predicate_columns=(
            "pickup_time",
            "pickup_date",
            "pu_location_id",
            "dropoff_date",
            "dropoff_time",
        ),
    )


def _load_adversarial(n_rows: int, seed: int | None) -> DatasetSpec:
    table = adversarial(n_rows=n_rows, **_seed_kwargs(seed))
    return DatasetSpec(table=table, value_column="value", predicate_columns=("key",))


DATASET_LOADERS: Dict[str, Callable[[int, int | None], DatasetSpec]] = {
    "intel": _load_intel,
    "instacart": _load_instacart,
    "nyc": _load_nyc,
    "adversarial": _load_adversarial,
}

_DEFAULT_SIZES = {
    "intel": 100_000,
    "instacart": 100_000,
    "nyc": 150_000,
    "adversarial": 100_000,
}


def load_dataset(
    name: str, n_rows: int | None = None, seed: int | None = None
) -> DatasetSpec:
    """Load a dataset surrogate by name.

    Parameters
    ----------
    name:
        One of ``"intel"``, ``"instacart"``, ``"nyc"``, ``"adversarial"``.
    n_rows:
        Number of rows to generate.  Defaults to a scaled-down size that keeps
        the benchmark harness fast; pass the paper's original sizes
        (3M / 1.4M / 7.7M / 1M) for a full-scale run.
    seed:
        Random seed for the generator; defaults to each generator's built-in
        seed so repeated loads are identical.
    """
    try:
        loader = DATASET_LOADERS[name]
    except KeyError:
        known = ", ".join(sorted(DATASET_LOADERS))
        raise KeyError(f"unknown dataset {name!r}; known datasets: {known}") from None
    rows = n_rows if n_rows is not None else _DEFAULT_SIZES[name]
    return loader(rows, seed)
