"""Shared deterministic value hashing (SplitMix64 finalizer).

One implementation of the SplitMix64 mixing core serves both consumers that
must agree on a value's hash forever:

* shard routing (:func:`repro.distributed.planner.hash_assign`) — workers,
  reloads, and the streaming router all need the same owner for a key;
* distinct-count sketching (:class:`repro.sketches.distinct.DistinctSketch`)
  — merged KMV sketches are only comparable because every shard hashes a
  value identically.

The function is pure (no process salt) and hashes the float's bit pattern,
with ``-0.0`` collapsed onto ``+0.0`` so numerically equal keys always
collide on purpose.
"""

from __future__ import annotations

import numpy as np

__all__ = ["splitmix64"]

#: SplitMix64 finalizer multipliers.
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)


def splitmix64(values: np.ndarray) -> np.ndarray:
    """SplitMix64-mixed 64-bit hashes of an array of float values."""
    # +0.0 collapses -0.0 onto +0.0 so numerically equal values share a hash.
    normalized = np.asarray(values, dtype=np.float64) + 0.0
    bits = np.ascontiguousarray(normalized).view(np.uint64)
    with np.errstate(over="ignore"):
        mixed = bits.copy()
        mixed ^= mixed >> np.uint64(30)
        mixed *= _MIX_1
        mixed ^= mixed >> np.uint64(27)
        mixed *= _MIX_2
        mixed ^= mixed >> np.uint64(31)
    return mixed
