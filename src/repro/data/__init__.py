"""Data substrate for the PASS reproduction.

This subpackage provides the minimal column-store table abstraction on top of
numpy (:mod:`repro.data.table`), the synthetic dataset generators that stand in
for the paper's real-world datasets (:mod:`repro.data.generators`), and the
convenience loaders keyed by dataset name (:mod:`repro.data.loaders`).
"""

from repro.data.table import Column, Table
from repro.data.generators import (
    adversarial,
    instacart_like,
    intel_wireless_like,
    nyc_taxi_like,
    uniform_random,
)
from repro.data.loaders import DATASET_LOADERS, load_dataset

__all__ = [
    "Column",
    "Table",
    "adversarial",
    "instacart_like",
    "intel_wireless_like",
    "nyc_taxi_like",
    "uniform_random",
    "DATASET_LOADERS",
    "load_dataset",
]
