"""Synthetic dataset generators standing in for the paper's real datasets.

The paper evaluates PASS on three real datasets (Intel Wireless sensor traces,
Instacart order_products, NYC Taxi trips) plus one synthetic adversarial
dataset.  The raw files are not available offline, so this module generates
surrogates that preserve the statistical structure the experiments depend on:

* ``intel_wireless_like`` — a time-indexed sensor trace whose aggregation
  column (``light``) has strong diurnal structure: the variance *within* a
  time partition is much smaller than the global variance, which is exactly
  the property stratified approaches exploit.
* ``instacart_like`` — a 0/1 aggregation column (``reordered``) whose mean
  varies with a skewed (Zipf-like) ``product_id`` predicate column.
* ``nyc_taxi_like`` — heavy-tailed trip distances with rush-hour structure
  and several correlated predicate columns (pickup time/date, location ids,
  dropoff time/date) used for the multi-dimensional query templates.
* ``adversarial`` — the synthetic dataset of Section 5.3 verbatim: the first
  87.5% of tuples carry aggregate value 0, the final 12.5% are drawn from a
  normal distribution.

Each substitution is documented in DESIGN.md.  Generators take ``n_rows`` so
the paper-scale experiments can be reproduced by passing the original sizes.
"""

from __future__ import annotations

import numpy as np

from repro.data.table import Table

__all__ = [
    "uniform_random",
    "intel_wireless_like",
    "instacart_like",
    "nyc_taxi_like",
    "adversarial",
]


def _make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a Generator from a seed, an existing generator, or None."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def uniform_random(
    n_rows: int = 10_000,
    n_predicate_columns: int = 1,
    seed: int | np.random.Generator | None = 0,
    value_low: float = 0.0,
    value_high: float = 100.0,
) -> Table:
    """A featureless baseline dataset: uniform predicates, uniform values.

    Useful for unit tests and sanity checks where no particular structure is
    desired.  Predicate columns are named ``c0``, ``c1``, ... and the
    aggregation column is ``value``.
    """
    if n_rows <= 0:
        raise ValueError("n_rows must be positive")
    rng = _make_rng(seed)
    columns = {
        f"c{i}": rng.uniform(0.0, 1.0, size=n_rows)
        for i in range(n_predicate_columns)
    }
    columns["value"] = rng.uniform(value_low, value_high, size=n_rows)
    return Table(columns, name="uniform_random")


def intel_wireless_like(
    n_rows: int = 100_000,
    n_sensors: int = 54,
    seed: int | np.random.Generator | None = 7,
) -> Table:
    """Surrogate for the Intel Berkeley lab sensor dataset.

    Columns
    -------
    ``time``
        Fractional timestamp in [0, n_days) days; the predicate column used
        in the paper's 1-D experiments.
    ``sensor_id``
        Integer sensor identifier (kept for realism / extra predicates).
    ``light``
        The aggregation column.  Light follows a day/night cycle (high and
        noisy during the day, near zero at night) plus per-sensor offsets,
        mirroring the bursty structure of the real traces.
    ``temperature``, ``humidity``, ``voltage``
        Additional measurement columns so the schema resembles the original
        8-column table; available as alternative aggregation columns.
    """
    if n_rows <= 0:
        raise ValueError("n_rows must be positive")
    rng = _make_rng(seed)
    n_days = max(1.0, n_rows / 20_000.0)
    time = np.sort(rng.uniform(0.0, n_days, size=n_rows))
    sensor_id = rng.integers(0, n_sensors, size=n_rows)

    # Day/night cycle: daylight fraction of each day has high, noisy light.
    time_of_day = time % 1.0
    is_day = (time_of_day > 0.25) & (time_of_day < 0.75)
    sensor_offset = rng.normal(0.0, 30.0, size=n_sensors)[sensor_id]
    day_light = 400.0 + 250.0 * np.sin((time_of_day - 0.25) * 2.0 * np.pi)
    light = np.where(is_day, day_light + sensor_offset, 2.0)
    light = light + rng.normal(0.0, 25.0, size=n_rows)
    light = np.clip(light, 0.0, None) + 1.0  # strictly positive, as the paper assumes

    temperature = 19.0 + 6.0 * is_day + rng.normal(0.0, 1.5, size=n_rows)
    humidity = 45.0 - 8.0 * is_day + rng.normal(0.0, 4.0, size=n_rows)
    voltage = 2.6 + rng.normal(0.0, 0.05, size=n_rows)

    return Table(
        {
            "time": time,
            "sensor_id": sensor_id,
            "light": light,
            "temperature": temperature,
            "humidity": humidity,
            "voltage": voltage,
        },
        name="intel_wireless_like",
    )


def instacart_like(
    n_rows: int = 100_000,
    n_products: int = 5_000,
    seed: int | np.random.Generator | None = 13,
) -> Table:
    """Surrogate for the Instacart ``order_products`` table.

    Columns
    -------
    ``product_id``
        Predicate column.  Product popularity is Zipf-distributed, so some
        predicate ranges are dense and some are sparse, matching the real
        table's skew.
    ``reordered``
        The 0/1 aggregation column; each product has its own reorder
        probability, so the mean of ``reordered`` varies along the predicate
        axis.
    ``order_id``, ``add_to_cart_order``
        Kept for schema realism.
    """
    if n_rows <= 0:
        raise ValueError("n_rows must be positive")
    rng = _make_rng(seed)

    # Zipf-like popularity over products, then shuffled so popularity is not
    # monotone in product id (as in the real data).
    ranks = np.arange(1, n_products + 1, dtype=float)
    popularity = 1.0 / ranks**1.1
    popularity /= popularity.sum()
    product_perm = rng.permutation(n_products)
    product_id = product_perm[
        rng.choice(n_products, size=n_rows, p=popularity)
    ].astype(float)

    # Per-product reorder probability: smoothly varying in product id with
    # noise, so predicate ranges see genuinely different means.
    base_prob = 0.35 + 0.3 * np.sin(np.linspace(0.0, 6.0 * np.pi, n_products))
    base_prob = np.clip(base_prob + rng.normal(0.0, 0.08, size=n_products), 0.02, 0.98)
    reordered = rng.binomial(1, base_prob[product_id.astype(int)]).astype(float)

    order_id = rng.integers(0, max(1, n_rows // 10), size=n_rows).astype(float)
    add_to_cart_order = rng.integers(1, 30, size=n_rows).astype(float)

    return Table(
        {
            "product_id": product_id,
            "reordered": reordered,
            "order_id": order_id,
            "add_to_cart_order": add_to_cart_order,
        },
        name="instacart_like",
    )


def nyc_taxi_like(
    n_rows: int = 150_000,
    n_zones: int = 265,
    seed: int | np.random.Generator | None = 23,
) -> Table:
    """Surrogate for the NYC TLC yellow-taxi trip records (January 2019).

    Columns (matching the multi-dimensional templates of Section 5.4)
    ------------------------------------------------------------------
    ``pickup_time``
        Time of day in fractional hours [0, 24); primary predicate column.
    ``pickup_date``
        Day of month [1, 31].
    ``pu_location_id``
        Pickup zone id [0, n_zones).
    ``dropoff_date``, ``dropoff_time``
        Correlated with the pickup columns plus the trip duration.
    ``trip_distance``
        The aggregation column: lognormal (heavy-tailed) distances whose mean
        shifts with time of day (longer airport trips at off-peak hours).
    ``fare_amount``, ``passenger_count``
        Additional columns for schema realism and alternative aggregates.
    """
    if n_rows <= 0:
        raise ValueError("n_rows must be positive")
    rng = _make_rng(seed)

    # Time-of-day mixture: morning rush, evening rush, and a uniform base.
    component = rng.choice(3, size=n_rows, p=[0.3, 0.35, 0.35])
    pickup_time = np.empty(n_rows)
    pickup_time[component == 0] = rng.normal(8.5, 1.3, size=(component == 0).sum())
    pickup_time[component == 1] = rng.normal(18.0, 2.0, size=(component == 1).sum())
    pickup_time[component == 2] = rng.uniform(0.0, 24.0, size=(component == 2).sum())
    pickup_time = np.mod(pickup_time, 24.0)

    pickup_date = rng.integers(1, 32, size=n_rows).astype(float)
    pu_location_id = rng.integers(0, n_zones, size=n_rows).astype(float)

    # Distances: lognormal, longer at night (fewer, longer trips).
    night_boost = 0.45 * ((pickup_time < 6.0) | (pickup_time > 22.0))
    zone_effect = 0.15 * np.sin(pu_location_id / n_zones * 2.0 * np.pi)
    trip_distance = rng.lognormal(
        mean=0.7 + night_boost + zone_effect, sigma=0.65, size=n_rows
    )
    trip_distance = np.clip(trip_distance, 0.05, 80.0)

    # Duration correlated with distance; dropoff columns derived from pickup.
    duration_hours = trip_distance / rng.uniform(8.0, 20.0, size=n_rows)
    dropoff_time = np.mod(pickup_time + duration_hours, 24.0)
    dropoff_date = pickup_date + (pickup_time + duration_hours >= 24.0)
    dropoff_date = np.clip(dropoff_date, 1, 31)

    fare_amount = 2.5 + 2.6 * trip_distance + rng.normal(0.0, 1.5, size=n_rows)
    fare_amount = np.clip(fare_amount, 2.5, None)
    passenger_count = rng.choice(
        [1, 2, 3, 4, 5, 6], size=n_rows, p=[0.7, 0.14, 0.06, 0.04, 0.04, 0.02]
    ).astype(float)

    return Table(
        {
            "pickup_time": pickup_time,
            "pickup_date": pickup_date,
            "pu_location_id": pu_location_id,
            "dropoff_date": dropoff_date,
            "dropoff_time": dropoff_time,
            "trip_distance": trip_distance,
            "fare_amount": fare_amount,
            "passenger_count": passenger_count,
        },
        name="nyc_taxi_like",
    )


def adversarial(
    n_rows: int = 100_000,
    zero_fraction: float = 0.875,
    normal_mean: float = 100.0,
    normal_std: float = 25.0,
    seed: int | np.random.Generator | None = 41,
) -> Table:
    """The adversarial dataset of Section 5.3.

    The predicate column ``key`` contains ``n_rows`` unique, sorted values.
    The first ``zero_fraction`` of tuples (87.5% in the paper) have aggregate
    value 0; the remaining tuples are drawn from a normal distribution.  Equal
    partitioning wastes most of its partitions on the constant region, while
    the variance-driven ADP partitioner concentrates partitions on the tail —
    which is exactly what Figure 6 demonstrates.

    As in the paper, the zero region carries aggregate value exactly 0; the
    non-negativity assumption behind the deterministic bounds still holds.
    """
    if n_rows <= 0:
        raise ValueError("n_rows must be positive")
    if not 0.0 < zero_fraction < 1.0:
        raise ValueError("zero_fraction must be in (0, 1)")
    rng = _make_rng(seed)
    n_zero = int(round(n_rows * zero_fraction))
    n_tail = n_rows - n_zero
    key = np.arange(n_rows, dtype=float)
    value = np.concatenate(
        [
            np.zeros(n_zero),
            np.abs(rng.normal(normal_mean, normal_std, size=n_tail)),
        ]
    )
    return Table({"key": key, "value": value}, name="adversarial")
