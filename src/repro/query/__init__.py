"""Query model: rectangular predicates, aggregate queries, exact engine, workloads."""

from repro.query.aggregates import AggregateType
from repro.query.groupby import (
    AggregateSpec,
    GroupByPlan,
    GroupByQuery,
    GroupCell,
    GroupedResult,
    GroupingColumn,
)
from repro.query.predicate import Box, Interval, RectPredicate
from repro.query.query import AggregateQuery, ExactEngine
from repro.query.workload import (
    WorkloadSpec,
    challenging_queries,
    random_range_queries,
    template_queries,
)

__all__ = [
    "AggregateType",
    "AggregateSpec",
    "Box",
    "Interval",
    "RectPredicate",
    "AggregateQuery",
    "ExactEngine",
    "GroupingColumn",
    "GroupByQuery",
    "GroupByPlan",
    "GroupCell",
    "GroupedResult",
    "WorkloadSpec",
    "challenging_queries",
    "random_range_queries",
    "template_queries",
]
