"""Query model: rectangular predicates, aggregate queries, exact engine, workloads."""

from repro.query.aggregates import AggregateType
from repro.query.predicate import Box, Interval, RectPredicate
from repro.query.query import AggregateQuery, ExactEngine
from repro.query.workload import (
    WorkloadSpec,
    challenging_queries,
    random_range_queries,
    template_queries,
)

__all__ = [
    "AggregateType",
    "Box",
    "Interval",
    "RectPredicate",
    "AggregateQuery",
    "ExactEngine",
    "WorkloadSpec",
    "challenging_queries",
    "random_range_queries",
    "template_queries",
]
