"""Aggregate queries and the exact (ground-truth) execution engine.

An :class:`AggregateQuery` is the library's representation of

.. code-block:: sql

   SELECT agg(value_column) FROM table WHERE rect-predicate(C1, ..., Cd)

The :class:`ExactEngine` evaluates queries by a full scan, producing the
ground truth that the AQP synopses are measured against.  It intentionally
has no cleverness — its job is to be obviously correct.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

import numpy as np

from repro.data.table import Table
from repro.query.aggregates import AggregateType, exact_aggregate, normalize_quantile
from repro.query.predicate import RectPredicate

__all__ = ["AggregateQuery", "ExactEngine"]


@dataclass(frozen=True)
class AggregateQuery:
    """A subpopulation-aggregate query.

    Attributes
    ----------
    agg:
        Which aggregate to compute (SUM / COUNT / AVG / MIN / MAX, or the
        sketch aggregates QUANTILE / COUNT_DISTINCT).
    value_column:
        Name of the aggregation column ``A``.
    predicate:
        Rectangular predicate over the predicate columns; use
        :meth:`RectPredicate.everything` for an unfiltered aggregate.
    quantile:
        The QUANTILE parameter ``q`` in ``[0, 1]``; defaults to 0.5 (the
        median) for QUANTILE queries and must be ``None`` for every other
        aggregate.  Part of the canonical identity: ``QUANTILE(0.5)`` and
        ``QUANTILE(0.95)`` hash, compare, and cache as different queries.
    """

    agg: AggregateType
    value_column: str
    predicate: RectPredicate
    quantile: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "agg", AggregateType.parse(self.agg))
        object.__setattr__(
            self, "quantile", normalize_quantile(self.agg, self.quantile)
        )

    @classmethod
    def sum(cls, value_column: str, predicate: RectPredicate) -> "AggregateQuery":
        """Convenience constructor for a SUM query."""
        return cls(AggregateType.SUM, value_column, predicate)

    @classmethod
    def count(cls, value_column: str, predicate: RectPredicate) -> "AggregateQuery":
        """Convenience constructor for a COUNT query."""
        return cls(AggregateType.COUNT, value_column, predicate)

    @classmethod
    def avg(cls, value_column: str, predicate: RectPredicate) -> "AggregateQuery":
        """Convenience constructor for an AVG query."""
        return cls(AggregateType.AVG, value_column, predicate)

    @classmethod
    def at_quantile(
        cls, value_column: str, q: float, predicate: RectPredicate
    ) -> "AggregateQuery":
        """Convenience constructor for a QUANTILE(q) query."""
        return cls(AggregateType.QUANTILE, value_column, predicate, quantile=q)

    @classmethod
    def median(cls, value_column: str, predicate: RectPredicate) -> "AggregateQuery":
        """Convenience constructor for a MEDIAN (QUANTILE(0.5)) query."""
        return cls.at_quantile(value_column, 0.5, predicate)

    @classmethod
    def count_distinct(
        cls, value_column: str, predicate: RectPredicate
    ) -> "AggregateQuery":
        """Convenience constructor for a COUNT_DISTINCT query."""
        return cls(AggregateType.COUNT_DISTINCT, value_column, predicate)

    def with_aggregate(
        self, agg: AggregateType | str, quantile: float | None = None
    ) -> "AggregateQuery":
        """A copy of this query computing a different aggregate.

        ``quantile`` sets the parameter when re-targeting at QUANTILE
        (default: the median); it is dropped when re-targeting elsewhere.
        """
        agg = AggregateType.parse(agg)
        if agg != AggregateType.QUANTILE:
            quantile = None
        return replace(self, agg=agg, quantile=quantile)

    def cache_key(self) -> tuple:
        """A canonical, hashable identity for result caching.

        Two queries that compute the same aggregate of the same column over
        the same region get the same key, regardless of predicate spelling
        (column order, int vs float bounds, explicit unbounded intervals).
        QUANTILE keys additionally carry the quantile parameter, so each
        requested percentile caches separately.  The frozen dataclass
        hash/equality already delegate to the canonical
        :meth:`RectPredicate.canonical_key`, so ``cache_key()`` is simply the
        explicit tuple form for callers that want to key external stores.

        The key is memoized on the (frozen) instance: the serving tier
        computes it on every cache probe, coalescing-admission, and batch
        deduplication step.
        """
        key = getattr(self, "_cache_key_memo", None)
        if key is None:
            agg_key: object = self.agg.value
            if self.quantile is not None:
                agg_key = (self.agg.value, self.quantile)
            key = (agg_key, self.value_column, self.predicate.canonical_key())
            object.__setattr__(self, "_cache_key_memo", key)
        return key

    @property
    def predicate_columns(self) -> list[str]:
        """The columns the predicate constrains."""
        return self.predicate.columns


class ExactEngine:
    """Full-scan query execution over a :class:`~repro.data.table.Table`.

    The engine caches nothing across queries; every call materialises the
    predicate mask and aggregates the matching value rows.  It is the ground
    truth oracle used by the evaluation metrics and by tests.
    """

    def __init__(self, table: Table) -> None:
        self._table = table

    @property
    def table(self) -> Table:
        """The underlying table."""
        return self._table

    def predicate_mask(self, query: AggregateQuery) -> np.ndarray:
        """Boolean mask of the rows matching the query's predicate."""
        predicate = query.predicate
        if len(predicate) == 0:
            return np.ones(self._table.n_rows, dtype=bool)
        columns = self._table.columns(predicate.columns)
        return predicate.mask(columns)

    def selectivity(self, query: AggregateQuery) -> float:
        """Fraction of table rows matching the query's predicate."""
        if self._table.n_rows == 0:
            return 0.0
        return float(self.predicate_mask(query).sum()) / self._table.n_rows

    def execute(self, query: AggregateQuery) -> float:
        """Exact result of the query (ground truth)."""
        mask = self.predicate_mask(query)
        values = self._table.column(query.value_column)[mask]
        return exact_aggregate(query.agg, values, quantile=query.quantile)

    def execute_many(self, queries: Iterable[AggregateQuery]) -> list[float]:
        """Exact results for a sequence of queries."""
        return [self.execute(query) for query in queries]
