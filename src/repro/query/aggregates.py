"""Aggregate function definitions.

PASS supports SUM, COUNT, AVG, MIN and MAX aggregates with predicates
(Section 3.1).  This module defines the :class:`AggregateType` enum shared by
the exact engine, the sampling estimators, and the synopses, plus small
helpers for computing an aggregate exactly over a numpy array.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["AggregateType", "exact_aggregate", "SAMPLING_SUPPORTED", "ALL_AGGREGATES"]


class AggregateType(str, enum.Enum):
    """The aggregate functions supported by the synopsis structures."""

    SUM = "SUM"
    COUNT = "COUNT"
    AVG = "AVG"
    MIN = "MIN"
    MAX = "MAX"

    @classmethod
    def parse(cls, value: "str | AggregateType") -> "AggregateType":
        """Parse an aggregate from a (case-insensitive) string or enum value."""
        if isinstance(value, AggregateType):
            return value
        try:
            return cls(value.upper())
        except (ValueError, AttributeError):
            known = ", ".join(member.value for member in cls)
            raise ValueError(
                f"unknown aggregate {value!r}; expected one of: {known}"
            ) from None


#: Aggregates whose results sampling-based synopses can estimate with CLT
#: confidence intervals.  MIN and MAX are only answered with the deterministic
#: hard bounds of stratified aggregation.
SAMPLING_SUPPORTED = (AggregateType.SUM, AggregateType.COUNT, AggregateType.AVG)

#: All aggregates, in a canonical order.
ALL_AGGREGATES = tuple(AggregateType)


def exact_aggregate(agg: AggregateType, values: np.ndarray) -> float:
    """Compute the exact aggregate of ``values``, treating NaN as SQL NULL.

    NaN entries are ignored by SUM / AVG / MIN / MAX, matching SQL's NULL
    semantics (``SUM(col)`` skips NULL rows); COUNT keeps ``COUNT(*)``
    semantics and counts every row.  Empty and all-NaN inputs follow SQL:
    COUNT is 0 (or the row count for all-NaN), SUM is 0, and AVG / MIN /
    MAX are NaN (SQL NULL).

    Note that only this exact path is NaN-aware: synopsis estimates and
    partition statistics propagate NaN, so aggregation columns containing
    NaN should be cleaned (or filtered) before building a synopsis.
    """
    values = np.asarray(values, dtype=float)
    if agg == AggregateType.COUNT:
        return float(values.shape[0])
    valid = values[~np.isnan(values)] if np.isnan(values).any() else values
    if valid.shape[0] == 0:
        return 0.0 if agg == AggregateType.SUM else float("nan")
    if agg == AggregateType.SUM:
        return float(valid.sum())
    if agg == AggregateType.AVG:
        return float(valid.mean())
    if agg == AggregateType.MIN:
        return float(valid.min())
    if agg == AggregateType.MAX:
        return float(valid.max())
    raise ValueError(f"unsupported aggregate: {agg!r}")
