"""Aggregate function definitions.

PASS supports SUM, COUNT, AVG, MIN and MAX aggregates with predicates
(Section 3.1).  On top of those five *classic* aggregates — whose partition
statistics merge exactly — the reproduction answers two *sketch* aggregates
from mergeable per-leaf summaries (:mod:`repro.sketches`):

* ``QUANTILE`` — the value at a quantile ``q`` of the aggregation column
  (``q`` travels on the query, see
  :attr:`repro.query.query.AggregateQuery.quantile`; ``MEDIAN`` parses to
  ``QUANTILE`` at ``q = 0.5``);
* ``COUNT_DISTINCT`` — the number of distinct non-NaN values.

This module defines the :class:`AggregateType` enum shared by the exact
engine, the sampling estimators, and the synopses, plus small helpers for
computing an aggregate exactly over a numpy array.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = [
    "AggregateType",
    "exact_aggregate",
    "normalize_quantile",
    "SAMPLING_SUPPORTED",
    "ALL_AGGREGATES",
    "CLASSIC_AGGREGATES",
    "SKETCH_AGGREGATES",
]


class AggregateType(str, enum.Enum):
    """The aggregate functions supported by the synopsis structures."""

    SUM = "SUM"
    COUNT = "COUNT"
    AVG = "AVG"
    MIN = "MIN"
    MAX = "MAX"
    QUANTILE = "QUANTILE"
    COUNT_DISTINCT = "COUNT_DISTINCT"

    @classmethod
    def parse(cls, value: "str | AggregateType") -> "AggregateType":
        """Parse an aggregate from a (case-insensitive) string or enum value.

        ``"MEDIAN"`` parses to :attr:`QUANTILE` (queries default the quantile
        parameter to 0.5), and ``"COUNT DISTINCT"`` to
        :attr:`COUNT_DISTINCT`.
        """
        if isinstance(value, AggregateType):
            return value
        try:
            normalized = value.upper().replace(" ", "_")
        except AttributeError:
            normalized = value
        if normalized == "MEDIAN":
            return cls.QUANTILE
        try:
            return cls(normalized)
        except ValueError:
            known = ", ".join(member.value for member in cls)
            raise ValueError(
                f"unknown aggregate {value!r}; expected one of: {known}, MEDIAN"
            ) from None


#: Aggregates whose results sampling-based synopses can estimate with CLT
#: confidence intervals.  MIN and MAX are only answered with the deterministic
#: hard bounds of stratified aggregation.
SAMPLING_SUPPORTED = (AggregateType.SUM, AggregateType.COUNT, AggregateType.AVG)

#: The five classic aggregates with exactly mergeable partition statistics.
CLASSIC_AGGREGATES = (
    AggregateType.SUM,
    AggregateType.COUNT,
    AggregateType.AVG,
    AggregateType.MIN,
    AggregateType.MAX,
)

#: Aggregates answered from mergeable per-leaf sketches (:mod:`repro.sketches`).
SKETCH_AGGREGATES = (AggregateType.QUANTILE, AggregateType.COUNT_DISTINCT)

#: All aggregates, in a canonical order.
ALL_AGGREGATES = tuple(AggregateType)


def normalize_quantile(agg: AggregateType, quantile: float | None) -> float | None:
    """The validated quantile parameter of a query or spec.

    QUANTILE defaults to 0.5 (the median) and requires ``0 <= q <= 1``;
    every other aggregate must leave the parameter unset.  Shared by
    :class:`~repro.query.query.AggregateQuery` and
    :class:`~repro.query.groupby.AggregateSpec` so the two canonical forms
    can never diverge.
    """
    if agg == AggregateType.QUANTILE:
        quantile = 0.5 if quantile is None else float(quantile)
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {quantile}")
        return quantile
    if quantile is not None:
        raise ValueError(
            f"quantile applies only to QUANTILE queries, not {agg.value}"
        )
    return None


def exact_aggregate(
    agg: AggregateType, values: np.ndarray, quantile: float | None = None
) -> float:
    """Compute the exact aggregate of ``values``, treating NaN as SQL NULL.

    NaN entries are ignored by SUM / AVG / MIN / MAX / QUANTILE /
    COUNT_DISTINCT, matching SQL's NULL semantics (``SUM(col)`` skips NULL
    rows, ``COUNT(DISTINCT col)`` counts distinct non-NULL values); COUNT
    keeps ``COUNT(*)`` semantics and counts every row.  Empty and all-NaN
    inputs follow SQL: COUNT and COUNT_DISTINCT are 0 (COUNT is the row
    count for all-NaN), SUM is 0, and AVG / MIN / MAX / QUANTILE are NaN
    (SQL NULL).

    ``quantile`` is the QUANTILE parameter in ``[0, 1]`` (default 0.5, the
    median); QUANTILE interpolates linearly between order statistics like
    ``numpy.quantile``.

    Note that only this exact path is NaN-aware: synopsis estimates and
    partition statistics propagate NaN, so aggregation columns containing
    NaN should be cleaned (or filtered) before building a synopsis.
    """
    values = np.asarray(values, dtype=float)
    if agg == AggregateType.COUNT:
        return float(values.shape[0])
    valid = values[~np.isnan(values)] if np.isnan(values).any() else values
    if agg == AggregateType.COUNT_DISTINCT:
        return float(np.unique(valid).shape[0])
    if valid.shape[0] == 0:
        return 0.0 if agg == AggregateType.SUM else float("nan")
    if agg == AggregateType.SUM:
        return float(valid.sum())
    if agg == AggregateType.AVG:
        return float(valid.mean())
    if agg == AggregateType.MIN:
        return float(valid.min())
    if agg == AggregateType.MAX:
        return float(valid.max())
    if agg == AggregateType.QUANTILE:
        quantile = 0.5 if quantile is None else float(quantile)
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {quantile}")
        return float(np.quantile(valid, quantile))
    raise ValueError(f"unsupported aggregate: {agg!r}")
