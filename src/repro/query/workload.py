"""Workload generators used by the paper's experiments.

Three families of workloads appear in Section 5:

* **Random range queries** (Figures 3–5, Tables 1–3): rectangular predicates
  whose endpoints are drawn from the actual attribute values, so the query
  always overlaps data ("meaningful" queries in the paper's terminology).
* **Challenging queries** (Figures 6–7): queries concentrated in the region of
  the dataset with the maximum aggregate-value variance, where partitioning
  quality matters most.
* **Multi-dimensional template queries** (Figures 8–9): templates Q1..Q5 over
  the first ``i`` predicate columns of the NYC dataset.

All generators are deterministic given an explicit ``numpy`` random generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.table import Table
from repro.query.aggregates import AggregateType
from repro.query.predicate import Interval, RectPredicate
from repro.query.query import AggregateQuery

__all__ = [
    "WorkloadSpec",
    "random_range_queries",
    "challenging_queries",
    "template_queries",
    "max_variance_window",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of a generated workload.

    Attributes
    ----------
    queries:
        The generated queries.
    description:
        Human-readable description used in reports.
    """

    queries: tuple[AggregateQuery, ...]
    description: str = ""

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def with_aggregate(
        self, agg: AggregateType | str, quantile: float | None = None
    ) -> "WorkloadSpec":
        """The same predicates, re-targeted at a different aggregate.

        ``quantile`` applies when re-targeting at QUANTILE (default: the
        median) and is ignored otherwise.
        """
        agg = AggregateType.parse(agg)
        return WorkloadSpec(
            queries=tuple(
                query.with_aggregate(agg, quantile=quantile) for query in self.queries
            ),
            description=f"{self.description} [{agg.value}]",
        )


def _random_interval(
    values: np.ndarray,
    rng: np.random.Generator,
    min_fraction: float,
    max_fraction: float,
) -> Interval:
    """Draw a random interval whose endpoints are actual attribute values.

    The interval's *rank width* (fraction of the sorted attribute values it
    spans) is uniform in ``[min_fraction, max_fraction]``, which gives a
    spread of selectivities similar to the paper's "randomly selected
    queries".
    """
    n = values.shape[0]
    if n == 0:
        raise ValueError("cannot draw an interval from an empty column")
    sorted_values = np.sort(values)
    fraction = rng.uniform(min_fraction, max_fraction)
    width = max(1, int(round(fraction * n)))
    start = int(rng.integers(0, max(1, n - width + 1)))
    end = min(n - 1, start + width - 1)
    return Interval(float(sorted_values[start]), float(sorted_values[end]))


def random_range_queries(
    table: Table,
    value_column: str,
    predicate_columns: Sequence[str],
    n_queries: int,
    agg: AggregateType | str = AggregateType.SUM,
    rng: np.random.Generator | int | None = 0,
    min_fraction: float = 0.01,
    max_fraction: float = 0.5,
    quantile: float | None = None,
) -> WorkloadSpec:
    """Generate random rectangular range queries over the given columns.

    Parameters
    ----------
    table:
        Source table; interval endpoints are drawn from its attribute values.
    value_column:
        Aggregation column of every generated query.
    predicate_columns:
        Columns to constrain; every query constrains all of them.
    n_queries:
        Number of queries to generate.
    agg:
        Aggregate type (SUM by default, matching most of the paper's plots).
    rng:
        Numpy generator or seed.
    min_fraction, max_fraction:
        Range of per-column rank widths; controls query selectivity.
    quantile:
        The QUANTILE parameter when ``agg`` is QUANTILE (default: median).
    """
    if n_queries <= 0:
        raise ValueError("n_queries must be positive")
    if not predicate_columns:
        raise ValueError("at least one predicate column is required")
    generator = (
        rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    )
    agg = AggregateType.parse(agg)
    column_values = {column: table.column(column) for column in predicate_columns}
    queries = []
    for _ in range(n_queries):
        intervals = {
            column: _random_interval(values, generator, min_fraction, max_fraction)
            for column, values in column_values.items()
        }
        queries.append(
            AggregateQuery(
                agg,
                value_column,
                RectPredicate(intervals),
                quantile=quantile if agg == AggregateType.QUANTILE else None,
            )
        )
    description = (
        f"{n_queries} random {agg.value} queries over {list(predicate_columns)} "
        f"on {table.name}"
    )
    return WorkloadSpec(queries=tuple(queries), description=description)


def max_variance_window(
    table: Table,
    value_column: str,
    predicate_column: str,
    window_fraction: float = 0.125,
) -> Interval:
    """Locate the predicate-column window with the largest aggregate variance.

    This mirrors the paper's use of the "fast discretization method" to find
    challenging query regions (Section 5.3): the table is sorted by the
    predicate column and the contiguous window of ``window_fraction`` of the
    rows with the largest variance of the aggregation column is returned.
    """
    if not 0.0 < window_fraction <= 1.0:
        raise ValueError("window_fraction must be in (0, 1]")
    order = np.argsort(table.column(predicate_column), kind="stable")
    keys = table.column(predicate_column)[order]
    values = table.column(value_column)[order].astype(float)
    n = values.shape[0]
    window = max(2, int(round(window_fraction * n)))
    window = min(window, n)

    # Sliding-window variance via prefix sums of values and squared values.
    prefix = np.concatenate([[0.0], np.cumsum(values)])
    prefix_sq = np.concatenate([[0.0], np.cumsum(values**2)])
    starts = np.arange(0, n - window + 1)
    ends = starts + window
    window_sum = prefix[ends] - prefix[starts]
    window_sum_sq = prefix_sq[ends] - prefix_sq[starts]
    variance = window_sum_sq / window - (window_sum / window) ** 2
    best = int(np.argmax(variance))
    return Interval(float(keys[best]), float(keys[best + window - 1]))


def challenging_queries(
    table: Table,
    value_column: str,
    predicate_column: str,
    n_queries: int,
    agg: AggregateType | str = AggregateType.SUM,
    rng: np.random.Generator | int | None = 0,
    window_fraction: float = 0.125,
    min_fraction: float = 0.05,
    max_fraction: float = 0.8,
) -> WorkloadSpec:
    """Generate queries concentrated in the max-variance region of the data.

    The paper's "challenging queries" (Figures 6 and 7) are random queries
    drawn from the interval with the maximum variance.  Here we locate that
    window with :func:`max_variance_window` and draw random sub-intervals of
    it.
    """
    if n_queries <= 0:
        raise ValueError("n_queries must be positive")
    generator = (
        rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    )
    agg = AggregateType.parse(agg)
    hot_window = max_variance_window(
        table, value_column, predicate_column, window_fraction=window_fraction
    )
    keys = table.column(predicate_column)
    in_window = keys[(keys >= hot_window.low) & (keys <= hot_window.high)]
    if in_window.shape[0] < 2:
        raise ValueError("max-variance window contains fewer than 2 tuples")
    queries = []
    for _ in range(n_queries):
        interval = _random_interval(in_window, generator, min_fraction, max_fraction)
        queries.append(
            AggregateQuery(
                agg, value_column, RectPredicate({predicate_column: interval})
            )
        )
    description = (
        f"{n_queries} challenging {agg.value} queries in max-variance window "
        f"{hot_window!r} of {table.name}"
    )
    return WorkloadSpec(queries=tuple(queries), description=description)


def template_queries(
    table: Table,
    value_column: str,
    predicate_columns: Sequence[str],
    n_dimensions: int,
    n_queries: int,
    agg: AggregateType | str = AggregateType.SUM,
    rng: np.random.Generator | int | None = 0,
    min_fraction: float = 0.05,
    max_fraction: float = 0.6,
) -> WorkloadSpec:
    """Generate the i-dimensional query template of Section 5.4.

    The ``i``-th template constrains the first ``i`` predicate columns; all
    other columns are unconstrained.  Used for the multi-dimensional and
    workload-shift experiments (Figures 8 and 9).
    """
    if n_dimensions <= 0 or n_dimensions > len(predicate_columns):
        raise ValueError(
            f"n_dimensions must be in [1, {len(predicate_columns)}], got {n_dimensions}"
        )
    workload = random_range_queries(
        table=table,
        value_column=value_column,
        predicate_columns=list(predicate_columns[:n_dimensions]),
        n_queries=n_queries,
        agg=agg,
        rng=rng,
        min_fraction=min_fraction,
        max_fraction=max_fraction,
    )
    return WorkloadSpec(
        queries=workload.queries,
        description=f"{n_dimensions}D template: {workload.description}",
    )
