"""Rectangular predicates and partition boxes.

The paper restricts queries and partitioning conditions to "rectangular"
conditions ``x_i <= C_i <= y_i`` over the predicate columns (Section 3.1).
Two closely related classes implement that geometry:

* :class:`Interval` — a closed 1-D range ``[low, high]`` with containment /
  overlap algebra.
* :class:`Box` — a named mapping from column name to :class:`Interval`; it is
  the partitioning condition ``psi_i`` attached to a partition-tree node.
* :class:`RectPredicate` — the query-side predicate, also a mapping from
  column name to :class:`Interval`.  Columns not mentioned are unconstrained.

The containment relations between a predicate and a box drive the MCF
algorithm: a box can be *covered* (every tuple in the box satisfies the
predicate), *disjoint* (no tuple can satisfy it), or *partial* (anything
else).  Those relations are decided purely from the interval geometry, never
by scanning tuples, which is what makes the partition tree an index.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

import numpy as np

__all__ = ["Interval", "Box", "RectPredicate", "Relation"]


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[low, high]`` on the real line.

    ``low`` may be ``-inf`` and ``high`` may be ``+inf`` to express one-sided
    or unconstrained ranges.  An interval with ``low > high`` is rejected.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if math.isnan(self.low) or math.isnan(self.high):
            raise ValueError("interval bounds must not be NaN")
        if self.low > self.high:
            raise ValueError(f"invalid interval: low={self.low} > high={self.high}")

    # -- constructors ---------------------------------------------------
    @classmethod
    def unbounded(cls) -> "Interval":
        """The interval covering the whole real line (a shared singleton)."""
        return _UNBOUNDED

    @classmethod
    def at_least(cls, low: float) -> "Interval":
        """The interval ``[low, +inf)``."""
        return cls(low, math.inf)

    @classmethod
    def at_most(cls, high: float) -> "Interval":
        """The interval ``(-inf, high]``."""
        return cls(-math.inf, high)

    @classmethod
    def point(cls, value: float) -> "Interval":
        """The degenerate interval ``[value, value]`` (equality predicate)."""
        return cls(value, value)

    # -- geometry -------------------------------------------------------
    @property
    def width(self) -> float:
        """Length of the interval (may be ``inf``)."""
        return self.high - self.low

    def contains_value(self, value: float) -> bool:
        """True when ``low <= value <= high``."""
        return self.low <= value <= self.high

    def contains_interval(self, other: "Interval") -> bool:
        """True when ``other`` lies entirely inside this interval."""
        return self.low <= other.low and other.high <= self.high

    def overlaps(self, other: "Interval") -> bool:
        """True when the two closed intervals share at least one point."""
        return self.low <= other.high and other.low <= self.high

    def intersect(self, other: "Interval") -> "Interval | None":
        """Return the intersection interval, or None when disjoint."""
        low = max(self.low, other.low)
        high = min(self.high, other.high)
        if low > high:
            return None
        return Interval(low, high)

    def mask(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask of the values falling inside the interval."""
        values = np.asarray(values)
        return (values >= self.low) & (values <= self.high)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.low:g}, {self.high:g}]"


#: Shared unbounded interval: the MCF descent classifies every tree node
#: against the query predicate, so the per-lookup allocation churn of a fresh
#: ``Interval(-inf, inf)`` per unconstrained column is measurable on the
#: serving hot path.
_UNBOUNDED = Interval(-math.inf, math.inf)


class Relation:
    """Symbolic result of comparing a predicate against a box."""

    COVER = "cover"
    PARTIAL = "partial"
    DISJOINT = "disjoint"


class _IntervalMapping:
    """Shared behaviour for Box and RectPredicate (both are column->Interval maps)."""

    def __init__(self, intervals: Mapping[str, Interval]) -> None:
        self._intervals: Dict[str, Interval] = dict(intervals)
        for column, interval in self._intervals.items():
            if not isinstance(interval, Interval):
                raise TypeError(
                    f"column {column!r} must map to an Interval, got {type(interval)!r}"
                )

    @property
    def columns(self) -> list[str]:
        """Columns constrained by this object."""
        return list(self._intervals.keys())

    @property
    def intervals(self) -> Dict[str, Interval]:
        """Copy of the column -> Interval mapping."""
        return dict(self._intervals)

    def interval(self, column: str) -> Interval:
        """The interval constraining ``column`` (unbounded when unconstrained)."""
        return self._intervals.get(column, _UNBOUNDED)

    def __contains__(self, column: str) -> bool:
        return column in self._intervals

    def __len__(self) -> int:
        return len(self._intervals)

    def mask(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        """Boolean row mask over the given column arrays.

        Every constrained column must be present in ``columns``.  Rows must
        satisfy all per-column intervals (conjunction of range conditions).
        """
        mask: np.ndarray | None = None
        for column, interval in self._intervals.items():
            if column not in columns:
                raise KeyError(f"column {column!r} not provided for mask evaluation")
            column_mask = interval.mask(columns[column])
            mask = column_mask if mask is None else (mask & column_mask)
        if mask is None:
            # No constraints: everything matches.  Callers must pass at least
            # one column so the row count is known.
            if not columns:
                raise ValueError("cannot build a mask without any columns")
            any_column = next(iter(columns.values()))
            return np.ones(np.asarray(any_column).shape[0], dtype=bool)
        return mask

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{col}: {iv!r}" for col, iv in self._intervals.items())
        return f"{type(self).__name__}({parts})"


class Box(_IntervalMapping):
    """A rectangular region of the predicate-column space.

    Boxes are the partitioning conditions ``psi_i`` attached to partition-tree
    nodes.  They support the geometric tests the MCF algorithm needs:
    containment inside a predicate, overlap with a predicate, and splitting.
    """

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Box):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._intervals.items(), key=lambda kv: kv[0])))

    @classmethod
    def unbounded(cls, columns: Iterable[str]) -> "Box":
        """A box spanning the whole space over the given columns."""
        return cls({column: Interval.unbounded() for column in columns})

    def contains_box(self, other: "Box") -> bool:
        """True when ``other`` lies entirely inside this box.

        Columns unconstrained in ``self`` impose no restriction; columns
        constrained in ``self`` but unconstrained in ``other`` mean ``other``
        extends outside ``self`` (unless self's interval is unbounded too).
        """
        for column, interval in self._intervals.items():
            if not interval.contains_interval(other.interval(column)):
                return False
        return True

    def overlaps_box(self, other: "Box") -> bool:
        """True when the two boxes share at least one point."""
        for column, interval in self._intervals.items():
            if not interval.overlaps(other.interval(column)):
                return False
        return True

    def intersect(self, other: "Box") -> "Box | None":
        """Return the intersection box, or None when the boxes are disjoint."""
        columns = set(self.columns) | set(other.columns)
        intervals: Dict[str, Interval] = {}
        for column in columns:
            intersection = self.interval(column).intersect(other.interval(column))
            if intersection is None:
                return None
            intervals[column] = intersection
        return Box(intervals)

    def split(self, column: str, split_value: float) -> tuple["Box", "Box"]:
        """Split the box on ``column`` at ``split_value``.

        Returns ``(left, right)`` where the left box covers values strictly
        below ``split_value`` is impossible with closed intervals, so the
        convention is: left covers ``[low, split_value]`` and right covers
        ``(split_value, high]`` approximated as ``[nextafter(split_value),
        high]``.  With continuous data (or tie-broken sort positions upstream)
        this matches the "points to the left / right of the hyperplane"
        description of the k-d tree in Section 4.4.
        """
        interval = self.interval(column)
        if not interval.contains_value(split_value):
            raise ValueError(
                f"split value {split_value} outside interval {interval!r} of {column!r}"
            )
        left_intervals = self.intervals
        right_intervals = self.intervals
        left_intervals[column] = Interval(interval.low, split_value)
        right_intervals[column] = Interval(
            float(np.nextafter(split_value, math.inf)), interval.high
        )
        return Box(left_intervals), Box(right_intervals)


class RectPredicate(_IntervalMapping):
    """A rectangular query predicate ``x_i <= C_i <= y_i``.

    A predicate constrains a subset of the predicate columns; unmentioned
    columns are unconstrained.  The relation of a predicate to a partition box
    (cover / partial / disjoint) is the geometric primitive used by stratified
    aggregation (Section 2.3) and the MCF algorithm (Section 3.2).

    Equality and hashing use the *canonical form* of the predicate: an
    explicitly unbounded interval constrains nothing, so
    ``RectPredicate({"x": Interval.unbounded()})`` equals
    ``RectPredicate.everything()``, column order never matters, and integer
    bounds equal their float counterparts.  This makes predicates (and the
    queries built from them) safe keys for result caches.
    """

    #: Lazily-memoized canonical key (instance attribute shadows this).
    _canonical_key: "tuple[tuple[str, float, float], ...] | None" = None

    def canonical_key(self) -> tuple[tuple[str, float, float], ...]:
        """The predicate's constraints as a canonical, hashable tuple.

        Unbounded intervals are dropped (they constrain nothing), columns are
        sorted, and bounds are coerced to float, so two predicates that match
        exactly the same tuples map to the same key regardless of how they
        were spelled.

        The key is memoized on the instance: predicates are immutable after
        construction and the serving path (cache probes, routing, batch
        compilation) recomputes the key several times per request.
        """
        key = self._canonical_key
        if key is None:
            key = tuple(
                (column, float(interval.low), float(interval.high))
                for column, interval in sorted(self._intervals.items())
                if not (interval.low == -math.inf and interval.high == math.inf)
            )
            self._canonical_key = key
        return key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RectPredicate):
            return NotImplemented
        return self.canonical_key() == other.canonical_key()

    def __hash__(self) -> int:
        return hash(self.canonical_key())

    @classmethod
    def from_bounds(cls, **bounds: tuple[float, float]) -> "RectPredicate":
        """Build a predicate from ``column=(low, high)`` keyword pairs.

        Example
        -------
        >>> RectPredicate.from_bounds(time=(0.0, 3.5), sensor_id=(0, 10))
        RectPredicate(time: [0, 3.5], sensor_id: [0, 10])
        """
        return cls(
            {column: Interval(low, high) for column, (low, high) in bounds.items()}
        )

    @classmethod
    def everything(cls) -> "RectPredicate":
        """The predicate that matches every tuple (no constraints)."""
        return cls({})

    def relation_to_box(self, box: Box) -> str:
        """Classify ``box`` relative to this predicate.

        Returns
        -------
        One of :data:`Relation.COVER` (every point of the box satisfies the
        predicate), :data:`Relation.DISJOINT` (no point can satisfy it), or
        :data:`Relation.PARTIAL`.
        """
        covers = True
        box_intervals = box._intervals
        for column, interval in self._intervals.items():
            box_interval = box_intervals.get(column, _UNBOUNDED)
            # Inlined Interval.overlaps / contains_interval: this classifier
            # runs once per visited tree node per lookup, where the attribute
            # and method dispatch overhead is measurable.
            if interval.low > box_interval.high or box_interval.low > interval.high:
                return Relation.DISJOINT
            if covers and (
                interval.low > box_interval.low or box_interval.high > interval.high
            ):
                covers = False
        return Relation.COVER if covers else Relation.PARTIAL

    def covers_box(self, box: Box) -> bool:
        """True when every point of ``box`` satisfies the predicate."""
        return self.relation_to_box(box) == Relation.COVER

    def overlaps_box(self, box: Box) -> bool:
        """True when the predicate region and the box share at least one point."""
        return self.relation_to_box(box) != Relation.DISJOINT

    def as_box(self, columns: Iterable[str]) -> Box:
        """The predicate region as a Box over the given column set."""
        return Box({column: self.interval(column) for column in columns})
