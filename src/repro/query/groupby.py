"""Group-by / multi-aggregate queries and their compilation to box batches.

Real AQP workloads are dominated by ``GROUP BY`` queries computing several
aggregates at once::

    SELECT g1, g2, SUM(a), COUNT(a), AVG(a)
    FROM table
    WHERE rect-predicate(...)
    GROUP BY bin(g1), g2

PASS has no native group-by operator, but every group cell of a rectangular
grouping *is* a rectangular predicate: binning a column partitions its domain
into disjoint intervals, grouping by distinct values partitions it into
points, and the cross product of the per-column pieces tiles the grouped
space into boxes.  A :class:`GroupByQuery` therefore compiles into a batch of
canonical :class:`~repro.query.query.AggregateQuery` objects — one per
(group cell x aggregate) — that the existing vectorized batch paths execute
with shared mask work:

* :func:`repro.core.batching.grouped_query` on a single synopsis,
* :meth:`repro.serving.engine.ServingEngine.execute_grouped` through the
  serving layer (per-group result caching included), and
* :meth:`repro.distributed.sharded.ShardedSynopsis.query_grouped` by
  scatter-gather with exact mergeable per-group aggregation across shards.

The compiled form is deliberately dumb — plain queries over plain predicates
— so every executor, cache, and persistence layer built for single-aggregate
queries serves grouped traffic unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import product
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.query.aggregates import AggregateType, normalize_quantile
from repro.query.predicate import Interval, RectPredicate
from repro.query.query import AggregateQuery
from repro.result import AQPResult

__all__ = [
    "AggregateSpec",
    "GroupingColumn",
    "GroupByQuery",
    "GroupCell",
    "GroupByPlan",
    "GroupedResult",
    "empty_group_result",
    "execute_plan",
]

#: Refuse distinct-value discovery past this cardinality: a grouping with
#: thousands of cells almost certainly wanted bins, and the compiled batch
#: would be correspondingly huge.
MAX_DISTINCT_VALUES = 1024


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate of a group-by query: ``agg(value_column)``.

    ``quantile`` is the QUANTILE parameter (default 0.5, the median) and
    must be ``None`` for every other aggregate — the same contract as
    :class:`~repro.query.query.AggregateQuery`, so specs with different
    quantiles are distinct aggregates of the same plan.
    """

    agg: AggregateType
    value_column: str
    quantile: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "agg", AggregateType.parse(self.agg))
        object.__setattr__(
            self, "quantile", normalize_quantile(self.agg, self.quantile)
        )

    @property
    def name(self) -> str:
        """SQL-ish display name, e.g. ``"SUM(value)"`` or ``"P95(value)"``."""
        if self.agg == AggregateType.QUANTILE:
            return f"P{self.quantile * 100:g}({self.value_column})"
        return f"{self.agg.value}({self.value_column})"


@dataclass(frozen=True)
class GroupingColumn:
    """One grouping dimension: a column binned by edges or split by value.

    Exactly one grouping mode applies:

    * ``edges`` — explicit bin edges ``e_0 < e_1 < ... < e_k`` producing the
      ``k`` cells ``[e_0, e_1), ..., [e_{k-1}, e_k]`` (the last cell is
      closed so the top edge belongs to a group).  Cell labels are the
      ``(low, high)`` edge pairs.
    * ``values`` — explicit distinct values, one equality cell per value.
    * neither — distinct values are discovered at compile time from a table
      (or any other distinct source handed to :meth:`GroupByQuery.compile`).
    """

    column: str
    edges: tuple[float, ...] | None = None
    values: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.edges is not None and self.values is not None:
            raise ValueError(
                f"grouping column {self.column!r}: give bin edges or distinct "
                "values, not both"
            )
        if self.edges is not None:
            edges = tuple(float(edge) for edge in self.edges)
            if len(edges) < 2:
                raise ValueError(
                    f"grouping column {self.column!r} needs at least 2 bin edges"
                )
            if any(b <= a for a, b in zip(edges, edges[1:])):
                raise ValueError(
                    f"bin edges of {self.column!r} must be strictly increasing"
                )
            object.__setattr__(self, "edges", edges)
        if self.values is not None:
            values = tuple(float(value) for value in self.values)
            if not values:
                raise ValueError(
                    f"grouping column {self.column!r} needs at least one value"
                )
            if len(set(values)) != len(values):
                raise ValueError(f"distinct values of {self.column!r} repeat")
            object.__setattr__(self, "values", values)

    # -- constructors ---------------------------------------------------
    @classmethod
    def bins(cls, column: str, edges: Iterable[float]) -> "GroupingColumn":
        """Group ``column`` into the bins delimited by ``edges``."""
        return cls(column=column, edges=tuple(edges))

    @classmethod
    def distinct(
        cls, column: str, values: Iterable[float] | None = None
    ) -> "GroupingColumn":
        """Group ``column`` by distinct value (discovered when not given)."""
        return cls(column=column, values=None if values is None else tuple(values))

    # -- resolution -----------------------------------------------------
    def resolve(
        self, distinct_source: "DistinctSource | None" = None
    ) -> list[tuple[object, Interval]]:
        """The grouping's ``(label, interval)`` cells, in label order.

        Distinct-value groupings without explicit values need a
        ``distinct_source`` (see :meth:`GroupByQuery.compile`).
        """
        if self.edges is not None:
            cells: list[tuple[object, Interval]] = []
            for low, high in zip(self.edges, self.edges[1:]):
                closed_high = (
                    high
                    if high == self.edges[-1]
                    else float(np.nextafter(high, -math.inf))
                )
                cells.append(((low, high), Interval(low, closed_high)))
            return cells
        values = self.values
        if values is None:
            values = _discover_distinct(self.column, distinct_source)
        return [(value, Interval.point(value)) for value in sorted(values)]


#: Anything :meth:`GroupByQuery.compile` can pull distinct values from: a
#: Table-like object with ``column(name)``, a column-name mapping, or a
#: callable ``column -> values``.
DistinctSource = object


def _discover_distinct(column: str, source: DistinctSource | None) -> list[float]:
    """Distinct values of ``column`` pulled from a compile-time source."""
    if source is None:
        raise ValueError(
            f"grouping column {column!r} uses distinct-value discovery; pass "
            "a table (or explicit values / bin edges) when compiling"
        )
    if callable(getattr(source, "column", None)):  # Table-like
        values = source.column(column)
    elif isinstance(source, Mapping):
        values = source[column]
    elif callable(source):
        values = source(column)
    else:
        raise TypeError(
            f"cannot discover distinct values from {type(source)!r}; expected "
            "a Table, a mapping, or a callable"
        )
    unique = np.unique(np.asarray(values, dtype=float))
    unique = unique[~np.isnan(unique)]
    if unique.shape[0] > MAX_DISTINCT_VALUES:
        raise ValueError(
            f"column {column!r} has {unique.shape[0]} distinct values "
            f"(limit {MAX_DISTINCT_VALUES}); group it with explicit bin edges"
        )
    if unique.shape[0] == 0:
        raise ValueError(f"column {column!r} has no non-NaN values to group by")
    return [float(value) for value in unique]


@dataclass(frozen=True)
class GroupByQuery:
    """A group-by / multi-aggregate query over rectangular group cells.

    Attributes
    ----------
    groupings:
        The grouping dimensions; the group cells are their cross product.
    aggregates:
        The aggregates computed per group cell.
    predicate:
        Optional WHERE-style filter applied to every cell (intersected with
        the cell's grouping intervals at compile time).
    """

    groupings: tuple[GroupingColumn, ...]
    aggregates: tuple[AggregateSpec, ...]
    predicate: RectPredicate = RectPredicate.everything()

    def __post_init__(self) -> None:
        groupings = tuple(self.groupings)
        aggregates = tuple(
            spec
            if isinstance(spec, AggregateSpec)
            else AggregateSpec(
                agg=spec[0],
                value_column=spec[1],
                quantile=spec[2] if len(spec) > 2 else None,
            )
            for spec in self.aggregates
        )
        if not groupings:
            raise ValueError("a group-by query needs at least one grouping column")
        if not aggregates:
            raise ValueError("a group-by query needs at least one aggregate")
        columns = [grouping.column for grouping in groupings]
        if len(set(columns)) != len(columns):
            raise ValueError(f"grouping columns repeat: {columns}")
        if len(set(aggregates)) != len(aggregates):
            raise ValueError("aggregates repeat")
        object.__setattr__(self, "groupings", groupings)
        object.__setattr__(self, "aggregates", aggregates)

    @property
    def group_columns(self) -> tuple[str, ...]:
        """The grouping column names, in grouping order."""
        return tuple(grouping.column for grouping in self.groupings)

    @property
    def value_columns(self) -> tuple[str, ...]:
        """The distinct aggregation columns, in first-use order."""
        seen: dict[str, None] = {}
        for spec in self.aggregates:
            seen.setdefault(spec.value_column, None)
        return tuple(seen)

    def compile(self, distinct_source: DistinctSource | None = None) -> "GroupByPlan":
        """Compile the query into a :class:`GroupByPlan` of canonical boxes.

        Every group cell becomes one rectangular predicate: the cross product
        of the per-column grouping intervals, intersected with the base
        predicate.  Cells whose intersection with the base predicate is empty
        are kept with ``predicate=None`` (they are provably empty groups and
        executors answer them without dispatching anything).
        """
        resolved = [grouping.resolve(distinct_source) for grouping in self.groupings]
        base = self.predicate.intervals
        cells: list[GroupCell] = []
        for combo in product(*resolved):
            intervals = dict(base)
            empty = False
            for grouping, (_, interval) in zip(self.groupings, combo):
                prior = intervals.get(grouping.column)
                merged = interval if prior is None else prior.intersect(interval)
                if merged is None:
                    empty = True
                    break
                intervals[grouping.column] = merged
            cells.append(
                GroupCell(
                    labels=tuple(label for label, _ in combo),
                    predicate=None if empty else RectPredicate(intervals),
                )
            )
        return GroupByPlan(
            group_columns=self.group_columns,
            aggregates=self.aggregates,
            cells=tuple(cells),
        )


@dataclass(frozen=True)
class GroupCell:
    """One group cell: its per-column labels and its rectangular predicate.

    ``predicate`` is ``None`` for cells that cannot contain any tuple (their
    grouping intervals are disjoint from the query's base predicate).
    """

    labels: tuple
    predicate: RectPredicate | None


@dataclass(frozen=True)
class GroupByPlan:
    """A compiled group-by query: group cells x aggregates, in batch form.

    The plan is the hand-off between the query model and the executors: it
    owns the cell enumeration and the flat cell-major query order, so every
    executor (single synopsis, serving engine, sharded scatter-gather)
    assembles its answers into an identically shaped
    :class:`GroupedResult`.
    """

    group_columns: tuple[str, ...]
    aggregates: tuple[AggregateSpec, ...]
    cells: tuple[GroupCell, ...]

    @property
    def n_cells(self) -> int:
        """Number of group cells (including provably empty ones)."""
        return len(self.cells)

    @property
    def n_queries(self) -> int:
        """Number of compiled queries (live cells x aggregates)."""
        return len(self.live_cells()) * len(self.aggregates)

    def live_cells(self, skip: Iterable[int] = ()) -> list[tuple[int, GroupCell]]:
        """The dispatchable ``(cell_index, cell)`` pairs.

        Cells with ``predicate=None`` never dispatch; ``skip`` removes
        further cells an executor pruned (e.g. via frontier statistics).
        """
        skipped = set(skip)
        return [
            (index, cell)
            for index, cell in enumerate(self.cells)
            if cell.predicate is not None and index not in skipped
        ]

    def cell_query(self, cell: GroupCell, spec: AggregateSpec) -> AggregateQuery:
        """The canonical query of one (cell, aggregate) pair."""
        if cell.predicate is None:
            raise ValueError("cannot build a query for a provably empty cell")
        return AggregateQuery(
            spec.agg, spec.value_column, cell.predicate, quantile=spec.quantile
        )

    def queries(self, skip: Iterable[int] = ()) -> list[AggregateQuery]:
        """The compiled batch, cell-major: every aggregate of cell 0, then 1, ..."""
        return [
            self.cell_query(cell, spec)
            for _, cell in self.live_cells(skip)
            for spec in self.aggregates
        ]


def empty_group_result(agg: AggregateType, population: int = 0) -> AQPResult:
    """The exact answer of an aggregate over a provably empty group.

    SQL semantics for an empty group: COUNT / COUNT_DISTINCT are 0, SUM is
    0, and AVG / MIN / MAX / QUANTILE are NaN (NULL).  ``population`` feeds
    ``tuples_skipped`` so the skip-rate telemetry credits the pruning.
    """
    agg = AggregateType.parse(agg)
    zero_valued = (
        AggregateType.SUM,
        AggregateType.COUNT,
        AggregateType.COUNT_DISTINCT,
    )
    value = 0.0 if agg in zero_valued else float("nan")
    return AQPResult(
        estimate=value,
        ci_half_width=0.0,
        variance=0.0,
        hard_lower=value,
        hard_upper=value,
        tuples_processed=0,
        tuples_skipped=population,
        exact=True,
    )


def execute_plan(
    plan: GroupByPlan,
    run_batch: Callable[[list[AggregateQuery]], Sequence[AQPResult]],
    population: int = 0,
    skip: Iterable[int] = (),
) -> "GroupedResult":
    """Dispatch a plan through a batch executor and assemble the result.

    ``run_batch`` receives the flat cell-major query batch of the live,
    non-skipped cells and must return aligned results.  Skipped and provably
    empty cells are answered locally with :func:`empty_group_result`.
    """
    live = plan.live_cells(skip)
    flat = [plan.cell_query(cell, spec) for _, cell in live for spec in plan.aggregates]
    answers = list(run_batch(flat)) if flat else []
    if len(answers) != len(flat):
        raise ValueError(
            f"batch executor returned {len(answers)} results for {len(flat)} queries"
        )
    width = len(plan.aggregates)
    by_cell = {
        index: tuple(answers[slot * width : (slot + 1) * width])
        for slot, (index, _) in enumerate(live)
    }
    pruned = tuple(empty_group_result(spec.agg, population) for spec in plan.aggregates)
    return GroupedResult(
        group_columns=plan.group_columns,
        aggregates=plan.aggregates,
        labels=tuple(cell.labels for cell in plan.cells),
        cells=tuple(by_cell.get(index, pruned) for index in range(plan.n_cells)),
    )


@dataclass(frozen=True)
class GroupedResult:
    """The answer of a group-by query: one :class:`AQPResult` per cell x aggregate.

    Cells appear in plan order (the cross product of the resolved groupings,
    first grouping slowest); ``labels[i]`` carries cell ``i``'s per-column
    group labels.
    """

    group_columns: tuple[str, ...]
    aggregates: tuple[AggregateSpec, ...]
    labels: tuple[tuple, ...]
    cells: tuple[tuple[AQPResult, ...], ...]

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(zip(self.labels, self.cells))

    def estimates(self) -> np.ndarray:
        """Point estimates as a ``(n_cells, n_aggregates)`` float array."""
        return np.array(
            [[result.estimate for result in row] for row in self.cells], dtype=float
        )

    def aggregate_index(self, spec_or_name: AggregateSpec | str) -> int:
        """Position of an aggregate (by spec or display name) in each row."""
        for index, spec in enumerate(self.aggregates):
            if spec == spec_or_name or spec.name == spec_or_name:
                return index
        known = ", ".join(spec.name for spec in self.aggregates)
        raise KeyError(f"no aggregate {spec_or_name!r}; available: {known}")

    def cell(self, labels: Sequence) -> tuple[AQPResult, ...]:
        """The per-aggregate results of the cell with the given labels."""
        labels = tuple(labels)
        for cell_labels, row in zip(self.labels, self.cells):
            if cell_labels == labels:
                return row
        raise KeyError(f"no group cell labeled {labels!r}")

    def to_records(self) -> list[dict]:
        """Rows of ``{group columns..., aggregate name: estimate...}``."""
        records = []
        for cell_labels, row in zip(self.labels, self.cells):
            record: dict = dict(zip(self.group_columns, cell_labels))
            for spec, result in zip(self.aggregates, row):
                record[spec.name] = result.estimate
            records.append(record)
        return records
