"""Reservoir sampling (Vitter's Algorithm R).

Section 4.5 of the paper points out that PASS can maintain statistically
consistent per-stratum samples under insertions by using reservoir sampling
[Vitter 1985]: every stratum keeps a fixed-capacity reservoir that, at any
point in the insertion stream, is a uniform sample of all tuples seen so far.

:class:`ReservoirSample` implements the classic Algorithm R over dictionaries
of column values (one reservoir per leaf partition in the dynamic-update
machinery of :mod:`repro.core.updates`).
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

__all__ = ["ReservoirSample"]


class ReservoirSample:
    """A fixed-capacity uniform sample maintained over a stream of rows.

    Parameters
    ----------
    capacity:
        Maximum number of rows retained.  While fewer than ``capacity`` rows
        have been observed every row is kept; afterwards each new row replaces
        a random retained row with probability ``capacity / seen``.
    rng:
        Numpy generator or seed controlling replacement decisions.
    """

    def __init__(
        self, capacity: int, rng: np.random.Generator | int | None = 0
    ) -> None:
        if capacity <= 0:
            raise ValueError("reservoir capacity must be positive")
        self._capacity = capacity
        self._rng = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )
        self._rows: list[dict[str, float]] = []
        self._seen = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum number of retained rows."""
        return self._capacity

    @property
    def seen(self) -> int:
        """Total number of rows offered to the reservoir so far."""
        return self._seen

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def rows(self) -> list[dict[str, float]]:
        """A copy of the currently retained rows."""
        return [dict(row) for row in self._rows]

    # ------------------------------------------------------------------
    # Stream maintenance
    # ------------------------------------------------------------------
    def offer(self, row: Mapping[str, float]) -> dict[str, float] | None:
        """Offer a new row to the reservoir.

        Returns
        -------
        The row that was evicted to make room (when the reservoir was full and
        the new row was accepted), or ``None`` when nothing was evicted.  When
        the new row is rejected the method also returns ``None``; callers that
        need to distinguish can compare ``len(reservoir)`` before and after.
        """
        self._seen += 1
        row = dict(row)
        if len(self._rows) < self._capacity:
            self._rows.append(row)
            return None
        slot = int(self._rng.integers(0, self._seen))
        if slot < self._capacity:
            evicted = self._rows[slot]
            self._rows[slot] = row
            return evicted
        return None

    def rebase_seen(self, seen: int) -> None:
        """Reset the observed-row counter (e.g. when seeding from an existing sample).

        Used when a reservoir is initialised with a pre-drawn uniform sample of
        a population of ``seen`` rows: future acceptance probabilities must be
        computed relative to the true population size, not the sample size.
        """
        if seen < len(self._rows):
            raise ValueError("seen count cannot be smaller than the retained rows")
        self._seen = seen

    def discard(self, match: Mapping[str, float]) -> bool:
        """Remove one retained row equal to ``match`` (used on deletions).

        Returns True when a row was removed.  Removing a row keeps the
        remaining reservoir a uniform sample of the surviving population only
        approximately; Section 4.5 of the paper accepts this and recommends
        re-optimisation after many updates.
        """
        match = dict(match)
        for index, row in enumerate(self._rows):
            if row == match:
                del self._rows[index]
                return True
        return False

    def column(self, name: str) -> np.ndarray:
        """Values of one column across the retained rows."""
        return np.array([row[name] for row in self._rows], dtype=float)

    def as_columns(self, names: list[str]) -> Dict[str, np.ndarray]:
        """The retained rows as a dict of column arrays."""
        return {name: self.column(name) for name in names}
