"""Uniform-sampling AQP synopsis (the US baseline, Section 2.1).

A :class:`UniformSampleSynopsis` stores a uniform random sample of ``K``
tuples.  Queries are answered by transforming the sample with the appropriate
``phi`` function and applying the CLT confidence interval.  This is the
simplest synopsis in the library and the baseline every other structure is
measured against.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.data.table import Table
from repro.query.aggregates import AggregateType
from repro.query.query import AggregateQuery
from repro.result import AQPResult, LAMBDA_99
from repro.sampling.estimators import uniform_estimate

__all__ = ["UniformSampleSynopsis"]


class UniformSampleSynopsis:
    """A uniform random sample used as an AQP synopsis.

    Parameters
    ----------
    table:
        Source table (only the sampled rows are retained).
    value_column:
        The aggregation column.
    predicate_columns:
        Predicate columns retained in the sample so predicates can be
        evaluated against sampled tuples.
    sample_size / sample_rate:
        Exactly one of the two must be provided.
    with_fpc:
        Apply the finite-population correction to confidence intervals.
    rng:
        Numpy generator or seed controlling the sample draw.
    """

    def __init__(
        self,
        table: Table,
        value_column: str,
        predicate_columns: Sequence[str],
        sample_size: int | None = None,
        sample_rate: float | None = None,
        with_fpc: bool = False,
        rng: np.random.Generator | int | None = 0,
    ) -> None:
        if (sample_size is None) == (sample_rate is None):
            raise ValueError("provide exactly one of sample_size or sample_rate")
        if sample_rate is not None:
            if not 0.0 < sample_rate <= 1.0:
                raise ValueError("sample_rate must be in (0, 1]")
            sample_size = max(1, int(round(sample_rate * table.n_rows)))
        if sample_size <= 0:
            raise ValueError("sample_size must be positive")
        generator = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )

        self._value_column = value_column
        self._predicate_columns = list(predicate_columns)
        self._population_size = table.n_rows
        self._with_fpc = with_fpc

        keep_columns = [value_column] + [
            column for column in self._predicate_columns if column != value_column
        ]
        sample_table = table.project(keep_columns).sample(
            min(sample_size, table.n_rows), generator
        )
        self._sample = sample_table
        self._sample_values = sample_table.column(value_column).astype(float)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def sample_size(self) -> int:
        """Number of tuples retained in the sample."""
        return self._sample.n_rows

    @property
    def population_size(self) -> int:
        """Number of tuples in the table the sample was drawn from."""
        return self._population_size

    @property
    def value_column(self) -> str:
        """The aggregation column name."""
        return self._value_column

    def storage_bytes(self) -> int:
        """Approximate storage footprint of the synopsis in bytes."""
        return self._sample.memory_bytes()

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def query(self, query: AggregateQuery, lam: float = LAMBDA_99) -> AQPResult:
        """Answer an aggregate query from the sample.

        SUM / COUNT / AVG queries get CLT confidence intervals; MIN / MAX
        queries return the sample extremum with an unbounded (NaN) interval —
        a uniform sample cannot bound extrema.
        """
        if query.value_column != self._value_column:
            raise ValueError(
                f"synopsis was built for column {self._value_column!r}, "
                f"query aggregates {query.value_column!r}"
            )
        match_mask = self._match_mask(query)
        agg = query.agg
        if agg in (AggregateType.MIN, AggregateType.MAX):
            return self._extremum_result(agg, match_mask)

        estimate = uniform_estimate(
            agg,
            self._sample_values,
            match_mask,
            self._population_size,
            with_fpc=self._with_fpc,
        )
        half_width = (
            float("nan")
            if math.isnan(estimate.variance)
            else lam * math.sqrt(max(estimate.variance, 0.0))
        )
        return AQPResult(
            estimate=estimate.estimate,
            ci_half_width=half_width,
            variance=estimate.variance,
            tuples_processed=self.sample_size,
            tuples_skipped=0,
            exact=False,
        )

    def _match_mask(self, query: AggregateQuery) -> np.ndarray:
        predicate = query.predicate
        if len(predicate) == 0:
            return np.ones(self.sample_size, dtype=bool)
        missing = [column for column in predicate.columns if column not in self._sample]
        if missing:
            raise KeyError(
                f"predicate uses columns {missing} not retained in the sample; "
                f"rebuild the synopsis with those predicate columns"
            )
        return predicate.mask(self._sample.columns(predicate.columns))

    def _extremum_result(self, agg: AggregateType, match_mask: np.ndarray) -> AQPResult:
        matched = self._sample_values[match_mask]
        if matched.shape[0] == 0:
            estimate = float("nan")
        elif agg == AggregateType.MIN:
            estimate = float(matched.min())
        else:
            estimate = float(matched.max())
        return AQPResult(
            estimate=estimate,
            ci_half_width=float("nan"),
            variance=float("nan"),
            tuples_processed=self.sample_size,
            tuples_skipped=0,
            exact=False,
        )
