"""Sampling estimators shared by all synopsis structures.

Section 2.1 of the paper reformulates SUM, COUNT, and AVG queries as averages
of a transformed attribute ``phi(t)`` over the sample:

* COUNT: ``phi(t) = Predicate(t) * N``
* SUM:   ``phi(t) = Predicate(t) * N * a``
* AVG:   ``phi(t) = Predicate(t) * (K / K_pred) * a``

The estimate is ``mean(phi(S))`` and, by the CLT, its variance is
``var(phi(S)) / K``.  Stratified variants apply the same formulas inside each
stratum with the stratum's own population size ``N_i`` and sample size
``K_i``.

This module implements those formulas as small, heavily-tested functions that
every synopsis (uniform, stratified, AQP++ gap estimation, PASS partial
partitions) builds on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.query.aggregates import AggregateType

__all__ = [
    "EstimateWithVariance",
    "finite_population_correction",
    "uniform_estimate",
    "stratum_sum_contribution",
    "stratum_count_contribution",
    "stratum_mean_estimate",
]


@dataclass(frozen=True)
class EstimateWithVariance:
    """A point estimate together with the variance of that estimate.

    ``variance`` is the variance of the *estimator* (already divided by the
    sample size), so a confidence interval is ``estimate ± lambda *
    sqrt(variance)``.
    """

    estimate: float
    variance: float

    @property
    def std_error(self) -> float:
        """Standard error of the estimate (sqrt of the variance)."""
        if math.isnan(self.variance) or self.variance < 0:
            return float("nan")
        return math.sqrt(self.variance)

    def scaled(self, factor: float) -> "EstimateWithVariance":
        """The estimate of ``factor * X``: mean scales by ``factor``, variance by ``factor**2``."""
        return EstimateWithVariance(
            self.estimate * factor, self.variance * factor * factor
        )

    def __add__(self, other: "EstimateWithVariance") -> "EstimateWithVariance":
        """Sum of two *independent* estimates (variances add)."""
        return EstimateWithVariance(
            self.estimate + other.estimate, self.variance + other.variance
        )


ZERO_ESTIMATE = EstimateWithVariance(0.0, 0.0)


def finite_population_correction(population_size: int, sample_size: int) -> float:
    """The finite-population correction factor ``(N - K) / (N - 1)``.

    Applied to the estimator variance when sampling without replacement from a
    finite population; returns 1.0 for degenerate inputs (``N <= 1``).
    """
    if population_size <= 1:
        return 1.0
    correction = (population_size - sample_size) / (population_size - 1)
    return max(0.0, correction)


def _sample_variance(values: np.ndarray) -> float:
    """Population-style variance of the sample values (ddof=0).

    The paper's formulas use the plug-in variance ``var(phi(S))``; with one
    (or zero) samples the spread cannot be estimated and 0.0 is returned so a
    degenerate sample yields a zero-width (over-confident but well-defined)
    interval rather than NaN.
    """
    if values.shape[0] <= 1:
        return 0.0
    return float(np.var(values))


def uniform_estimate(
    agg: AggregateType,
    sample_values: np.ndarray,
    sample_match_mask: np.ndarray,
    population_size: int,
    with_fpc: bool = False,
) -> EstimateWithVariance:
    """Estimate an aggregate from a uniform sample of the population.

    Parameters
    ----------
    agg:
        SUM, COUNT or AVG.  MIN / MAX cannot be estimated from a sample with
        CLT guarantees and raise ``ValueError``.
    sample_values:
        Values of the aggregation column for the sampled tuples.
    sample_match_mask:
        Boolean mask marking which sampled tuples satisfy the predicate.
    population_size:
        ``N``, the number of tuples in the population the sample was drawn
        from.
    with_fpc:
        Apply the finite-population correction to the variance.
    """
    agg = AggregateType.parse(agg)
    sample_values = np.asarray(sample_values, dtype=float)
    sample_match_mask = np.asarray(sample_match_mask, dtype=bool)
    if sample_values.shape != sample_match_mask.shape:
        raise ValueError("sample_values and sample_match_mask must have equal shapes")
    sample_size = sample_values.shape[0]

    if sample_size == 0:
        if agg in (AggregateType.SUM, AggregateType.COUNT):
            # No information: report 0 with unknown (NaN) variance.
            return EstimateWithVariance(0.0, float("nan"))
        return EstimateWithVariance(float("nan"), float("nan"))

    if agg == AggregateType.COUNT:
        phi = sample_match_mask.astype(float) * population_size
    elif agg == AggregateType.SUM:
        phi = sample_match_mask.astype(float) * sample_values * population_size
    elif agg == AggregateType.AVG:
        matched = int(sample_match_mask.sum())
        if matched == 0:
            return EstimateWithVariance(float("nan"), float("nan"))
        phi = (
            sample_match_mask.astype(float)
            * sample_values
            * (sample_size / matched)
        )
    else:
        raise ValueError(f"aggregate {agg.value} cannot be estimated from a sample")

    estimate = float(phi.mean())
    variance = _sample_variance(phi) / sample_size
    if with_fpc:
        variance *= finite_population_correction(population_size, sample_size)
    return EstimateWithVariance(estimate, variance)


def stratum_sum_contribution(
    sample_values: np.ndarray,
    sample_match_mask: np.ndarray,
    stratum_size: int,
    with_fpc: bool = False,
) -> EstimateWithVariance:
    """Estimate a stratum's contribution to a SUM query.

    The contribution of stratum ``i`` is ``N_i * mean(Predicate * a)`` over
    its sample, with estimator variance ``N_i^2 * var(Predicate * a) / K_i``.
    Used both by plain stratified sampling and by PASS for partially covered
    leaves.
    """
    sample_values = np.asarray(sample_values, dtype=float)
    sample_match_mask = np.asarray(sample_match_mask, dtype=bool)
    sample_size = sample_values.shape[0]
    if sample_size == 0:
        # An unsampled, partially-overlapping stratum contributes an unknown
        # amount; report 0 with NaN variance so callers can surface it.
        return EstimateWithVariance(0.0, float("nan"))
    contributions = sample_match_mask.astype(float) * sample_values
    estimate = float(contributions.mean()) * stratum_size
    variance = (stratum_size**2) * _sample_variance(contributions) / sample_size
    if with_fpc:
        variance *= finite_population_correction(stratum_size, sample_size)
    return EstimateWithVariance(estimate, variance)


def stratum_count_contribution(
    sample_match_mask: np.ndarray,
    stratum_size: int,
    with_fpc: bool = False,
) -> EstimateWithVariance:
    """Estimate a stratum's contribution to a COUNT query.

    The contribution is ``N_i * mean(Predicate)`` with variance
    ``N_i^2 * var(Predicate) / K_i``.
    """
    sample_match_mask = np.asarray(sample_match_mask, dtype=bool)
    sample_size = sample_match_mask.shape[0]
    if sample_size == 0:
        return EstimateWithVariance(0.0, float("nan"))
    indicator = sample_match_mask.astype(float)
    estimate = float(indicator.mean()) * stratum_size
    variance = (stratum_size**2) * _sample_variance(indicator) / sample_size
    if with_fpc:
        variance *= finite_population_correction(stratum_size, sample_size)
    return EstimateWithVariance(estimate, variance)


def stratum_mean_estimate(
    sample_values: np.ndarray,
    sample_match_mask: np.ndarray,
) -> EstimateWithVariance:
    """Estimate the mean of the matching tuples within one stratum.

    Used by the stratified-sampling AVG estimator: the per-stratum mean of the
    tuples that satisfy the predicate, with variance ``var(matched) /
    K_pred``.  Returns NaN when the stratum sample contains no matching
    tuples.
    """
    sample_values = np.asarray(sample_values, dtype=float)
    sample_match_mask = np.asarray(sample_match_mask, dtype=bool)
    matched_values = sample_values[sample_match_mask]
    matched = matched_values.shape[0]
    if matched == 0:
        return EstimateWithVariance(float("nan"), float("nan"))
    estimate = float(matched_values.mean())
    variance = _sample_variance(matched_values) / matched
    return EstimateWithVariance(estimate, variance)


def ratio_estimate(
    numerator: EstimateWithVariance,
    denominator: EstimateWithVariance,
) -> EstimateWithVariance:
    """Delta-method estimate of a ratio ``numerator / denominator``.

    Used for AVG answers assembled from independently-estimated SUM and COUNT
    parts (e.g. PASS combines exact covered parts with sampled partial
    parts).  The variance approximation is

    ``Var(R) ≈ (Var(num) + R^2 * Var(den)) / den^2``

    which assumes the numerator and denominator estimates are uncorrelated;
    the correlated within-stratum refinement is handled by the PASS synopsis
    itself where the per-stratum residual variance is available.
    """
    if denominator.estimate == 0 or math.isnan(denominator.estimate):
        return EstimateWithVariance(float("nan"), float("nan"))
    ratio = numerator.estimate / denominator.estimate
    num_var = numerator.variance
    den_var = denominator.variance
    if math.isnan(num_var) or math.isnan(den_var):
        variance = float("nan")
    else:
        variance = (num_var + ratio**2 * den_var) / denominator.estimate**2
    return EstimateWithVariance(ratio, variance)
