"""Stratified-sampling AQP synopsis (the ST baseline, Section 2.2).

The table is partitioned into ``B`` mutually exclusive strata defined by
rectangular boxes over the predicate columns.  Each stratum keeps a uniform
sample of its own tuples.  Query results are assembled from per-stratum
estimates combined with the paper's weights:

* SUM / COUNT: weights 1, the per-stratum contributions simply add up.
* AVG: weight ``N_i / N_q`` for strata with at least one matching sampled
  tuple (``N_q`` is the total size of all such relevant strata), 0 otherwise.

The confidence interval is ``lambda * sqrt(sum(w_i^2 * V_i))`` where ``V_i``
is the per-stratum estimator variance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.data.table import Table
from repro.query.aggregates import AggregateType
from repro.query.predicate import Box, Interval
from repro.query.query import AggregateQuery
from repro.result import AQPResult, LAMBDA_99
from repro.sampling.estimators import (
    EstimateWithVariance,
    stratum_count_contribution,
    stratum_mean_estimate,
    stratum_sum_contribution,
)

__all__ = ["Stratum", "StratifiedSampleSynopsis", "equal_depth_boxes"]


@dataclass
class Stratum:
    """One stratum: a partition box, its population size, and its sample.

    Attributes
    ----------
    box:
        The rectangular partitioning condition of the stratum.
    size:
        ``N_i`` — number of dataset tuples in the stratum.
    sample_columns:
        Column name -> values of the sampled tuples of this stratum (always
        includes the aggregation column and every predicate column).
    """

    box: Box
    size: int
    sample_columns: Dict[str, np.ndarray]

    @property
    def sample_size(self) -> int:
        """``K_i`` — number of sampled tuples retained for the stratum."""
        if not self.sample_columns:
            return 0
        return int(next(iter(self.sample_columns.values())).shape[0])

    def sample_values(self, value_column: str) -> np.ndarray:
        """Aggregation-column values of the stratum's sample."""
        return np.asarray(self.sample_columns[value_column], dtype=float)

    def match_mask(self, query: AggregateQuery) -> np.ndarray:
        """Boolean mask of sampled tuples satisfying the query predicate."""
        if self.sample_size == 0:
            return np.zeros(0, dtype=bool)
        predicate = query.predicate
        if len(predicate) == 0:
            return np.ones(self.sample_size, dtype=bool)
        return predicate.mask(self.sample_columns)

    def storage_bytes(self) -> int:
        """Approximate bytes held by the stratum's sample."""
        return int(sum(values.nbytes for values in self.sample_columns.values()))


def equal_depth_boxes(table: Table, predicate_column: str, n_strata: int) -> list[Box]:
    """Equal-depth (equal-frequency) 1-D partitioning of a predicate column.

    Boundaries are placed so every stratum holds (approximately) the same
    number of tuples, the "EQ" partitioning of the paper's experiments and the
    default stratification of the ST baseline.
    """
    if n_strata <= 0:
        raise ValueError("n_strata must be positive")
    values = np.sort(table.column(predicate_column).astype(float))
    n = values.shape[0]
    if n == 0:
        raise ValueError("cannot stratify an empty table")
    n_strata = min(n_strata, n)
    boundaries = sorted(
        {
            float(values[min(n - 1, int(round(i * n / n_strata)))])
            for i in range(1, n_strata)
        }
    )
    boxes: list[Box] = []
    low = -math.inf
    for boundary in boundaries:
        boxes.append(Box({predicate_column: Interval(low, boundary)}))
        low = float(np.nextafter(boundary, math.inf))
    boxes.append(Box({predicate_column: Interval(low, math.inf)}))
    # Drop empty boxes created by duplicate boundary values.
    column = table.column(predicate_column)
    non_empty = [box for box in boxes if box.mask({predicate_column: column}).any()]
    return non_empty


class StratifiedSampleSynopsis:
    """Stratified sampling over a fixed set of partition boxes.

    Parameters
    ----------
    table:
        Source table.
    value_column:
        Aggregation column ``A``.
    predicate_columns:
        Predicate columns retained inside each stratum sample.
    boxes:
        Mutually exclusive partition boxes covering the table.  Use
        :func:`equal_depth_boxes` for the paper's default equal-depth strata.
    sample_size / sample_rate:
        Total sampling budget ``K`` split evenly across strata (the paper's
        ``K / B`` allocation).  Exactly one of the two must be given.
    allocation:
        ``"equal"`` (paper default, ``K/B`` per stratum) or ``"proportional"``
        (per-stratum budget proportional to stratum size).
    with_fpc:
        Apply the finite-population correction inside each stratum.
    rng:
        Numpy generator or seed.
    """

    def __init__(
        self,
        table: Table,
        value_column: str,
        predicate_columns: Sequence[str],
        boxes: Sequence[Box],
        sample_size: int | None = None,
        sample_rate: float | None = None,
        allocation: str = "equal",
        with_fpc: bool = False,
        rng: np.random.Generator | int | None = 0,
    ) -> None:
        if (sample_size is None) == (sample_rate is None):
            raise ValueError("provide exactly one of sample_size or sample_rate")
        if sample_rate is not None:
            if not 0.0 < sample_rate <= 1.0:
                raise ValueError("sample_rate must be in (0, 1]")
            sample_size = max(1, int(round(sample_rate * table.n_rows)))
        if sample_size <= 0:
            raise ValueError("sample_size must be positive")
        if not boxes:
            raise ValueError("at least one stratum box is required")
        if allocation not in ("equal", "proportional"):
            raise ValueError("allocation must be 'equal' or 'proportional'")

        generator = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )
        self._value_column = value_column
        self._predicate_columns = list(predicate_columns)
        self._population_size = table.n_rows
        self._with_fpc = with_fpc

        keep_columns = [value_column] + [
            column for column in self._predicate_columns if column != value_column
        ]
        box_columns = sorted({col for box in boxes for col in box.columns})
        for column in box_columns:
            if column not in keep_columns:
                keep_columns.append(column)

        all_column_data = table.columns(keep_columns)
        self._strata: list[Stratum] = []
        sizes = []
        masks = []
        for box in boxes:
            mask = box.mask({col: all_column_data[col] for col in box.columns})
            masks.append(mask)
            sizes.append(int(mask.sum()))

        budgets = self._allocate(sample_size, sizes, allocation)
        for box, mask, size, budget in zip(boxes, masks, sizes, budgets):
            if size == 0:
                continue
            indices = np.flatnonzero(mask)
            n_draw = min(budget, size)
            if n_draw > 0:
                chosen = generator.choice(indices, size=n_draw, replace=False)
            else:
                chosen = np.array([], dtype=int)
            sample_columns = {
                column: all_column_data[column][chosen].astype(float)
                for column in keep_columns
            }
            self._strata.append(
                Stratum(box=box, size=size, sample_columns=sample_columns)
            )
        if not self._strata:
            raise ValueError("all strata are empty; check the partition boxes")

    @staticmethod
    def _allocate(total: int, sizes: Sequence[int], allocation: str) -> list[int]:
        """Split the total sample budget across strata."""
        non_empty = [size for size in sizes if size > 0]
        if not non_empty:
            return [0 for _ in sizes]
        if allocation == "equal":
            per_stratum = max(1, total // len(non_empty))
            return [per_stratum if size > 0 else 0 for size in sizes]
        population = sum(sizes)
        budgets = []
        for size in sizes:
            if size == 0:
                budgets.append(0)
            else:
                budgets.append(max(1, int(round(total * size / population))))
        return budgets

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def strata(self) -> list[Stratum]:
        """The strata (box, size, sample) of the synopsis."""
        return list(self._strata)

    @property
    def n_strata(self) -> int:
        """Number of non-empty strata."""
        return len(self._strata)

    @property
    def sample_size(self) -> int:
        """Total number of sampled tuples across all strata."""
        return sum(stratum.sample_size for stratum in self._strata)

    @property
    def population_size(self) -> int:
        """Number of tuples in the source table."""
        return self._population_size

    def storage_bytes(self) -> int:
        """Approximate storage footprint of all stratum samples."""
        return sum(stratum.storage_bytes() for stratum in self._strata)

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def query(self, query: AggregateQuery, lam: float = LAMBDA_99) -> AQPResult:
        """Answer an aggregate query from the stratified samples."""
        if query.value_column != self._value_column:
            raise ValueError(
                f"synopsis was built for column {self._value_column!r}, "
                f"query aggregates {query.value_column!r}"
            )
        agg = query.agg
        if agg in (AggregateType.MIN, AggregateType.MAX):
            return self._extremum_result(agg, query)
        if agg == AggregateType.AVG:
            estimate = self._avg_estimate(query)
        else:
            estimate = self._sum_count_estimate(agg, query)
        half_width = (
            float("nan")
            if math.isnan(estimate.variance)
            else lam * math.sqrt(max(estimate.variance, 0.0))
        )
        return AQPResult(
            estimate=estimate.estimate,
            ci_half_width=half_width,
            variance=estimate.variance,
            tuples_processed=self._tuples_processed(query),
            tuples_skipped=self._tuples_skipped(query),
            exact=False,
        )

    def _relevant_strata(self, query: AggregateQuery) -> list[Stratum]:
        """Strata whose box overlaps the query predicate region."""
        predicate = query.predicate
        if len(predicate) == 0:
            return list(self._strata)
        return [
            stratum
            for stratum in self._strata
            if predicate.overlaps_box(stratum.box)
        ]

    def _tuples_processed(self, query: AggregateQuery) -> int:
        return sum(stratum.sample_size for stratum in self._relevant_strata(query))

    def _tuples_skipped(self, query: AggregateQuery) -> int:
        relevant = {id(stratum) for stratum in self._relevant_strata(query)}
        return sum(
            stratum.size for stratum in self._strata if id(stratum) not in relevant
        )

    def _sum_count_estimate(
        self, agg: AggregateType, query: AggregateQuery
    ) -> EstimateWithVariance:
        total = EstimateWithVariance(0.0, 0.0)
        for stratum in self._relevant_strata(query):
            match_mask = stratum.match_mask(query)
            if agg == AggregateType.SUM:
                contribution = stratum_sum_contribution(
                    stratum.sample_values(self._value_column),
                    match_mask,
                    stratum.size,
                    with_fpc=self._with_fpc,
                )
            else:
                contribution = stratum_count_contribution(
                    match_mask, stratum.size, with_fpc=self._with_fpc
                )
            if math.isnan(contribution.variance):
                # Unsampled stratum: contribute nothing but keep the total finite.
                continue
            total = total + contribution
        return total

    def _avg_estimate(self, query: AggregateQuery) -> EstimateWithVariance:
        relevant: list[tuple[Stratum, EstimateWithVariance]] = []
        for stratum in self._relevant_strata(query):
            match_mask = stratum.match_mask(query)
            if not match_mask.any():
                continue
            mean = stratum_mean_estimate(
                stratum.sample_values(self._value_column), match_mask
            )
            relevant.append((stratum, mean))
        if not relevant:
            return EstimateWithVariance(float("nan"), float("nan"))
        total_relevant_size = sum(stratum.size for stratum, _ in relevant)
        estimate = 0.0
        variance = 0.0
        for stratum, mean in relevant:
            weight = stratum.size / total_relevant_size
            estimate += weight * mean.estimate
            variance += (weight**2) * (
                0.0 if math.isnan(mean.variance) else mean.variance
            )
        return EstimateWithVariance(estimate, variance)

    def _extremum_result(self, agg: AggregateType, query: AggregateQuery) -> AQPResult:
        best = float("nan")
        for stratum in self._relevant_strata(query):
            match_mask = stratum.match_mask(query)
            matched = stratum.sample_values(self._value_column)[match_mask]
            if matched.shape[0] == 0:
                continue
            candidate = float(
                matched.min() if agg == AggregateType.MIN else matched.max()
            )
            if math.isnan(best):
                best = candidate
            elif agg == AggregateType.MIN:
                best = min(best, candidate)
            else:
                best = max(best, candidate)
        return AQPResult(
            estimate=best,
            ci_half_width=float("nan"),
            variance=float("nan"),
            tuples_processed=self._tuples_processed(query),
            tuples_skipped=self._tuples_skipped(query),
            exact=False,
        )
