"""Sampling substrate: estimators, uniform and stratified sampling synopses."""

from repro.sampling.estimators import (
    EstimateWithVariance,
    finite_population_correction,
    stratum_count_contribution,
    stratum_mean_estimate,
    stratum_sum_contribution,
    uniform_estimate,
)
from repro.sampling.reservoir import ReservoirSample
from repro.sampling.stratified import StratifiedSampleSynopsis, Stratum
from repro.sampling.uniform import UniformSampleSynopsis

__all__ = [
    "EstimateWithVariance",
    "finite_population_correction",
    "stratum_count_contribution",
    "stratum_mean_estimate",
    "stratum_sum_contribution",
    "uniform_estimate",
    "ReservoirSample",
    "StratifiedSampleSynopsis",
    "Stratum",
    "UniformSampleSynopsis",
]
