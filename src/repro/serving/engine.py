"""The query-serving engine: concurrent reads, result caching, batch execution.

:class:`ServingEngine` turns a :class:`~repro.serving.catalog.SynopsisCatalog`
into something that can serve query traffic:

* **Concurrency** — queries run under the shared side of a reader-writer
  lock, so any number of threads answer queries together; dynamic updates
  take the exclusive side (PASS updates mutate tree statistics and leaf
  samples in place, which is unsafe to interleave with reads).
* **Result caching** — answers are memoized in an LRU cache keyed on the
  canonical query form (:meth:`AggregateQuery.cache_key`), so repeated
  queries — the common case in dashboard traffic — skip the synopsis
  entirely.  The canonical key carries the quantile parameter, so a p50 /
  p95 / p99 dashboard caches each percentile separately while identical
  percentile queries still collapse onto one entry.  Updates invalidate
  exactly the cached results whose predicate region overlaps the updated
  partition.

Sketch aggregates (QUANTILE / COUNT_DISTINCT) serve through the same three
mechanisms unchanged: the catalog routes them only to synopses carrying
per-leaf sketches (:attr:`CatalogEntry.supports_sketches`) and otherwise
falls back to the exact engine, batches reduce them along shared frontiers,
and sharded entries gather mergeable sketch unions across shards.
* **Batch execution** — :meth:`execute_batch` deduplicates the batch,
  groups cache misses by routed synopsis, and evaluates the sample match
  masks of all queries touching a leaf in one vectorized pass, then feeds
  the precomputed masks through the regular estimator path so batched
  results are identical to sequential ones by construction.

Cached results are invalidated at estimate granularity: after an update, a
cached result for a region the update did not touch keeps its original
``tuples_skipped`` telemetry even though the population grew.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import nullcontext
from typing import Mapping, Sequence

from repro.core.batching import batch_query
from repro.query.groupby import GroupByPlan, GroupByQuery, GroupedResult
from repro.query.predicate import Box
from repro.query.query import AggregateQuery
from repro.result import AQPResult
from repro.serving.catalog import CatalogEntry, SynopsisCatalog
from repro.serving.locks import ReadWriteLock
from repro.serving.planner import GroupByPlanner
from repro.serving.stats import ServingStats, StatsSnapshot

__all__ = ["ServingEngine"]

#: Stats key used for queries answered by the exact-scan fallback.
EXACT_FALLBACK = "__exact__"


class ServingEngine:
    """Thread-safe serving front end over a synopsis catalog.

    Parameters
    ----------
    catalog:
        The synopsis catalog to serve from.  The engine takes ownership of
        synchronization: while it is serving, apply updates through
        :meth:`insert` / :meth:`delete`, not directly on the synopses.
    cache_size:
        Maximum number of memoized query results (0 disables caching).
    latency_window:
        Per-synopsis number of latency observations retained for the
        telemetry percentiles.
    vectorized_batches:
        When True, batch cache misses against non-sharded synopses execute
        through :meth:`~repro.core.batching.BatchPlan.execute_vectorized`
        (one moments pass per touched leaf) instead of the per-query
        estimator path.  Answers agree with sequential execution up to
        floating-point summation order (see
        :func:`~repro.core.batching.grouped_query` for the AVG caveat); the
        default keeps batches bit-identical to sequential execution.
    """

    def __init__(
        self,
        catalog: SynopsisCatalog,
        cache_size: int = 4096,
        latency_window: int | None = None,
        vectorized_batches: bool = False,
    ) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        if latency_window is not None and latency_window <= 0:
            raise ValueError("latency_window must be positive")
        self._catalog = catalog
        self._lock = ReadWriteLock()
        self._cache_size = cache_size
        self._vectorized_batches = vectorized_batches
        # key -> (synopsis name or EXACT_FALLBACK, query, result)
        self._cache: OrderedDict[tuple, tuple[str, AggregateQuery, AQPResult]] = (
            OrderedDict()
        )
        self._cache_lock = threading.Lock()
        self._stats: dict[str, ServingStats] = {}
        self._stats_lock = threading.Lock()
        self._latency_window = latency_window

    @property
    def catalog(self) -> SynopsisCatalog:
        """The catalog being served."""
        return self._catalog

    def peek(
        self, query: AggregateQuery, table: str | None = None
    ) -> AQPResult | None:
        """The cached result for a query, or None on a cache miss.

        A hit is recorded in the serving telemetry exactly like a hit inside
        :meth:`execute`.  The async serving tier probes this before
        scheduling, so cached queries never pay a batch-window wait.
        """
        if not self._cache_size:
            return None
        cached = self._cache_get(self._cache_key(query, table))
        if cached is None:
            return None
        served_by, _, result = cached
        self._stats_for(served_by).record_hit()
        return result

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def execute(self, query: AggregateQuery, table: str | None = None) -> AQPResult:
        """Answer one query: cache, then best synopsis, then exact fallback.

        Raises ``LookupError`` when no synopsis matches and no fallback table
        is registered.
        """
        key = self._cache_key(query, table)
        cached = self._cache_get(key)
        if cached is not None:
            served_by, _, result = cached
            self._stats_for(served_by).record_hit()
            return result
        with self._lock.read_locked():
            start = time.perf_counter()
            served_by, result = self._execute_uncached(query, table)
            latency = time.perf_counter() - start
            # Cache while still holding the read lock: a concurrent update
            # waits for the write lock until we are done, so its invalidation
            # is guaranteed to see (and drop) this entry — caching after
            # release could race the invalidation and pin a stale result.
            self._cache_put(key, (served_by, query, result))
        self._stats_for(served_by).record_miss(latency)
        return result

    def execute_batch(
        self, queries: Sequence[AggregateQuery], table: str | None = None
    ) -> list[AQPResult]:
        """Answer a batch of queries; results align with the input order.

        Duplicate queries (by canonical key) are answered once, cache misses
        are grouped per routed synopsis, and each group's sample match masks
        are computed in one vectorized pass over every touched leaf.  Batched
        results are identical to :meth:`execute` run per query.
        """
        return self._execute_batch_impl(queries, table, already_locked=False)

    def _execute_batch_impl(
        self,
        queries: Sequence[AggregateQuery],
        table: str | None,
        already_locked: bool,
    ) -> list[AQPResult]:
        """Batch execution core; ``already_locked`` callers hold the read lock."""
        queries = list(queries)
        results: list[AQPResult | None] = [None] * len(queries)

        # Resolve duplicates and cache hits first.
        unique: dict[tuple, list[int]] = {}
        for position, query in enumerate(queries):
            unique.setdefault(self._cache_key(query, table), []).append(position)
        misses: list[tuple[tuple, AggregateQuery]] = []
        for key, positions in unique.items():
            cached = self._cache_get(key)
            if cached is not None:
                served_by, _, result = cached
                stats = self._stats_for(served_by)
                for position in positions:
                    results[position] = result
                    stats.record_hit()
            else:
                misses.append((key, queries[positions[0]]))

        if misses:
            guard = nullcontext() if already_locked else self._lock.read_locked()
            with guard:
                start = time.perf_counter()
                answers = self._execute_misses(misses, table)
                elapsed = time.perf_counter() - start
                # Cache under the read lock so a pending update's invalidation
                # cannot slip between computing and caching (see execute()).
                for (key, query), (served_by, result) in zip(misses, answers):
                    self._cache_put(key, (served_by, query, result))
            per_query = elapsed / len(misses)
            for (key, query), (served_by, result) in zip(misses, answers):
                self._stats_for(served_by).record_miss(per_query)
                for position in unique[key]:
                    results[position] = result
        return results  # type: ignore[return-value]

    def execute_grouped(
        self, groupby: GroupByQuery | GroupByPlan, table: str | None = None
    ) -> GroupedResult:
        """Answer a group-by / multi-aggregate query through the serving stack.

        The query is compiled by a :class:`~repro.serving.planner.GroupByPlanner`
        (distinct values resolve from the registered fallback table), group
        cells that the routed synopsis' partition-tree frontier statistics
        prove empty are answered locally, and the surviving cell-major batch
        runs through :meth:`execute_batch` — so every (group cell, aggregate)
        pair gets its own canonical cache key, repeated grouped dashboards hit
        the result cache per group, and updates invalidate exactly the touched
        cells.

        The whole grouped query — frontier-statistics pruning, population
        snapshot, and dispatch — runs under one read-lock scope, so the
        result is a consistent snapshot: a concurrent update is ordered
        either entirely before or entirely after it.
        """
        planner = GroupByPlanner(self._catalog)
        plan = (
            planner.compile(groupby, table)
            if isinstance(groupby, GroupByQuery)
            else groupby
        )
        with self._lock.read_locked():
            pruned, population = planner.analyze(plan, table)
            return planner.execute(
                plan,
                lambda queries: self._execute_batch_impl(
                    queries, table, already_locked=True
                ),
                table=table,
                pruned=pruned,
                population=population,
            )

    def _execute_uncached(
        self, query: AggregateQuery, table: str | None
    ) -> tuple[str, AQPResult]:
        """Route and answer one query (caller holds the read lock)."""
        entry = self._catalog.route(query, table)
        if entry is not None:
            if entry.is_sharded:
                return entry.name, entry.synopsis.query(query)
            return entry.name, entry.pass_synopsis.query(query)
        return EXACT_FALLBACK, self._exact_result(query, table)

    def _execute_misses(
        self, misses: Sequence[tuple[tuple, AggregateQuery]], table: str | None
    ) -> list[tuple[str, AQPResult]]:
        """Answer the deduplicated cache misses, batching per synopsis."""
        answers: list[tuple[str, AQPResult] | None] = [None] * len(misses)
        by_entry: dict[str, list[int]] = {}
        entries: dict[str, CatalogEntry] = {}
        for index, (_, query) in enumerate(misses):
            entry = self._catalog.route(query, table)
            if entry is None:
                answers[index] = (EXACT_FALLBACK, self._exact_result(query, table))
            else:
                by_entry.setdefault(entry.name, []).append(index)
                entries[entry.name] = entry
        for name, indices in by_entry.items():
            entry = entries[name]
            batch = [misses[index][1] for index in indices]
            if entry.is_sharded:
                # Scatter-gather batch: the sharded synopsis shares mask work
                # per shard across the whole group.
                batch_results = entry.synopsis.query_batch(batch)
            else:
                batch_results = batch_query(
                    entry.pass_synopsis, batch, vectorized=self._vectorized_batches
                )
            for index, result in zip(indices, batch_results):
                answers[index] = (name, result)
        return answers  # type: ignore[return-value]

    def _exact_result(self, query: AggregateQuery, table: str | None) -> AQPResult:
        engine = self._catalog.exact_engine(table)
        if engine is None:
            raise LookupError(
                f"no synopsis matches {query!r} and no fallback table is registered"
            )
        value = engine.execute(query)
        return AQPResult(
            estimate=value,
            ci_half_width=0.0,
            variance=0.0,
            hard_lower=value,
            hard_upper=value,
            tuples_processed=engine.table.n_rows,
            tuples_skipped=0,
            exact=True,
        )

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, name: str, row: Mapping[str, float]) -> Box:
        """Insert a tuple into a dynamic synopsis and invalidate its region.

        Returns the box of the leaf partition the update landed in — the
        region whose cached results were invalidated — so layered caches
        (e.g. the async tier's in-flight coalesced futures) can apply the
        same box-overlap invalidation.
        """
        return self._apply_update(name, row, "insert")

    def delete(self, name: str, row: Mapping[str, float]) -> Box:
        """Delete a tuple from a dynamic synopsis and invalidate its region.

        Returns the updated leaf partition's box (see :meth:`insert`).
        """
        return self._apply_update(name, row, "delete")

    def _apply_update(self, name: str, row: Mapping[str, float], kind: str) -> Box:
        entry = self._catalog.get(name)
        if not entry.is_dynamic:
            raise TypeError(
                f"synopsis {name!r} is static; register a DynamicPASS to accept updates"
            )
        with self._lock.write_locked():
            point = {
                column: float(row[column])
                for column in entry.predicate_columns
                if column in row
            }
            if entry.is_sharded:
                leaf = entry.synopsis.leaf_for_point(point)
            else:
                leaf = entry.pass_synopsis.tree.leaf_for_point(point)
            if kind == "insert":
                entry.synopsis.insert(row)
            else:
                entry.synopsis.delete(row)
            dropped = self._invalidate_overlapping(name, leaf.box)
        self._stats_for(name).record_invalidations(dropped)
        return leaf.box

    def _invalidate_overlapping(self, name: str, box) -> int:
        """Drop cached results of ``name`` whose region overlaps ``box``."""
        with self._cache_lock:
            doomed = [
                key
                for key, (served_by, query, _) in self._cache.items()
                if served_by == name
                and (len(query.predicate) == 0 or query.predicate.overlaps_box(box))
            ]
            for key in doomed:
                del self._cache[key]
        return len(doomed)

    def invalidate(self, name: str | None = None) -> int:
        """Drop cached results (of one synopsis, or all); returns the count."""
        with self._cache_lock:
            if name is None:
                dropped = len(self._cache)
                self._cache.clear()
                return dropped
            doomed = [
                key
                for key, (served_by, _, _) in self._cache.items()
                if served_by == name
            ]
            for key in doomed:
                del self._cache[key]
            return len(doomed)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, StatsSnapshot]:
        """Per-synopsis serving telemetry snapshots."""
        with self._stats_lock:
            keys = list(self._stats)
        snapshots = {}
        for key in keys:
            staleness = 0.0
            if key != EXACT_FALLBACK and key in self._catalog:
                staleness = self._catalog.get(key).staleness
            snapshots[key] = self._stats_for(key).snapshot(staleness=staleness)
        return snapshots

    def cache_info(self) -> dict[str, int]:
        """Current cache occupancy and capacity."""
        with self._cache_lock:
            return {"size": len(self._cache), "capacity": self._cache_size}

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _cache_key(query: AggregateQuery, table: str | None) -> tuple:
        return (table, query.cache_key())

    def _cache_get(self, key: tuple):
        if not self._cache_size:
            return None
        with self._cache_lock:
            value = self._cache.get(key)
            if value is not None:
                self._cache.move_to_end(key)
            return value

    def _cache_put(self, key: tuple, value: tuple) -> None:
        if not self._cache_size:
            return
        with self._cache_lock:
            self._cache[key] = value
            self._cache.move_to_end(key)
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)

    def _stats_for(self, name: str) -> ServingStats:
        with self._stats_lock:
            stats = self._stats.get(name)
            if stats is None:
                stats = (
                    ServingStats(self._latency_window)
                    if self._latency_window
                    else ServingStats()
                )
                self._stats[name] = stats
            return stats
