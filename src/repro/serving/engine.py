"""The query-serving engine: concurrent reads, result caching, batch execution.

:class:`ServingEngine` turns a :class:`~repro.serving.catalog.SynopsisCatalog`
into something that can serve query traffic:

* **Concurrency** — queries run under the shared side of a reader-writer
  lock, so any number of threads answer queries together; dynamic updates
  take the exclusive side (PASS updates mutate tree statistics and leaf
  samples in place, which is unsafe to interleave with reads).
* **Result caching** — answers are memoized in an LRU cache keyed on the
  canonical query form (:meth:`AggregateQuery.cache_key`), so repeated
  queries — the common case in dashboard traffic — skip the synopsis
  entirely.  The canonical key carries the quantile parameter, so a p50 /
  p95 / p99 dashboard caches each percentile separately while identical
  percentile queries still collapse onto one entry.  Updates invalidate
  exactly the cached results whose predicate region overlaps the updated
  partition.

Sketch aggregates (QUANTILE / COUNT_DISTINCT) serve through the same three
mechanisms unchanged: the catalog routes them only to synopses carrying
per-leaf sketches (:attr:`CatalogEntry.supports_sketches`) and otherwise
falls back to the exact engine, batches reduce them along shared frontiers,
and sharded entries gather mergeable sketch unions across shards.
* **Batch execution** — :meth:`execute_batch` deduplicates the batch,
  groups cache misses by routed synopsis, and evaluates the sample match
  masks of all queries touching a leaf in one vectorized pass, then feeds
  the precomputed masks through the regular estimator path so batched
  results are identical to sequential ones by construction.

Cached results are invalidated at estimate granularity: after an update, a
cached result for a region the update did not touch keeps its original
``tuples_skipped`` telemetry even though the population grew.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import nullcontext
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.core.batching import batch_query
from repro.obs import Observability
from repro.query.groupby import GroupByPlan, GroupByQuery, GroupedResult
from repro.query.predicate import Box
from repro.query.query import AggregateQuery
from repro.result import AQPResult
from repro.serving.catalog import CatalogEntry, SynopsisCatalog
from repro.serving.locks import ReadWriteLock
from repro.serving.planner import GroupByPlanner
from repro.serving.stats import ServingStats, StatsSnapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.audit import AccuracyAuditor
    from repro.obs.quality import QualityThresholds

__all__ = ["ServingEngine"]

#: Stats key used for queries answered by the exact-scan fallback.
EXACT_FALLBACK = "__exact__"

#: Shared empty stages mapping for records with no stage breakdown
#: (read-only by convention; avoids one dict allocation per record).
_NO_STAGES: dict[str, float] = {}


class ServingEngine:
    """Thread-safe serving front end over a synopsis catalog.

    Parameters
    ----------
    catalog:
        The synopsis catalog to serve from.  The engine takes ownership of
        synchronization: while it is serving, apply updates through
        :meth:`insert` / :meth:`delete`, not directly on the synopses.
    cache_size:
        Maximum number of memoized query results (0 disables caching).
    latency_window:
        Per-synopsis number of latency observations retained for the
        telemetry percentiles.
    vectorized_batches:
        When True, batch cache misses against non-sharded synopses execute
        through :meth:`~repro.core.batching.BatchPlan.execute_vectorized`
        (one moments pass per touched leaf) instead of the per-query
        estimator path.  Answers agree with sequential execution up to
        floating-point summation order (see
        :func:`~repro.core.batching.grouped_query` for the AVG caveat); the
        default keeps batches bit-identical to sequential execution.
    obs:
        The shared :class:`~repro.obs.Observability` context.  When given
        (and enabled), per-synopsis serving stats become registry-backed
        metrics, queries emit trace spans and structured query-log records,
        and the catalog / sharded synopses are bound to the same context.
        Defaults to the shared disabled singleton (no-op instruments).
    """

    def __init__(
        self,
        catalog: SynopsisCatalog,
        cache_size: int = 4096,
        latency_window: int | None = None,
        vectorized_batches: bool = False,
        obs: Observability | None = None,
    ) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        if latency_window is not None and latency_window <= 0:
            raise ValueError("latency_window must be positive")
        self._catalog = catalog
        self._lock = ReadWriteLock()
        self._cache_size = cache_size
        self._vectorized_batches = vectorized_batches
        # key -> (synopsis name or EXACT_FALLBACK, query, result)
        self._cache: OrderedDict[tuple, tuple[str, AggregateQuery, AQPResult]] = (
            OrderedDict()
        )
        self._cache_lock = threading.Lock()
        self._stats: dict[str, ServingStats] = {}
        self._stats_lock = threading.Lock()
        self._latency_window = latency_window
        self._auditor: "AccuracyAuditor | None" = None
        self._obs = obs if obs is not None else Observability.disabled()
        if self._obs.enabled:
            registry = self._obs.metrics
            registry.gauge(
                "repro_serving_cache_entries",
                "Result-cache entries currently held.",
            ).set_function(lambda: float(len(self._cache)))
            registry.gauge(
                "repro_serving_cache_capacity",
                "Result-cache capacity (0 = caching disabled).",
            ).set(float(cache_size))
            catalog.bind_obs(self._obs)

    @property
    def catalog(self) -> SynopsisCatalog:
        """The catalog being served."""
        return self._catalog

    @property
    def obs(self) -> Observability:
        """The observability context (the disabled singleton when unwired)."""
        return self._obs

    @property
    def auditor(self) -> "AccuracyAuditor | None":
        """The attached accuracy auditor, if any."""
        return self._auditor

    def attach_auditor(self, auditor: "AccuracyAuditor") -> None:
        """Attach an accuracy auditor: every synopsis-served miss is offered
        to its sampler and every applied update is mirrored into its truth
        oracles.  One auditor at a time; attaching replaces the previous one.
        """
        self._auditor = auditor

    def detach_auditor(self) -> None:
        """Detach the current auditor (offers and update notes stop)."""
        self._auditor = None

    def close(self, timeout: float = 5.0) -> None:
        """Tear the engine down: stop and detach the attached auditor.

        The auditor runs a daemon worker thread that periodically takes the
        engine's read lock; leaving it behind keeps that thread recomputing
        against a catalog nobody serves anymore and makes test processes and
        servers exit uncleanly.  ``close`` stops it (warning if the join
        times out — see :meth:`AccuracyAuditor.stop`), detaches it, and is
        idempotent.  The engine itself holds no other background resources;
        the async tier's scheduler stops in ``AsyncServingEngine.stop``, and
        the multi-process server closes its engine through this method.
        """
        auditor = self._auditor
        if auditor is not None:
            # stop() detaches via detach_auditor when still attached.
            auditor.stop(timeout)
            self._auditor = None

    def __enter__(self) -> "ServingEngine":
        """Context-manager support: ``with ServingEngine(...) as engine:``."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Close the engine (auditor shutdown) on context exit."""
        self.close()

    def read_locked(self):
        """The engine's shared read-lock context manager.

        Exposed for audit workers that must recompute answers against a
        stable synopsis + truth state: holding the reader side serializes
        them with updates exactly like any serving query.
        """
        return self._lock.read_locked()

    def health(self, thresholds: "QualityThresholds | None" = None) -> dict:
        """The catalog-level quality health rollup (see ``SynopsisCatalog.health``)."""
        return self._catalog.health(thresholds)

    def peek(
        self, query: AggregateQuery, table: str | None = None
    ) -> AQPResult | None:
        """The cached result for a query, or None on a cache miss.

        A hit is recorded in the serving telemetry exactly like a hit inside
        :meth:`execute`.  The async serving tier probes this before
        scheduling, so cached queries never pay a batch-window wait.
        """
        entry = self.peek_entry(query, table)
        return None if entry is None else entry[1]

    def peek_entry(
        self, query: AggregateQuery, table: str | None = None
    ) -> tuple[str, AQPResult] | None:
        """Like :meth:`peek`, also naming the synopsis that served the hit."""
        if not self._cache_size:
            return None
        cached = self._cache_get(self._cache_key(query, table))
        if cached is None:
            return None
        served_by, _, result = cached
        self._stats_for(served_by).record_hit()
        return served_by, result

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def execute(self, query: AggregateQuery, table: str | None = None) -> AQPResult:
        """Answer one query: cache, then best synopsis, then exact fallback.

        Raises ``LookupError`` when no synopsis matches and no fallback table
        is registered.
        """
        tracer = self._obs.tracer
        with tracer.span("serving.execute") as span:
            start = time.perf_counter()
            key = self._cache_key(query, table)
            cached = self._cache_get(key)
            if cached is not None:
                served_by, _, result = cached
                self._stats_for(served_by).record_hit()
                if self._obs.enabled:
                    span.set_attribute("outcome", "cache_hit")
                    self._log_query(
                        query,
                        table,
                        served_by,
                        "cache_hit",
                        total_ms=(time.perf_counter() - start) * 1e3,
                        stages_ms={},
                        result=result,
                        trace_id=span.trace_id,
                    )
                return result
            with self._lock.read_locked():
                served_by, result = self._execute_uncached(query, table)
                latency = time.perf_counter() - start
                # Cache while still holding the read lock: a concurrent update
                # waits for the write lock until we are done, so its
                # invalidation is guaranteed to see (and drop) this entry —
                # caching after release could race the invalidation and pin a
                # stale result.
                with tracer.span("cache.store"):
                    self._cache_put(key, (served_by, query, result))
                # Offer under the read lock: the auditor stamps the truth
                # oracle's epoch, and no update can slip between computing
                # the result and stamping it while we hold the reader side.
                auditor = self._auditor
                if auditor is not None and served_by != EXACT_FALLBACK:
                    auditor.offer(query, table, served_by, result)
            self._stats_for(served_by).record_miss(latency)
            if self._obs.enabled:
                span.set_attribute("outcome", "miss")
                span.set_attribute("synopsis", served_by)
                self._log_query(
                    query,
                    table,
                    served_by,
                    "miss",
                    total_ms=latency * 1e3,
                    stages_ms=span.stage_durations_ms(),
                    result=result,
                    trace_id=span.trace_id,
                )
            return result

    def execute_batch(
        self, queries: Sequence[AggregateQuery], table: str | None = None
    ) -> list[AQPResult]:
        """Answer a batch of queries; results align with the input order.

        Duplicate queries (by canonical key) are answered once, cache misses
        are grouped per routed synopsis, and each group's sample match masks
        are computed in one vectorized pass over every touched leaf.  Batched
        results are identical to :meth:`execute` run per query.
        """
        return self._execute_batch_impl(queries, table, already_locked=False)

    def _execute_batch_impl(
        self,
        queries: Sequence[AggregateQuery],
        table: str | None,
        already_locked: bool,
    ) -> list[AQPResult]:
        """Batch execution core; ``already_locked`` callers hold the read lock."""
        queries = list(queries)
        results: list[AQPResult | None] = [None] * len(queries)
        obs = self._obs
        tracer = obs.tracer

        with tracer.span("serving.execute_batch") as batch_span:
            batch_span.set_attribute("batch_size", len(queries))
            batch_start = time.perf_counter()

            # Resolve duplicates and cache hits first.
            unique: dict[tuple, list[int]] = {}
            for position, query in enumerate(queries):
                unique.setdefault(self._cache_key(query, table), []).append(position)
            misses: list[tuple[tuple, AggregateQuery]] = []
            hits: list[tuple[tuple, str, AQPResult]] = []
            for key, positions in unique.items():
                cached = self._cache_get(key)
                if cached is not None:
                    served_by, _, result = cached
                    for position in positions:
                        results[position] = result
                    self._stats_for(served_by).record_hits(len(positions))
                    hits.append((key, served_by, result))
                else:
                    misses.append((key, queries[positions[0]]))
            batch_span.set_attribute("unique", len(unique))
            batch_span.set_attribute("cache_hits", len(hits))
            probe_ms = (time.perf_counter() - batch_start) * 1e3

            miss_counts: dict[str, int] = {}
            if misses:
                guard = nullcontext() if already_locked else self._lock.read_locked()
                with guard:
                    start = time.perf_counter()
                    answers = self._execute_misses(misses, table)
                    elapsed = time.perf_counter() - start
                    # Cache under the read lock so a pending update's
                    # invalidation cannot slip between computing and caching
                    # (see execute()).
                    with tracer.span("cache.store"):
                        for (key, query), (served_by, result) in zip(misses, answers):
                            self._cache_put(key, (served_by, query, result))
                    # Offer under the read lock (see execute()); duplicate
                    # queries in the batch advance the sampler by their
                    # position count so audit frequency tracks traffic.
                    auditor = self._auditor
                    if auditor is not None:
                        for (key, query), (served_by, result) in zip(misses, answers):
                            if served_by != EXACT_FALLBACK:
                                auditor.offer(
                                    query,
                                    table,
                                    served_by,
                                    result,
                                    weight=len(unique[key]),
                                )
                per_query = elapsed / len(misses)
                for (key, query), (served_by, result) in zip(misses, answers):
                    miss_counts[served_by] = miss_counts.get(served_by, 0) + 1
                    for position in unique[key]:
                        results[position] = result
                for served_by, count in miss_counts.items():
                    self._stats_for(served_by).record_misses(count, per_query)

            if obs.enabled:
                # Payloads are packed inline (not via ``_make_payload``) with
                # the timestamp and per-synopsis staleness hoisted out of the
                # loop: the whole window shares one wall-clock read and one
                # staleness probe per touched synopsis, leaving a bare tuple
                # pack per query on the executor thread.
                stages_ms = batch_span.stage_durations_ms()
                trace_id = batch_span.trace_id
                ts = time.time()
                stale = {
                    name: self._catalog.staleness_of(name)
                    for name in {sb for _, sb, _ in hits} | set(miss_counts)
                }
                payloads = [
                    (ts, table, sb, queries[unique[key][0]], "cache_hit",
                     probe_ms, _NO_STAGES, result, stale[sb], trace_id, 0)
                    for key, sb, result in hits
                ]
                if misses:
                    miss_ms = per_query * 1e3
                    payloads.extend(
                        (ts, table, sb, query, "miss",
                         miss_ms, stages_ms, result, stale[sb], trace_id, 0)
                        for (key, query), (sb, result) in zip(misses, answers)
                    )
                if payloads:
                    obs.query_log.extend_raw(payloads)
        return results  # type: ignore[return-value]

    def execute_grouped(
        self, groupby: GroupByQuery | GroupByPlan, table: str | None = None
    ) -> GroupedResult:
        """Answer a group-by / multi-aggregate query through the serving stack.

        The query is compiled by a :class:`~repro.serving.planner.GroupByPlanner`
        (distinct values resolve from the registered fallback table), group
        cells that the routed synopsis' partition-tree frontier statistics
        prove empty are answered locally, and the surviving cell-major batch
        runs through :meth:`execute_batch` — so every (group cell, aggregate)
        pair gets its own canonical cache key, repeated grouped dashboards hit
        the result cache per group, and updates invalidate exactly the touched
        cells.

        The whole grouped query — frontier-statistics pruning, population
        snapshot, and dispatch — runs under one read-lock scope, so the
        result is a consistent snapshot: a concurrent update is ordered
        either entirely before or entirely after it.
        """
        planner = GroupByPlanner(self._catalog)
        plan = (
            planner.compile(groupby, table)
            if isinstance(groupby, GroupByQuery)
            else groupby
        )
        with self._lock.read_locked():
            pruned, population = planner.analyze(plan, table)
            return planner.execute(
                plan,
                lambda queries: self._execute_batch_impl(
                    queries, table, already_locked=True
                ),
                table=table,
                pruned=pruned,
                population=population,
            )

    def _execute_uncached(
        self, query: AggregateQuery, table: str | None
    ) -> tuple[str, AQPResult]:
        """Route and answer one query (caller holds the read lock)."""
        tracer = self._obs.tracer
        with tracer.span("catalog.route"):
            entry = self._catalog.route(query, table)
        if entry is not None:
            with tracer.span("synopsis.query") as span:
                span.set_attribute("synopsis", entry.name)
                if entry.is_sharded:
                    result = entry.synopsis.query(query)
                else:
                    result = entry.pass_synopsis.query(query)
            return entry.name, result
        with tracer.span("exact.scan"):
            return EXACT_FALLBACK, self._exact_result(query, table)

    def _execute_misses(
        self, misses: Sequence[tuple[tuple, AggregateQuery]], table: str | None
    ) -> list[tuple[str, AQPResult]]:
        """Answer the deduplicated cache misses, batching per synopsis."""
        answers: list[tuple[str, AQPResult] | None] = [None] * len(misses)
        by_entry: dict[str, list[int]] = {}
        entries: dict[str, CatalogEntry] = {}
        n_exact = 0
        for index, (_, query) in enumerate(misses):
            entry = self._catalog.route(query, table, record=False)
            if entry is None:
                answers[index] = (EXACT_FALLBACK, self._exact_result(query, table))
                n_exact += 1
            else:
                by_entry.setdefault(entry.name, []).append(index)
                entries[entry.name] = entry
        if self._obs.enabled:
            tally = {name: len(indices) for name, indices in by_entry.items()}
            if n_exact:
                tally[EXACT_FALLBACK] = n_exact
            if tally:
                self._catalog.count_routes(tally)
        for name, indices in by_entry.items():
            entry = entries[name]
            batch = [misses[index][1] for index in indices]
            if entry.is_sharded:
                # Scatter-gather batch: the sharded synopsis shares mask work
                # per shard across the whole group.
                with self._obs.tracer.span("sharded.query_batch") as span:
                    span.set_attribute("synopsis", name)
                    span.set_attribute("batch_size", len(batch))
                    batch_results = entry.synopsis.query_batch(batch)
            else:
                batch_results = batch_query(
                    entry.pass_synopsis,
                    batch,
                    vectorized=self._vectorized_batches,
                    obs=self._obs,
                )
            for index, result in zip(indices, batch_results):
                answers[index] = (name, result)
        return answers  # type: ignore[return-value]

    def _exact_result(self, query: AggregateQuery, table: str | None) -> AQPResult:
        engine = self._catalog.exact_engine(table)
        if engine is None:
            raise LookupError(
                f"no synopsis matches {query!r} and no fallback table is registered"
            )
        value = engine.execute(query)
        return AQPResult(
            estimate=value,
            ci_half_width=0.0,
            variance=0.0,
            hard_lower=value,
            hard_upper=value,
            tuples_processed=engine.table.n_rows,
            tuples_skipped=0,
            exact=True,
        )

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, name: str, row: Mapping[str, float]) -> Box:
        """Insert a tuple into a dynamic synopsis and invalidate its region.

        Returns the box of the leaf partition the update landed in — the
        region whose cached results were invalidated — so layered caches
        (e.g. the async tier's in-flight coalesced futures) can apply the
        same box-overlap invalidation.
        """
        return self._apply_update(name, row, "insert")

    def delete(self, name: str, row: Mapping[str, float]) -> Box:
        """Delete a tuple from a dynamic synopsis and invalidate its region.

        Returns the updated leaf partition's box (see :meth:`insert`).
        """
        return self._apply_update(name, row, "delete")

    def _apply_update(self, name: str, row: Mapping[str, float], kind: str) -> Box:
        entry = self._catalog.get(name)
        if not entry.is_dynamic:
            raise TypeError(
                f"synopsis {name!r} is static; register a DynamicPASS to accept updates"
            )
        if self._obs.enabled:
            self._obs.metrics.counter(
                "repro_serving_updates_total",
                "Dynamic updates applied through the serving engine.",
                {"synopsis": name, "kind": kind},
            ).inc()
        with self._lock.write_locked():
            point = {
                column: float(row[column])
                for column in entry.predicate_columns
                if column in row
            }
            if entry.is_sharded:
                leaf = entry.synopsis.leaf_for_point(point)
            else:
                leaf = entry.pass_synopsis.tree.leaf_for_point(point)
            if kind == "insert":
                entry.synopsis.insert(row)
            else:
                entry.synopsis.delete(row)
            # Mirror the update into the auditor's truth oracle while still
            # holding the write lock, so oracle epochs order strictly with
            # the read-locked offers above.
            auditor = self._auditor
            if auditor is not None:
                auditor.note_update(entry.table_name, row, kind)
            dropped = self._invalidate_overlapping(name, leaf.box)
        self._stats_for(name).record_invalidations(dropped)
        return leaf.box

    def _invalidate_overlapping(self, name: str, box) -> int:
        """Drop cached results of ``name`` whose region overlaps ``box``."""
        with self._cache_lock:
            doomed = [
                key
                for key, (served_by, query, _) in self._cache.items()
                if served_by == name
                and (len(query.predicate) == 0 or query.predicate.overlaps_box(box))
            ]
            for key in doomed:
                del self._cache[key]
        return len(doomed)

    def invalidate(self, name: str | None = None) -> int:
        """Drop cached results (of one synopsis, or all); returns the count."""
        with self._cache_lock:
            if name is None:
                dropped = len(self._cache)
                self._cache.clear()
                return dropped
            doomed = [
                key
                for key, (served_by, _, _) in self._cache.items()
                if served_by == name
            ]
            for key in doomed:
                del self._cache[key]
            return len(doomed)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, StatsSnapshot]:
        """Per-synopsis serving telemetry snapshots."""
        with self._stats_lock:
            keys = list(self._stats)
        snapshots = {}
        for key in keys:
            staleness = 0.0
            if key != EXACT_FALLBACK and key in self._catalog:
                staleness = self._catalog.get(key).staleness
            snapshots[key] = self._stats_for(key).snapshot(staleness=staleness)
        return snapshots

    def cache_info(self) -> dict[str, int]:
        """Current cache occupancy and capacity."""
        with self._cache_lock:
            return {"size": len(self._cache), "capacity": self._cache_size}

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _cache_key(query: AggregateQuery, table: str | None) -> tuple:
        return (table, query.cache_key())

    def _cache_get(self, key: tuple):
        if not self._cache_size:
            return None
        with self._cache_lock:
            value = self._cache.get(key)
            if value is not None:
                self._cache.move_to_end(key)
            return value

    def _cache_put(self, key: tuple, value: tuple) -> None:
        if not self._cache_size:
            return
        with self._cache_lock:
            self._cache[key] = value
            self._cache.move_to_end(key)
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)

    def _stats_for(self, name: str) -> ServingStats:
        with self._stats_lock:
            stats = self._stats.get(name)
            if stats is None:
                registry = self._obs.metrics if self._obs.enabled else None
                if self._latency_window:
                    stats = ServingStats(
                        self._latency_window, registry=registry, synopsis=name
                    )
                else:
                    stats = ServingStats(registry=registry, synopsis=name)
                self._stats[name] = stats
            return stats

    def _make_payload(
        self,
        query: AggregateQuery,
        table: str | None,
        served_by: str,
        outcome: str,
        total_ms: float,
        stages_ms: Mapping[str, float],
        result: AQPResult | None,
        trace_id: int,
        coalesced_waiters: int = 0,
    ) -> tuple:
        """Build one raw query-log payload (see ``QueryLog.append_raw``).

        Hot path: everything derivable from the query and (immutable) result
        objects — canonical key, predicate box, aggregate label, bound
        widths, exactness — is deferred to log-read time by carrying the
        objects themselves; only answer-time state that would drift if read
        later — wall clock, the serving synopsis' staleness — is captured
        eagerly.
        """
        staleness = (
            self._catalog.staleness_of(served_by)
            if served_by and served_by != EXACT_FALLBACK
            else 0.0
        )
        return (
            time.time(),
            table,
            served_by,
            query,
            outcome,
            total_ms,
            stages_ms,
            result,
            staleness,
            trace_id,
            coalesced_waiters,
        )

    def _log_query(
        self,
        query: AggregateQuery,
        table: str | None,
        served_by: str,
        outcome: str,
        total_ms: float,
        stages_ms: Mapping[str, float],
        result: AQPResult | None,
        trace_id: int,
    ) -> None:
        """Append one structured query-log record (enabled contexts only)."""
        self._obs.query_log.append_raw(
            self._make_payload(
                query,
                table,
                served_by,
                outcome,
                total_ms,
                stages_ms,
                result,
                trace_id,
            )
        )
