"""Shared-memory synopsis segments and the epoch/generation publish protocol.

PR 8's array-native :class:`~repro.core.soa.FlatSynopsis` made a synopsis a
handful of flat numpy buffers; this module lays those buffers out in
:class:`multiprocessing.shared_memory.SharedMemory` so a process-per-core
worker pool (:mod:`repro.serving.server`) can serve queries over **zero-copy
read-only views** of one shared copy instead of pickling the synopsis into
every worker.

Segment layout (one segment per synopsis; normative, mirrored in
``docs/ARCHITECTURE.md``):

* bytes ``0..8`` — magic ``b"PASSSEG1"``;
* bytes ``8..16`` — little-endian ``uint64`` length of the JSON header;
* bytes ``16..16+len`` — the JSON header: the synopsis scalars from
  :meth:`FlatSynopsis.export_buffers` plus an array directory (key, dtype,
  shape, byte offset per buffer);
* each array payload at its directory offset, every offset **page-aligned**
  (so a buffer never straddles an unrelated buffer's cache lines and the
  kernel can share pages cleanly).

Coordination between the single writer and the readers is a tiny separate
**epoch register** segment updated with a seqlock:

* the owner process is the only writer — it rebuilds into a *fresh* data
  segment, then flips the register: sequence number to odd (write in
  progress), payload (the entry -> segment-name manifest), sequence to the
  next even value;
* a reader snapshots the sequence number, copies the payload, and re-reads
  the sequence — a torn read (writer raced it) shows as odd or changed and
  the reader simply retries.  Workers validate the epoch per request and
  re-attach to the new segments when it moved, so a reader never observes a
  torn synopsis: old segments stay mapped (and therefore alive) in any
  worker still finishing a request against them, even after the owner
  unlinks the names.

Segment lifetime is owned by the single owner process: readers attach with
``track=False`` where available (Python 3.13+); on older interpreters the
attach-side tracker registration is left in place — workers are spawned
from the owner and share its resource tracker, where registration is
idempotent and doubles as crash cleanup (see :func:`_attach_untracked`).
"""

from __future__ import annotations

import json
import mmap
import secrets
import struct
import time
from multiprocessing import shared_memory
from typing import Mapping

import numpy as np

from repro.core.pass_synopsis import PASSSynopsis
from repro.core.soa import FlatSynopsis
from repro.core.updates import DynamicPASS

__all__ = [
    "SEGMENT_MAGIC",
    "REGISTER_MAGIC",
    "SynopsisSegment",
    "AttachedSegment",
    "EpochRegister",
    "SynopsisPublisher",
    "attach_flat_synopsis",
]

#: First eight bytes of every synopsis data segment.
SEGMENT_MAGIC = b"PASSSEG1"

#: First eight bytes of every epoch-register segment.
REGISTER_MAGIC = b"PASSEPR1"

_PAGE = mmap.PAGESIZE
_SEQ_OFFSET = 8
_LEN_OFFSET = 16
_PAYLOAD_OFFSET = 24


def _segment_name(prefix: str) -> str:
    """A collision-resistant shared-memory name under ``prefix``."""
    return f"{prefix}-{secrets.token_hex(6)}"


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without taking tracker ownership.

    On Python 3.13+ this is ``SharedMemory(name, track=False)``.  Earlier
    interpreters register every attach with the resource tracker; that is
    harmless here because the serving workers are spawned from the owner
    process and inherit its tracker (registration is idempotent in the
    shared tracker, and the tracker only unlinks at full-tree shutdown —
    which doubles as crash cleanup).  Explicitly *unregistering* after
    attach would be wrong: it erases the owner's registration from the
    shared tracker and the owner's own ``unlink`` then trips a tracker
    ``KeyError``.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13 fallback
        return shared_memory.SharedMemory(name=name)


def _align(offset: int) -> int:
    """Round ``offset`` up to the next page boundary."""
    return (offset + _PAGE - 1) // _PAGE * _PAGE


def _flat_of(
    synopsis: "PASSSynopsis | DynamicPASS | FlatSynopsis",
) -> FlatSynopsis:
    """The flat execution engine behind any supported synopsis kind."""
    if isinstance(synopsis, FlatSynopsis):
        return synopsis
    if isinstance(synopsis, DynamicPASS):
        return synopsis.synopsis.flat
    if isinstance(synopsis, PASSSynopsis):
        return synopsis.flat
    raise TypeError(
        "expected a PASSSynopsis, DynamicPASS, or FlatSynopsis, "
        f"got {type(synopsis)!r}"
    )


class SynopsisSegment:
    """Owner-side handle of one published synopsis data segment.

    Created by :meth:`write`; the owner keeps the handle to ``unlink`` the
    name once a newer generation has been published (readers still attached
    keep the memory alive until they re-attach).
    """

    def __init__(self, segment: shared_memory.SharedMemory) -> None:
        self._segment = segment

    @property
    def name(self) -> str:
        """The shared-memory name readers attach with."""
        return self._segment.name

    @property
    def size(self) -> int:
        """Allocated segment size in bytes."""
        return self._segment.size

    @classmethod
    def write(
        cls,
        header: Mapping,
        arrays: Mapping[str, np.ndarray],
        *,
        prefix: str = "pass-seg",
    ) -> "SynopsisSegment":
        """Lay ``(header, arrays)`` out in a fresh shared-memory segment.

        ``header`` must be JSON-safe (the :meth:`FlatSynopsis.
        export_buffers` header is); each array is copied once into the
        segment at a page-aligned offset recorded in the embedded
        directory.  Returns the owning handle.
        """
        directory = []
        payloads = []
        for key, array in arrays.items():
            contiguous = np.ascontiguousarray(array)
            directory.append(
                {
                    "key": key,
                    "dtype": contiguous.dtype.str,
                    "shape": list(contiguous.shape),
                }
            )
            payloads.append(contiguous)
        header_doc = {
            "format": 1,
            "synopsis": dict(header),
            "arrays": directory,
        }
        # Two passes: offsets depend on the header length, which depends on
        # the offsets (they are JSON numbers).  Size the header area from a
        # zero-offset template plus generous per-entry slack for the digits.
        for entry in directory:
            entry["offset"] = 0
        template = json.dumps(header_doc).encode("utf-8")
        offset = _align(16 + len(template) + 32 * len(directory) + 64)
        for entry, payload in zip(directory, payloads):
            entry["offset"] = offset
            offset = _align(offset + max(payload.nbytes, 1))
        encoded = json.dumps(header_doc).encode("utf-8")
        if directory and 16 + len(encoded) > directory[0]["offset"]:
            raise RuntimeError("segment header overflowed its reserved space")
        segment = shared_memory.SharedMemory(
            create=True, size=max(offset, _PAGE), name=_segment_name(prefix)
        )
        buf = segment.buf
        buf[0:8] = SEGMENT_MAGIC
        struct.pack_into("<Q", buf, 8, len(encoded))
        buf[16 : 16 + len(encoded)] = encoded
        for entry, payload in zip(directory, payloads):
            start = entry["offset"]
            view = np.ndarray(
                payload.shape,
                dtype=np.dtype(entry["dtype"]),
                buffer=buf,
                offset=start,
            )
            view[...] = payload
        return cls(segment)

    def close(self) -> None:
        """Close the owner's mapping (the segment itself stays published)."""
        self._segment.close()

    def unlink(self) -> None:
        """Remove the segment's name; mapped readers keep the memory alive."""
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


class AttachedSegment:
    """A reader's zero-copy view of a published synopsis segment.

    ``header`` is the synopsis scalar header; ``arrays`` maps buffer keys to
    read-only numpy views straight over the shared mapping.  Keep the
    instance referenced for as long as any view (or a :class:`FlatSynopsis`
    built over the views) is in use, then :meth:`close`.
    """

    def __init__(self, name: str) -> None:
        self._segment = _attach_untracked(name)
        buf = self._segment.buf
        if bytes(buf[0:8]) != SEGMENT_MAGIC:
            self._segment.close()
            raise ValueError(f"{name} is not a synopsis segment (bad magic)")
        (header_len,) = struct.unpack_from("<Q", buf, 8)
        doc = json.loads(bytes(buf[16 : 16 + header_len]).decode("utf-8"))
        self.header: dict = doc["synopsis"]
        self.arrays: dict[str, np.ndarray] = {}
        for entry in doc["arrays"]:
            view = np.ndarray(
                tuple(entry["shape"]),
                dtype=np.dtype(entry["dtype"]),
                buffer=buf,
                offset=entry["offset"],
            )
            view.flags.writeable = False
            self.arrays[entry["key"]] = view

    @property
    def name(self) -> str:
        """The attached segment's shared-memory name."""
        return self._segment.name

    def close(self) -> None:
        """Drop the mapping.  Views into ``arrays`` must not be used after."""
        self.arrays = {}
        self._segment.close()


def attach_flat_synopsis(name: str) -> tuple[FlatSynopsis, AttachedSegment]:
    """Attach a segment and rehydrate a zero-copy :class:`FlatSynopsis`.

    Returns the engine plus the attachment handle keeping the mapping
    alive; close the handle only after the engine is discarded.
    """
    attached = AttachedSegment(name)
    return FlatSynopsis.from_buffers(attached.header, attached.arrays), attached


class EpochRegister:
    """The tiny seqlock-guarded control segment naming the live generation.

    One writer (the owner process) and any number of readers (workers).
    The payload is an arbitrary JSON document — the publisher stores the
    entry manifest (synopsis name -> data-segment name plus routing
    metadata).  The sequence number at byte 8 doubles as the **epoch**: it
    is even when the register is consistent and increments by 2 per
    publish, so workers detect staleness with a single 8-byte read.
    """

    def __init__(
        self, segment: shared_memory.SharedMemory, *, owner: bool
    ) -> None:
        self._segment = segment
        self._owner = owner

    @classmethod
    def create(
        cls, *, capacity: int = 1 << 16, prefix: str = "pass-epoch"
    ) -> "EpochRegister":
        """Allocate a fresh register (epoch 0, empty payload); owner side."""
        segment = shared_memory.SharedMemory(
            create=True, size=capacity, name=_segment_name(prefix)
        )
        segment.buf[0:8] = REGISTER_MAGIC
        struct.pack_into("<Q", segment.buf, _SEQ_OFFSET, 0)
        struct.pack_into("<Q", segment.buf, _LEN_OFFSET, 0)
        return cls(segment, owner=True)

    @classmethod
    def attach(cls, name: str) -> "EpochRegister":
        """Attach to an existing register by name; reader side."""
        segment = _attach_untracked(name)
        if bytes(segment.buf[0:8]) != REGISTER_MAGIC:
            segment.close()
            raise ValueError(f"{name} is not an epoch register (bad magic)")
        return cls(segment, owner=False)

    @property
    def name(self) -> str:
        """The register's shared-memory name (hand this to workers)."""
        return self._segment.name

    def epoch(self) -> int:
        """The current generation (even; odd means a publish is in flight)."""
        (seq,) = struct.unpack_from("<Q", self._segment.buf, _SEQ_OFFSET)
        return seq

    def publish(self, manifest: Mapping) -> int:
        """Atomically install a new manifest; returns the new (even) epoch.

        Seqlock write protocol: bump the sequence to odd, write the
        payload, bump to the next even value.  Readers that race the write
        observe the odd sequence (or a changed one) and retry, so they
        only ever act on a complete manifest.
        """
        if not self._owner:
            raise RuntimeError("only the owning process may publish")
        encoded = json.dumps(manifest).encode("utf-8")
        capacity = self._segment.size - _PAYLOAD_OFFSET
        if len(encoded) > capacity:
            raise ValueError(
                f"manifest ({len(encoded)} bytes) exceeds the register "
                f"capacity ({capacity} bytes)"
            )
        buf = self._segment.buf
        (seq,) = struct.unpack_from("<Q", buf, _SEQ_OFFSET)
        struct.pack_into("<Q", buf, _SEQ_OFFSET, seq + 1)  # odd: in progress
        struct.pack_into("<Q", buf, _LEN_OFFSET, len(encoded))
        buf[_PAYLOAD_OFFSET : _PAYLOAD_OFFSET + len(encoded)] = encoded
        struct.pack_into("<Q", buf, _SEQ_OFFSET, seq + 2)  # even: consistent
        return seq + 2

    def read(self, *, spin_interval: float = 0.0005) -> tuple[int, dict]:
        """A consistent ``(epoch, manifest)`` snapshot (seqlock read side)."""
        buf = self._segment.buf
        while True:
            (seq1,) = struct.unpack_from("<Q", buf, _SEQ_OFFSET)
            if seq1 % 2:
                time.sleep(spin_interval)
                continue
            (length,) = struct.unpack_from("<Q", buf, _LEN_OFFSET)
            payload = bytes(buf[_PAYLOAD_OFFSET : _PAYLOAD_OFFSET + length])
            (seq2,) = struct.unpack_from("<Q", buf, _SEQ_OFFSET)
            if seq1 == seq2:
                manifest = json.loads(payload.decode("utf-8")) if length else {}
                return seq1, manifest
            time.sleep(spin_interval)

    def close(self) -> None:
        """Drop this process's mapping of the register."""
        self._segment.close()

    def unlink(self) -> None:
        """Remove the register's name (owner teardown)."""
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


class SynopsisPublisher:
    """Single-writer owner of a set of published synopses.

    Holds the epoch register plus the current generation's data segments.
    :meth:`publish` installs a synopsis under a name (replacing any previous
    generation atomically via the register flip), after which the previous
    segment's name is unlinked — workers mid-request on the old generation
    keep it alive through their mapping and re-attach on their next epoch
    check.  Typical write path::

        publisher = SynopsisPublisher()
        publisher.publish("sensors", synopsis, table_name="intel")
        ...                        # workers attach via publisher.register_name
        publisher.publish("sensors", rebuilt)   # epoch flip; readers migrate
        publisher.close()          # unlink everything

    A :class:`~repro.distributed.router.StreamingShardRouter` rebuild can be
    wired straight in through :meth:`watch_router`: every atomic shard swap
    republishes the rebuilt shard's segment under this publisher.
    """

    def __init__(self, *, register_capacity: int = 1 << 16) -> None:
        self._register = EpochRegister.create(capacity=register_capacity)
        self._segments: dict[str, SynopsisSegment] = {}
        self._entries: dict[str, dict] = {}
        self._closed = False

    @property
    def register_name(self) -> str:
        """The epoch register name worker pools attach to."""
        return self._register.name

    @property
    def epoch(self) -> int:
        """The current published generation."""
        return self._register.epoch()

    def publish(
        self,
        name: str,
        synopsis: "PASSSynopsis | DynamicPASS | FlatSynopsis",
        *,
        table_name: str | None = None,
        predicate_columns: tuple[str, ...] | None = None,
    ) -> int:
        """Publish (or republish) one synopsis; returns the new epoch.

        The flat buffers are laid out in a fresh segment *first*, then the
        register flips to the manifest naming it — readers either see the
        old complete generation or the new one.  ``predicate_columns``
        defaults to the synopsis' bound columns and, with ``table_name``,
        feeds worker-side routing (mirroring
        :meth:`repro.serving.catalog.CatalogEntry.can_answer`).
        """
        self._require_open()
        flat = _flat_of(synopsis)
        header, arrays = flat.export_buffers()
        segment = SynopsisSegment.write(header, arrays)
        previous = self._segments.get(name)
        self._segments[name] = segment
        self._entries[name] = {
            "name": name,
            "segment": segment.name,
            "table_name": table_name,
            "value_column": header["value_column"],
            "predicate_columns": list(
                predicate_columns
                if predicate_columns is not None
                else header["columns"]
            ),
            "n_partitions": int(arrays["is_leaf"].sum()),
        }
        epoch = self._register.publish({"entries": list(self._entries.values())})
        if previous is not None:
            previous.unlink()
            previous.close()
        return epoch

    def publish_catalog(self, catalog) -> tuple[int, list[str]]:
        """Publish every eligible entry of a :class:`SynopsisCatalog`.

        Single-synopsis entries (static or dynamic) publish under their
        catalog name with their registered routing metadata, so worker-side
        routing sees the same candidates as the in-process engine.  Sharded
        entries are skipped — the worker pool routes whole queries, not
        shard scatter/gather — and returned in the skipped list so callers
        can keep serving them in-process.  Returns ``(epoch, skipped)``.
        """
        self._require_open()
        skipped = []
        epoch = self.epoch
        for entry in catalog.entries():
            if entry.is_sharded:
                skipped.append(entry.name)
                continue
            epoch = self.publish(
                entry.name,
                entry.synopsis,
                table_name=entry.table_name,
                predicate_columns=entry.predicate_columns,
            )
        return epoch, skipped

    def retire(self, name: str) -> int:
        """Withdraw a published synopsis; returns the new epoch."""
        self._require_open()
        segment = self._segments.pop(name, None)
        self._entries.pop(name, None)
        epoch = self._register.publish({"entries": list(self._entries.values())})
        if segment is not None:
            segment.unlink()
            segment.close()
        return epoch

    def watch_router(self, router, name: str, *, table_name: str | None = None):
        """Republish on every atomic shard swap of a streaming router.

        Registers a swap listener on ``router`` (a
        :class:`~repro.distributed.router.StreamingShardRouter`) that
        republishes the swapped shard's synopsis under ``name`` — the
        "rebuild into a fresh segment, flip the epoch" write path.  Only
        single-shard routers are publishable today (the worker pool routes
        whole queries, not shard scatter/gather); a multi-shard router
        raises.  Returns the listener so callers can detach it with
        ``router.remove_swap_listener``.
        """
        self._require_open()
        if router.sharded.n_shards != 1:
            raise ValueError(
                "only single-shard routers can republish through the worker "
                f"pool (got {router.sharded.n_shards} shards); serve "
                "multi-shard synopses through the in-process engine"
            )

        def on_swap(index: int, shard) -> None:
            self.publish(name, shard, table_name=table_name)

        router.add_swap_listener(on_swap)
        self.publish(name, router.sharded.shards[0], table_name=table_name)
        return on_swap

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("publisher is closed")

    def close(self) -> None:
        """Unlink every segment and the register; idempotent."""
        if self._closed:
            return
        self._closed = True
        for segment in self._segments.values():
            segment.unlink()
            segment.close()
        self._segments.clear()
        self._entries.clear()
        self._register.unlink()
        self._register.close()

    def __enter__(self) -> "SynopsisPublisher":
        """Context-manager support; closes (and unlinks) on exit."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Unlink all published segments on context exit."""
        self.close()
