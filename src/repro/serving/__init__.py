"""Serving layer: synopsis catalog, persistence, and the concurrent query engine.

This subsystem turns the one-shot PASS library into a query-serving engine in
the style of production AQP systems: build synopses offline, persist them,
register them in a :class:`SynopsisCatalog`, and serve traffic through a
:class:`ServingEngine` that routes queries, caches results, executes batches
with vectorized mask evaluation, and applies dynamic updates under a
reader-writer lock.

For concurrent traffic, :class:`AsyncServingEngine` layers an asyncio tier
on top: in-flight request coalescing by canonical cache key, micro-batch
scheduling into the vectorized batch path, bounded-queue backpressure with
typed :class:`Overloaded` rejections, and writes serialized through the
same scheduler with atomic box-overlap invalidation of coalesced futures.

For multi-core traffic, the shared-memory tier serves one copy of each
synopsis to a process-per-core worker pool: a :class:`SynopsisPublisher`
lays the flat buffers out in shared memory behind an epoch register, an
:class:`MPServingPool` answers queries over zero-copy worker views, and an
:class:`MPHTTPServer` front-ends the pool with a JSON protocol behind the
same admission-control semantics.
"""

from repro.serving.async_engine import AsyncServingEngine, AsyncServingStats
from repro.serving.catalog import CatalogEntry, SynopsisCatalog
from repro.serving.coalesce import CoalescedRequest, RequestCoalescer
from repro.serving.engine import ServingEngine
from repro.serving.locks import ReadWriteLock
from repro.serving.planner import GroupByPlanner
from repro.serving.scheduler import MicroBatchScheduler, Overloaded, SchedulerStats
from repro.serving.persistence import (
    FORMAT_VERSION,
    load_catalog,
    load_catalog_workloads,
    load_synopsis,
    load_workload_fingerprint,
    save_catalog,
    save_synopsis,
    save_workload_fingerprint,
)
from repro.serving.server import MPHTTPServer, MPServingPool
from repro.serving.shm import EpochRegister, SynopsisPublisher, attach_flat_synopsis
from repro.serving.stats import ServingStats, StatsSnapshot

__all__ = [
    "AsyncServingEngine",
    "AsyncServingStats",
    "CatalogEntry",
    "CoalescedRequest",
    "MicroBatchScheduler",
    "Overloaded",
    "RequestCoalescer",
    "SchedulerStats",
    "SynopsisCatalog",
    "ServingEngine",
    "ReadWriteLock",
    "GroupByPlanner",
    "FORMAT_VERSION",
    "save_synopsis",
    "load_synopsis",
    "save_catalog",
    "load_catalog",
    "save_workload_fingerprint",
    "load_workload_fingerprint",
    "load_catalog_workloads",
    "ServingStats",
    "StatsSnapshot",
    "EpochRegister",
    "SynopsisPublisher",
    "attach_flat_synopsis",
    "MPServingPool",
    "MPHTTPServer",
]
