"""Serving layer: synopsis catalog, persistence, and the concurrent query engine.

This subsystem turns the one-shot PASS library into a query-serving engine in
the style of production AQP systems: build synopses offline, persist them,
register them in a :class:`SynopsisCatalog`, and serve traffic through a
:class:`ServingEngine` that routes queries, caches results, executes batches
with vectorized mask evaluation, and applies dynamic updates under a
reader-writer lock.
"""

from repro.serving.catalog import CatalogEntry, SynopsisCatalog
from repro.serving.engine import ServingEngine
from repro.serving.locks import ReadWriteLock
from repro.serving.planner import GroupByPlanner
from repro.serving.persistence import (
    FORMAT_VERSION,
    load_catalog,
    load_synopsis,
    save_catalog,
    save_synopsis,
)
from repro.serving.stats import ServingStats, StatsSnapshot

__all__ = [
    "CatalogEntry",
    "SynopsisCatalog",
    "ServingEngine",
    "ReadWriteLock",
    "GroupByPlanner",
    "FORMAT_VERSION",
    "save_synopsis",
    "load_synopsis",
    "save_catalog",
    "load_catalog",
    "ServingStats",
    "StatsSnapshot",
]
