"""Versioned save / load of synopses and catalogs.

A synopsis is persisted as a single ``.npz`` archive: every numpy array of
the export (partition-tree structure and statistics, stratum boxes, sizes and
sample columns, reservoir contents for dynamic synopses) plus one JSON header
under the reserved ``__header__`` key carrying the scalar configuration and a
format version.  The arrays round-trip bit for bit, so a reloaded synopsis
returns estimates identical to the instance that was saved — the property the
serving tests assert.

A catalog is persisted as a directory: one ``<name>.pass.npz`` per entry plus
a ``catalog.json`` manifest with the routing metadata.  Tables themselves are
*not* persisted (they are the workload's data, not the synopsis'); pass them
back to :func:`load_catalog` to restore the exact-scan fallback.

Build-time workload fingerprints (see :mod:`repro.obs.drift`) persist as a
sibling ``<name>.workload.npz`` next to each synopsis archive — a separate
file, not extra keys inside the synopsis npz, because ``from_arrays`` passes
every non-header array through to the synopsis loaders.  A reloaded catalog
therefore keeps its drift baselines via :func:`load_catalog_workloads`.

Every write in this module is crash-safe: archives are written to a
same-directory temporary file and published with an atomic ``os.replace``,
fingerprint siblings are written before the synopsis archive that references
them, and the catalog manifest is written last.  Killing the process at any
instant — including ``kill -9`` mid-write — leaves only complete archives on
disk (the crash-injection tests in ``tests/test_persistence_crash.py``
assert exactly this).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.core.pass_synopsis import PASSSynopsis
from repro.core.updates import DynamicPASS
from repro.data.table import Table
from repro.distributed.sharded import ShardedSynopsis
from repro.obs.drift import WorkloadFingerprint
from repro.serving.catalog import SynopsisCatalog

__all__ = [
    "FORMAT_VERSION",
    "save_synopsis",
    "load_synopsis",
    "save_catalog",
    "load_catalog",
    "save_workload_fingerprint",
    "load_workload_fingerprint",
    "load_catalog_workloads",
]

#: Version written into every header; bumped on incompatible layout changes.
FORMAT_VERSION = 1

#: Reserved npz key holding the JSON header.
_HEADER_KEY = "__header__"


def _normalize(path: str | Path) -> Path:
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def _workload_path(path: Path) -> Path:
    """Sibling ``<stem>.workload.npz`` path for a synopsis archive path."""
    return path.with_name(path.name[: -len(".npz")] + ".workload.npz")


def _atomic_savez(path: Path, header: Mapping, arrays: Mapping[str, np.ndarray]) -> None:
    """Write an npz archive durably: temp file in the same directory + rename.

    ``np.savez_compressed`` straight to the final path leaves a truncated zip
    behind if the process dies mid-write, and the loader then fails with
    ``zipfile.BadZipFile`` on what used to be a good archive.  Writing to a
    same-directory temporary file and ``os.replace``-ing it into place makes
    the publish atomic on POSIX: a reader (or a post-crash restart) sees
    either the complete old archive or the complete new one, never a torn
    file.  The temp file is cleaned up on any failure before the rename.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, **{_HEADER_KEY: json.dumps(header)}, **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def save_synopsis(
    synopsis: PASSSynopsis | DynamicPASS | ShardedSynopsis,
    path: str | Path,
    *,
    workload: WorkloadFingerprint | None = None,
) -> Path:
    """Persist a synopsis to a single ``.npz`` file; returns the final path.

    A ``.npz`` suffix is appended when missing.  Dynamic synopses persist
    their reservoirs and update counters as well, so serving can resume
    accepting updates after a restart (the reservoir RNG state is the one
    piece that does not survive — see :meth:`DynamicPASS.to_arrays`).
    Sharded synopses persist every shard (static or dynamic) plus the shard
    routing metadata in the same archive.  Passing ``workload`` additionally
    writes the build-time fingerprint to a sibling ``<stem>.workload.npz``.

    Both writes are atomic (same-directory temp file + ``os.replace``), and
    the workload sibling is written *before* the synopsis archive, so a crash
    at any point leaves every existing archive loadable and never a synopsis
    whose fingerprint pair is missing or staler than the synopsis itself.
    """
    if isinstance(synopsis, (DynamicPASS, ShardedSynopsis)):
        arrays, header = synopsis.to_arrays()
    elif isinstance(synopsis, PASSSynopsis):
        arrays, header = synopsis.to_arrays()
        header["kind"] = "pass"
    else:
        raise TypeError(
            "expected a PASSSynopsis, DynamicPASS, or ShardedSynopsis, "
            f"got {type(synopsis)!r}"
        )
    header["format"] = FORMAT_VERSION
    path = _normalize(path)
    if workload is not None:
        save_workload_fingerprint(workload, _workload_path(path))
    _atomic_savez(path, header, arrays)
    return path


def save_workload_fingerprint(
    fingerprint: WorkloadFingerprint, path: str | Path
) -> Path:
    """Persist a build-time workload fingerprint to a ``.npz`` archive.

    The write is atomic (temp file + ``os.replace``), like every archive
    this module produces.
    """
    header, arrays = fingerprint.to_arrays()
    header["format"] = FORMAT_VERSION
    path = _normalize(path)
    _atomic_savez(path, header, arrays)
    return path


def load_workload_fingerprint(path: str | Path) -> WorkloadFingerprint:
    """Load a fingerprint saved with :func:`save_workload_fingerprint`."""
    path = _normalize(path)
    with np.load(path, allow_pickle=False) as data:
        if _HEADER_KEY not in data.files:
            raise ValueError(
                f"{path} is not a fingerprint archive (missing header)"
            )
        header = json.loads(data[_HEADER_KEY].item())
        version = header.get("format")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported fingerprint format {version!r} in {path} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        arrays = {key: data[key] for key in data.files if key != _HEADER_KEY}
    return WorkloadFingerprint.from_arrays(header, arrays)


def load_synopsis(path: str | Path) -> PASSSynopsis | DynamicPASS | ShardedSynopsis:
    """Load a synopsis saved with :func:`save_synopsis`."""
    path = _normalize(path)
    with np.load(path, allow_pickle=False) as data:
        if _HEADER_KEY not in data.files:
            raise ValueError(f"{path} is not a synopsis archive (missing header)")
        header = json.loads(data[_HEADER_KEY].item())
        version = header.get("format")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported synopsis format {version!r} in {path} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        arrays = {key: data[key] for key in data.files if key != _HEADER_KEY}
    if header.get("kind") == "sharded":
        return ShardedSynopsis.from_arrays(arrays, header)
    if header.get("kind") == "dynamic":
        return DynamicPASS.from_arrays(arrays, header)
    return PASSSynopsis.from_arrays(arrays, header)


def save_catalog(
    catalog: SynopsisCatalog,
    directory: str | Path,
    *,
    workloads: Mapping[str, WorkloadFingerprint] | None = None,
) -> Path:
    """Persist every catalog entry plus a ``catalog.json`` manifest.

    ``workloads`` optionally maps entry names to their build-time workload
    fingerprints; each is saved as a sibling ``<name>.workload.npz`` and
    referenced from the manifest so :func:`load_catalog_workloads` can
    restore the drift baselines later.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest: dict = {"format": FORMAT_VERSION, "entries": []}
    for entry in catalog.entries():
        file_name = f"{entry.name}.pass.npz"
        save_synopsis(entry.synopsis, directory / file_name)
        meta = {
            "name": entry.name,
            "file": file_name,
            "table_name": entry.table_name,
            "predicate_columns": list(entry.predicate_columns),
        }
        fingerprint = (workloads or {}).get(entry.name)
        if fingerprint is not None:
            workload_file = f"{entry.name}.workload.npz"
            save_workload_fingerprint(fingerprint, directory / workload_file)
            meta["workload"] = workload_file
        manifest["entries"].append(meta)
    manifest_path = directory / "catalog.json"
    # The manifest is the catalog's commit point — write it atomically too,
    # after every archive it references exists on disk.
    fd, tmp_name = tempfile.mkstemp(
        prefix=".catalog.json.", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(manifest, indent=2))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, manifest_path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return manifest_path


def load_catalog(
    directory: str | Path, tables: Mapping[str, Table] | None = None
) -> SynopsisCatalog:
    """Rebuild a catalog saved with :func:`save_catalog`.

    Parameters
    ----------
    directory:
        The directory the catalog was saved to.
    tables:
        Optional ``table_name -> Table`` mapping; every table provided is
        re-registered as the exact-scan fallback for its queries.
    """
    directory = Path(directory)
    manifest = json.loads((directory / "catalog.json").read_text())
    version = manifest.get("format")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported catalog format {version!r} in {directory} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    catalog = SynopsisCatalog()
    for meta in manifest["entries"]:
        synopsis = load_synopsis(directory / meta["file"])
        catalog.register(
            meta["name"],
            synopsis,
            table_name=meta["table_name"],
            predicate_columns=tuple(meta["predicate_columns"]),
        )
    for table_name, table in (tables or {}).items():
        catalog.register_table(table, name=table_name)
    return catalog


def load_catalog_workloads(
    directory: str | Path,
) -> dict[str, WorkloadFingerprint]:
    """Build-time fingerprints saved next to a catalog, keyed by entry name.

    Entries saved without a ``workloads`` mapping are simply absent; the
    result feeds straight into
    :class:`~repro.obs.drift.WorkloadDriftDetector`.
    """
    directory = Path(directory)
    manifest = json.loads((directory / "catalog.json").read_text())
    baselines: dict[str, WorkloadFingerprint] = {}
    for meta in manifest["entries"]:
        workload_file = meta.get("workload")
        if workload_file:
            baselines[meta["name"]] = load_workload_fingerprint(
                directory / workload_file
            )
    return baselines
