"""The asyncio serving front end: coalescing, micro-batching, backpressure.

:class:`AsyncServingEngine` turns a synchronous
:class:`~repro.serving.engine.ServingEngine` into an asyncio service shaped
for duplicate-heavy concurrent traffic:

* **Request coalescing** — concurrent canonically-identical queries share
  one execution future (:mod:`repro.serving.coalesce`), so a dashboard
  stampede costs one synopsis pass instead of N.
* **Micro-batch scheduling** — distinct requests accumulate under a
  configurable time/size window (:mod:`repro.serving.scheduler`) and
  dispatch through the engine's vectorized ``execute_batch`` path: one lock
  acquisition and one shared frontier + mask pass per window per synopsis.
  Because every PASS aggregate is a commutative/associative reduction over
  partition statistics and stratified samples, batching changes *where* the
  work happens, never the answers.
* **Backpressure** — past ``max_pending`` outstanding requests, new work is
  rejected with a typed :class:`~repro.serving.scheduler.Overloaded` error
  rather than queued unboundedly.
* **Serialized writes** — :meth:`insert` / :meth:`delete` run through the
  same scheduler queue, so every write has a definite position among the
  read batches, and the moment a write is applied it atomically detaches
  in-flight coalesced futures whose predicate region overlaps the updated
  partition (the PR-1 box-overlap invalidation, lifted to futures).
  Waiters that joined before the write keep their pre-write answer — they
  are linearized before it — while any request admitted after the write
  re-executes against the updated synopsis.

The engine is event-loop-local: all coroutine methods must be awaited on
the loop that started it.  The blocking synopsis work itself runs on an
executor thread, so the loop stays responsive while a batch executes.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.query.predicate import Box
from repro.query.query import AggregateQuery
from repro.result import AQPResult
from repro.serving.coalesce import CoalescedRequest, RequestCoalescer
from repro.serving.engine import ServingEngine
from repro.serving.scheduler import MicroBatchScheduler, Overloaded, SchedulerStats

__all__ = ["AsyncServingEngine", "AsyncServingStats"]


@dataclass(frozen=True)
class AsyncServingStats:
    """Telemetry snapshot of the async tier (engine stats live one level down).

    Attributes
    ----------
    scheduler:
        Queue/batch counters from the micro-batch scheduler.
    coalesced:
        Requests that attached to an already-in-flight identical query.
    invalidated_futures:
        In-flight coalesced futures detached by writer box-overlap
        invalidation.
    inflight:
        Coalesced executions currently outstanding.
    """

    scheduler: SchedulerStats
    coalesced: int
    invalidated_futures: int
    inflight: int


class AsyncServingEngine:
    """Asyncio front end over a :class:`ServingEngine`.

    Parameters
    ----------
    engine:
        The synchronous serving engine to front.  Configure result caching
        and batch vectorization there (``vectorized_batches=True`` is the
        recommended pairing — micro-batches then cost one moments pass per
        touched leaf).
    max_batch / batch_window / max_pending:
        Micro-batch window and admission bounds, passed to
        :class:`~repro.serving.scheduler.MicroBatchScheduler`.
    executor:
        Executor for the blocking synopsis work (None uses the loop's
        default thread pool).

    Use as an async context manager, or call :meth:`start` / :meth:`stop`::

        async with AsyncServingEngine(engine) as tier:
            result = await tier.execute(query)
    """

    def __init__(
        self,
        engine: ServingEngine,
        max_batch: int = 64,
        batch_window: float = 0.002,
        max_pending: int = 4096,
        executor: Executor | None = None,
    ) -> None:
        self._engine = engine
        self._executor = executor
        self._coalescer = RequestCoalescer()
        self._scheduler = MicroBatchScheduler(
            self._dispatch,
            max_batch=max_batch,
            batch_window=batch_window,
            max_pending=max_pending,
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._invalidated_futures = 0

    @property
    def engine(self) -> ServingEngine:
        """The wrapped synchronous serving engine."""
        return self._engine

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "AsyncServingEngine":
        """Bind to the running event loop and start the drain task."""
        loop = asyncio.get_running_loop()
        if self._loop is not None and self._loop is not loop:
            raise RuntimeError(
                "AsyncServingEngine is bound to another event loop; "
                "create one engine per loop"
            )
        self._loop = loop
        self._scheduler.start()
        return self

    async def stop(self) -> None:
        """Drain queued work and stop the scheduler."""
        await self._scheduler.stop()

    async def __aenter__(self) -> "AsyncServingEngine":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    async def execute(
        self, query: AggregateQuery, table: str | None = None
    ) -> AQPResult:
        """Answer one query through cache, coalescing, and micro-batching.

        Raises :class:`~repro.serving.scheduler.Overloaded` when admission
        control rejects the request, and propagates execution errors (e.g.
        ``LookupError`` for unroutable queries) to every coalesced waiter.
        """
        loop = self._require_started()
        cached = self._engine.peek(query, table)
        if cached is not None:
            return cached
        request, is_leader = self._coalescer.admit(query, table, loop)
        if is_leader:
            try:
                self._scheduler.submit(request)
            except Overloaded:
                # Nobody can have joined between admit and submit (both run
                # synchronously on the loop), so the future dies unobserved.
                self._coalescer.detach(request)
                request.future.cancel()
                raise
        result = await asyncio.shield(request.future)
        return result  # type: ignore[return-value]

    async def execute_many(
        self, queries: Sequence[AggregateQuery], table: str | None = None
    ) -> list[AQPResult]:
        """Answer several queries concurrently; results align with the input.

        All requests are admitted together, so duplicates inside ``queries``
        coalesce and the distinct remainder lands in the same micro-batch
        window when it fits.
        """
        return list(
            await asyncio.gather(*(self.execute(query, table) for query in queries))
        )

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    async def insert(self, name: str, row: Mapping[str, float]) -> Box:
        """Insert a tuple through the scheduler's serialized write path.

        Resolves once the update is applied *and* overlapping in-flight
        coalesced futures are detached; a request issued after this returns
        observes the update.  Returns the updated leaf partition's box.
        """
        return await self._apply_update(name, row, "insert")

    async def delete(self, name: str, row: Mapping[str, float]) -> Box:
        """Delete a tuple through the scheduler's serialized write path.

        See :meth:`insert` for the ordering guarantee.
        """
        return await self._apply_update(name, row, "delete")

    async def _apply_update(
        self, name: str, row: Mapping[str, float], kind: str
    ) -> Box:
        loop = self._require_started()
        engine_apply = self._engine.insert if kind == "insert" else self._engine.delete

        async def apply() -> Box:
            return await loop.run_in_executor(self._executor, engine_apply, name, row)

        def on_applied(box: Box) -> None:
            self._invalidated_futures += self._coalescer.invalidate_overlapping(box)

        future = self._scheduler.submit_write(apply, on_applied)
        return await asyncio.shield(future)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def stats(self) -> AsyncServingStats:
        """A snapshot of the async tier's coalescing and queue telemetry."""
        return AsyncServingStats(
            scheduler=self._scheduler.snapshot(),
            coalesced=self._coalescer.joined,
            invalidated_futures=self._invalidated_futures,
            inflight=len(self._coalescer),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_started(self) -> asyncio.AbstractEventLoop:
        loop = asyncio.get_running_loop()
        if self._loop is None or not self._scheduler.running:
            raise RuntimeError(
                "AsyncServingEngine is not started; use 'async with' or await start()"
            )
        if loop is not self._loop:
            raise RuntimeError(
                "AsyncServingEngine methods must run on the loop that started it"
            )
        return loop

    async def _dispatch(self, requests: list[CoalescedRequest]) -> None:
        """Execute one sealed micro-batch on the executor and resolve futures."""
        assert self._loop is not None
        groups: dict[str | None, list[CoalescedRequest]] = {}
        for request in requests:
            groups.setdefault(request.table, []).append(request)

        def run() -> list[tuple[CoalescedRequest, AQPResult | None, Exception | None]]:
            outcomes: list[
                tuple[CoalescedRequest, AQPResult | None, Exception | None]
            ] = []
            for table, group in groups.items():
                try:
                    results = self._engine.execute_batch(
                        [request.query for request in group], table=table
                    )
                except Exception as exc:  # noqa: BLE001 - forwarded to waiters
                    outcomes.extend((request, None, exc) for request in group)
                else:
                    outcomes.extend(
                        (request, result, None)
                        for request, result in zip(group, results)
                    )
            return outcomes

        try:
            outcomes = await self._loop.run_in_executor(self._executor, run)
        except Exception as exc:
            # The executor itself failed (e.g. a custom executor was shut
            # down).  Detach every request so the dead futures cannot
            # collect further joiners, then fail the waiters.
            for request in requests:
                self._coalescer.detach(request)
                if not request.future.done():
                    request.future.set_exception(exc)
            return
        for request, result, exc in outcomes:
            # Detach before resolving: a resolved future must not collect
            # further joiners (they would skip the result cache's staleness
            # guarantees); post-resolution arrivals probe the cache instead.
            self._coalescer.detach(request)
            if request.future.done():
                continue
            if exc is not None:
                request.future.set_exception(exc)
            else:
                request.future.set_result(result)
