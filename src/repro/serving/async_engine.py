"""The asyncio serving front end: coalescing, micro-batching, backpressure.

:class:`AsyncServingEngine` turns a synchronous
:class:`~repro.serving.engine.ServingEngine` into an asyncio service shaped
for duplicate-heavy concurrent traffic:

* **Request coalescing** — concurrent canonically-identical queries share
  one execution future (:mod:`repro.serving.coalesce`), so a dashboard
  stampede costs one synopsis pass instead of N.
* **Micro-batch scheduling** — distinct requests accumulate under a
  configurable time/size window (:mod:`repro.serving.scheduler`) and
  dispatch through the engine's vectorized ``execute_batch`` path: one lock
  acquisition and one shared frontier + mask pass per window per synopsis.
  Because every PASS aggregate is a commutative/associative reduction over
  partition statistics and stratified samples, batching changes *where* the
  work happens, never the answers.
* **Backpressure** — past ``max_pending`` outstanding requests, new work is
  rejected with a typed :class:`~repro.serving.scheduler.Overloaded` error
  rather than queued unboundedly.
* **Serialized writes** — :meth:`insert` / :meth:`delete` run through the
  same scheduler queue, so every write has a definite position among the
  read batches, and the moment a write is applied it atomically detaches
  in-flight coalesced futures whose predicate region overlaps the updated
  partition (the PR-1 box-overlap invalidation, lifted to futures).
  Waiters that joined before the write keep their pre-write answer — they
  are linearized before it — while any request admitted after the write
  re-executes against the updated synopsis.

The engine is event-loop-local: all coroutine methods must be awaited on
the loop that started it.  The blocking synopsis work itself runs on an
executor thread, so the loop stays responsive while a batch executes.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import Executor
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.obs import Observability
from repro.query.predicate import Box
from repro.query.query import AggregateQuery
from repro.result import AQPResult
from repro.serving.coalesce import CoalescedRequest, RequestCoalescer
from repro.serving.engine import _NO_STAGES, ServingEngine
from repro.serving.scheduler import MicroBatchScheduler, Overloaded, SchedulerStats

__all__ = ["AsyncServingEngine", "AsyncServingStats"]


@dataclass(frozen=True)
class AsyncServingStats:
    """Telemetry snapshot of the async tier (engine stats live one level down).

    Attributes
    ----------
    scheduler:
        Queue/batch counters from the micro-batch scheduler.
    coalesced:
        Requests that attached to an already-in-flight identical query.
    invalidated_futures:
        In-flight coalesced futures detached by writer box-overlap
        invalidation.
    inflight:
        Coalesced executions currently outstanding.
    """

    scheduler: SchedulerStats
    coalesced: int
    invalidated_futures: int
    inflight: int

    def as_dict(self) -> dict[str, object]:
        """Field-name-keyed dict view; nested snapshots nest as dicts
        (the serving stack's uniform ``as_dict()`` contract — see
        :meth:`repro.serving.stats.StatsSnapshot.as_dict`)."""
        return {
            "scheduler": self.scheduler.as_dict(),
            "coalesced": self.coalesced,
            "invalidated_futures": self.invalidated_futures,
            "inflight": self.inflight,
        }


class AsyncServingEngine:
    """Asyncio front end over a :class:`ServingEngine`.

    Parameters
    ----------
    engine:
        The synchronous serving engine to front.  Configure result caching
        and batch vectorization there (``vectorized_batches=True`` is the
        recommended pairing — micro-batches then cost one moments pass per
        touched leaf).
    max_batch / batch_window / max_pending:
        Micro-batch window and admission bounds, passed to
        :class:`~repro.serving.scheduler.MicroBatchScheduler`.
    executor:
        Executor for the blocking synopsis work (None uses the loop's
        default thread pool).
    obs:
        The shared :class:`~repro.obs.Observability` context; defaults to
        the wrapped engine's, so wiring the engine instruments the whole
        stack.  When enabled, every request gets a ``serve.request`` root
        span whose children cover the cache probe, coalesce/submit path,
        queue wait, and the engine's batch execution — the span handle is
        carried on the :class:`CoalescedRequest` across the scheduler /
        executor boundary, where contextvars would be lost.

    Use as an async context manager, or call :meth:`start` / :meth:`stop`::

        async with AsyncServingEngine(engine) as tier:
            result = await tier.execute(query)
    """

    def __init__(
        self,
        engine: ServingEngine,
        max_batch: int = 64,
        batch_window: float = 0.002,
        max_pending: int = 4096,
        executor: Executor | None = None,
        obs: Observability | None = None,
    ) -> None:
        self._engine = engine
        self._executor = executor
        self._obs = obs if obs is not None else engine.obs
        self._coalescer = RequestCoalescer()
        self._scheduler = MicroBatchScheduler(
            self._dispatch,
            max_batch=max_batch,
            batch_window=batch_window,
            max_pending=max_pending,
            obs=self._obs,
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._invalidated_futures = 0
        # Head-sampling state, inlined from the tracer so the per-request
        # dispatch in ``execute`` is one increment + modulo, not a method
        # call into the tracer for every unsampled request.
        self._trace_tick = 0
        self._trace_every = self._obs.tracer.sample_every
        registry = self._obs.metrics
        # Coalesce joins are already tallied by the coalescer itself; the
        # counter mirrors that tally lazily instead of paying an eager
        # ``inc()`` on the join hot path.
        registry.counter(
            "repro_async_coalesced_total",
            "Requests that attached to an in-flight identical query.",
        ).set_function(lambda: float(self._coalescer.joined))
        self._m_invalidated = registry.counter(
            "repro_async_invalidated_futures_total",
            "In-flight coalesced futures detached by writer invalidation.",
        )
        if self._obs.enabled:
            registry.gauge(
                "repro_async_inflight",
                "Coalesced executions currently outstanding.",
            ).set_function(lambda: float(len(self._coalescer)))

    @property
    def obs(self) -> Observability:
        """The observability context (the disabled singleton when unwired)."""
        return self._obs

    @property
    def engine(self) -> ServingEngine:
        """The wrapped synchronous serving engine."""
        return self._engine

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "AsyncServingEngine":
        """Bind to the running event loop and start the drain task."""
        loop = asyncio.get_running_loop()
        if self._loop is not None and self._loop is not loop:
            raise RuntimeError(
                "AsyncServingEngine is bound to another event loop; "
                "create one engine per loop"
            )
        self._loop = loop
        self._scheduler.start()
        return self

    async def stop(self) -> None:
        """Drain queued work and stop the scheduler."""
        await self._scheduler.stop()

    async def __aenter__(self) -> "AsyncServingEngine":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    async def execute(
        self, query: AggregateQuery, table: str | None = None
    ) -> AQPResult:
        """Answer one query through cache, coalescing, and micro-batching.

        Raises :class:`~repro.serving.scheduler.Overloaded` when admission
        control rejects the request, and propagates execution errors (e.g.
        ``LookupError`` for unroutable queries) to every coalesced waiter.
        """
        loop = self._require_started()
        engine = self._engine
        if self._obs.enabled:
            # Head sampling, inline: one request in ``trace_every`` takes
            # the span-building traced path; the rest run the logged path
            # below — metrics and the query log stay full-fidelity, only
            # the span tree is sampled.  Both common paths live in this
            # coroutine body because a sub-coroutine hop per request is one
            # of the larger avoidable costs on the admission hot path.
            every = self._trace_every
            tick = self._trace_tick
            self._trace_tick = tick + 1
            if every == 1 or tick % every == 0:
                return await self._execute_traced(query, table, loop)
            # Unsampled logged path: miss leaders are logged by the engine's
            # batch execution, coalesced joiners are summarized on the
            # leader's record (see ``_dispatch``) and tallied by the
            # coalescer, so only the loop-thread outcomes that never reach
            # the executor — cache hits and rejections — are written here.
            start = time.perf_counter()
            cached = engine.peek_entry(query, table)
            if cached is not None:
                served_by, result = cached
                engine._log_query(
                    query,
                    table,
                    served_by,
                    "cache_hit",
                    (time.perf_counter() - start) * 1e3,
                    _NO_STAGES,
                    result,
                    0,
                )
                return result
            request, is_leader = self._coalescer.admit(query, table, loop)
            if is_leader:
                request.enqueued_s = time.perf_counter()
                try:
                    self._scheduler.submit(request)
                except Overloaded:
                    # Nobody can have joined between admit and submit (both
                    # run synchronously on the loop), so the future dies
                    # unobserved.
                    self._coalescer.detach(request)
                    request.future.cancel()
                    engine._log_query(
                        query,
                        table,
                        "",
                        "rejected",
                        (time.perf_counter() - start) * 1e3,
                        _NO_STAGES,
                        None,
                        0,
                    )
                    raise
            return await asyncio.shield(request.future)  # type: ignore[return-value]
        # Disabled fast path: the shared no-op singleton, zero bookkeeping.
        cached = engine.peek_entry(query, table)
        if cached is not None:
            return cached[1]
        request, is_leader = self._coalescer.admit(query, table, loop)
        if is_leader:
            try:
                self._scheduler.submit(request)
            except Overloaded:
                # See above: the future dies unobserved.
                self._coalescer.detach(request)
                request.future.cancel()
                raise
        return await asyncio.shield(request.future)  # type: ignore[return-value]

    async def _execute_traced(
        self,
        query: AggregateQuery,
        table: str | None,
        loop: asyncio.AbstractEventLoop,
    ) -> AQPResult:
        """The head-sampled request path: one root span, stamped stages.

        Fixed per-request stages (cache probe, scheduler submit, queue wait,
        coalesce join) are stamped onto the root via :meth:`Span.add_stage`;
        only the variable-depth batch execution below the scheduler opens
        real child spans (see ``ServingEngine._execute_batch_impl``).  Only
        one request in ``Observability.trace_sample_rate`` reaches this path
        at all — :meth:`execute` keeps the rest on its inline logged path,
        which records metrics and the query log but builds no spans.
        Together these keep enabled instrumentation inside the benchmark's
        overhead gate.
        """
        obs = self._obs
        tracer = obs.tracer
        start = time.perf_counter()
        root = tracer.start("serve.request", parent=None, start_s=start)
        try:
            cached = self._engine.peek_entry(query, table)
            root.add_stage("cache.probe", time.perf_counter() - start)
            if cached is not None:
                served_by, result = cached
                root.set_attribute("outcome", "cache_hit")
                tracer.end(root)
                self._engine._log_query(
                    query,
                    table,
                    served_by,
                    "cache_hit",
                    total_ms=(time.perf_counter() - start) * 1e3,
                    stages_ms=root.stage_durations_ms(),
                    result=result,
                    trace_id=root.trace_id,
                )
                return result
            request, is_leader = self._coalescer.admit(query, table, loop)
            if is_leader:
                root.set_attribute("outcome", "executed")
                request.span = root
                submitted = time.perf_counter()
                request.enqueued_s = submitted
                try:
                    self._scheduler.submit(request)
                except Overloaded:
                    # See ``execute`` for why detaching here is safe.
                    self._coalescer.detach(request)
                    request.future.cancel()
                    root.set_attribute("outcome", "rejected")
                    self._engine._log_query(
                        query,
                        table,
                        "",
                        "rejected",
                        total_ms=(time.perf_counter() - start) * 1e3,
                        stages_ms={},
                        result=None,
                        trace_id=root.trace_id,
                    )
                    raise
                root.add_stage("scheduler.submit", time.perf_counter() - submitted)
                result = await asyncio.shield(request.future)
                return result  # type: ignore[return-value]
            # Followers leave no per-request log record — the leader's
            # ``coalesced`` summary in ``_dispatch`` carries their count —
            # and the join was already tallied by the coalescer.
            root.set_attribute("outcome", "coalesced")
            leader_span = request.span
            if leader_span is not None:
                root.set_attribute("coalesced_with", leader_span.trace_id)
            joined = time.perf_counter()
            try:
                result = await asyncio.shield(request.future)
            finally:
                root.add_stage("coalesce.join", time.perf_counter() - joined)
            return result  # type: ignore[return-value]
        finally:
            tracer.end(root)

    async def execute_many(
        self, queries: Sequence[AggregateQuery], table: str | None = None
    ) -> list[AQPResult]:
        """Answer several queries concurrently; results align with the input.

        All requests are admitted together, so duplicates inside ``queries``
        coalesce and the distinct remainder lands in the same micro-batch
        window when it fits.
        """
        return list(
            await asyncio.gather(*(self.execute(query, table) for query in queries))
        )

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    async def insert(self, name: str, row: Mapping[str, float]) -> Box:
        """Insert a tuple through the scheduler's serialized write path.

        Resolves once the update is applied *and* overlapping in-flight
        coalesced futures are detached; a request issued after this returns
        observes the update.  Returns the updated leaf partition's box.
        """
        return await self._apply_update(name, row, "insert")

    async def delete(self, name: str, row: Mapping[str, float]) -> Box:
        """Delete a tuple through the scheduler's serialized write path.

        See :meth:`insert` for the ordering guarantee.
        """
        return await self._apply_update(name, row, "delete")

    async def _apply_update(
        self, name: str, row: Mapping[str, float], kind: str
    ) -> Box:
        loop = self._require_started()
        engine_apply = self._engine.insert if kind == "insert" else self._engine.delete

        async def apply() -> Box:
            return await loop.run_in_executor(self._executor, engine_apply, name, row)

        def on_applied(box: Box) -> None:
            detached = self._coalescer.invalidate_overlapping(box)
            self._invalidated_futures += detached
            if detached:
                self._m_invalidated.inc(float(detached))

        future = self._scheduler.submit_write(apply, on_applied)
        return await asyncio.shield(future)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def stats(self) -> AsyncServingStats:
        """A snapshot of the async tier's coalescing and queue telemetry."""
        return AsyncServingStats(
            scheduler=self._scheduler.snapshot(),
            coalesced=self._coalescer.joined,
            invalidated_futures=self._invalidated_futures,
            inflight=len(self._coalescer),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_started(self) -> asyncio.AbstractEventLoop:
        loop = asyncio.get_running_loop()
        if self._loop is None or not self._scheduler.running:
            raise RuntimeError(
                "AsyncServingEngine is not started; use 'async with' or await start()"
            )
        if loop is not self._loop:
            raise RuntimeError(
                "AsyncServingEngine methods must run on the loop that started it"
            )
        return loop

    async def _dispatch(self, requests: list[CoalescedRequest]) -> None:
        """Execute one sealed micro-batch on the executor and resolve futures."""
        assert self._loop is not None
        tracer = self._obs.tracer
        groups: dict[str | None, list[CoalescedRequest]] = {}
        for request in requests:
            groups.setdefault(request.table, []).append(request)

        # Stamp each request's queue wait (admission -> dispatch) before the
        # batch leaves the loop thread.
        if self._obs.enabled:
            now = time.perf_counter()
            for request in requests:
                if request.span is not None:
                    request.span.add_stage("queue.wait", now - request.enqueued_s)

        def run() -> list[tuple[CoalescedRequest, AQPResult | None, Exception | None]]:
            outcomes: list[
                tuple[CoalescedRequest, AQPResult | None, Exception | None]
            ] = []
            for table, group in groups.items():
                # The engine's batch spans nest under the first request's
                # root: contextvars do not cross run_in_executor, so the
                # carried span handle is re-activated here.  Other requests
                # in the group link to that trace by attribute.  When the
                # first request was not head-sampled, span creation below
                # the scheduler is suppressed outright — otherwise every
                # unsampled batch would open orphan root spans.
                leader_span = group[0].span
                for request in group[1:]:
                    if request.span is not None and leader_span is not None:
                        request.span.set_attribute(
                            "batched_under", leader_span.trace_id
                        )
                ctx = (
                    tracer.activate(leader_span)
                    if leader_span is not None
                    else tracer.suppress()
                )
                with ctx:
                    try:
                        results = self._engine.execute_batch(
                            [request.query for request in group], table=table
                        )
                    except Exception as exc:  # noqa: BLE001 - forwarded to waiters
                        outcomes.extend((request, None, exc) for request in group)
                    else:
                        outcomes.extend(
                            (request, result, None)
                            for request, result in zip(group, results)
                        )
            return outcomes

        try:
            outcomes = await self._loop.run_in_executor(self._executor, run)
        except Exception as exc:
            # The executor itself failed (e.g. a custom executor was shut
            # down).  Detach every request so the dead futures cannot
            # collect further joiners, then fail the waiters.
            for request in requests:
                self._coalescer.detach(request)
                if not request.future.done():
                    request.future.set_exception(exc)
            return
        auditor = self._engine.auditor
        if outcomes and (self._obs.enabled or auditor is not None):
            # One ``coalesced`` summary record per leader that collected
            # joiners, instead of one record per joiner: the record's
            # ``coalesced_waiters`` preserves the traffic weight while the
            # joiners themselves do no log writes.  ``waiters`` is stable
            # here — joins happen on the loop thread and nothing awaits
            # between this snapshot and the detach loop below.  The same
            # pass offers each leader's answer to the accuracy auditor with
            # the joiners' weight, so audit sampling tracks true traffic —
            # the leader itself was already offered inside execute_batch.
            now_s = time.perf_counter()
            summaries = []
            for request, result, exc in outcomes:
                if request.waiters <= 1 or exc is not None:
                    continue
                # Resolving the serving synopsis costs a routing pass per
                # leader, so it only happens when an auditor wants the
                # offer; without one the summary keeps the empty name and
                # the obs-only path stays as cheap as before.
                name = ""
                if auditor is not None and result is not None:
                    entry = self._engine.catalog.route(
                        request.query, request.table, record=False
                    )
                    if entry is not None:
                        name = entry.name
                        # Response-time offer: outside the engine's
                        # read-lock scope, so bound coverage is not
                        # certified (an update may have slipped between
                        # compute and offer).
                        auditor.offer(
                            request.query,
                            request.table,
                            name,
                            result,
                            weight=request.waiters - 1,
                            certified=False,
                        )
                if self._obs.enabled:
                    summaries.append(
                        self._engine._make_payload(
                            request.query,
                            request.table,
                            name,
                            "coalesced",
                            (now_s - request.enqueued_s) * 1e3,
                            _NO_STAGES,
                            result,
                            request.span.trace_id
                            if request.span is not None
                            else 0,
                            request.waiters - 1,
                        )
                    )
            if summaries:
                self._obs.query_log.extend_raw(summaries)
        for request, result, exc in outcomes:
            # Detach before resolving: a resolved future must not collect
            # further joiners (they would skip the result cache's staleness
            # guarantees); post-resolution arrivals probe the cache instead.
            self._coalescer.detach(request)
            if request.future.done():
                continue
            if exc is not None:
                request.future.set_exception(exc)
            else:
                request.future.set_result(result)
