"""In-flight request coalescing for the async serving tier.

Dashboard traffic is duplicate-heavy: when hundreds of clients refresh the
same panel, the serving tier receives many *concurrent* copies of one
canonical query.  A result cache only helps once an answer exists; while the
first copy is still executing, every further copy would redundantly execute
too.  The :class:`RequestCoalescer` closes that gap: requests deduplicate by
canonical cache key (:meth:`AggregateQuery.cache_key` plus the routing
table), so N concurrent identical queries share one
:class:`asyncio.Future` and the synopsis does the work once.

Writers interact with coalescing the same way they interact with the result
cache (PR-1 box-overlap invalidation): after an update lands, any in-flight
future whose predicate region overlaps the updated partition is *detached*
from the registry.  Waiters already attached keep their future — they
arrived before the write, so serving them the pre-write answer is
linearizable — while requests arriving after the write start a fresh
execution that observes the post-write synopsis.

The coalescer is an event-loop-local object: every method must be called
from the owning loop's thread (the async engine guarantees this), which is
why no locks appear here.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.obs.tracing import Span
    from repro.query.predicate import Box
    from repro.query.query import AggregateQuery

__all__ = ["CoalescedRequest", "RequestCoalescer"]

#: A coalescing key: (routing table name, canonical query key).
CoalesceKey = tuple


class CoalescedRequest:
    """One canonical in-flight execution and the future its waiters share.

    Attributes
    ----------
    key:
        The canonical coalescing key ``(table, query.cache_key())``.
    query / table:
        The representative query (all joiners are canonically equal).
    future:
        The shared :class:`asyncio.Future` resolved with the
        :class:`~repro.result.AQPResult` (or failed with the execution
        error) exactly once.
    waiters:
        Number of requests attached to the future (1 for the leader).
    span:
        The leader's root trace span, carried explicitly across the
        scheduler boundary — ``loop.run_in_executor`` does not copy the
        client coroutine's contextvars, so the dispatch path re-activates
        this handle instead (None when tracing is disabled).
    enqueued_s:
        ``time.perf_counter()`` at scheduler admission; dispatch backdates
        the request's queue-wait span from it (0.0 when untraced).
    """

    __slots__ = ("key", "query", "table", "future", "waiters", "span", "enqueued_s")

    def __init__(
        self,
        key: CoalesceKey,
        query: "AggregateQuery",
        table: str | None,
        future: "asyncio.Future[object]",
    ) -> None:
        self.key = key
        self.query = query
        self.table = table
        self.future = future
        self.waiters = 1
        self.span: "Span | None" = None
        self.enqueued_s = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.future.done() else "pending"
        return f"CoalescedRequest({self.key!r}, waiters={self.waiters}, {state})"


class RequestCoalescer:
    """Deduplicates concurrent canonically-equal queries onto shared futures."""

    def __init__(self) -> None:
        self._inflight: dict[CoalesceKey, CoalescedRequest] = {}
        self._joined = 0

    def __len__(self) -> int:
        return len(self._inflight)

    def __iter__(self) -> Iterator[CoalescedRequest]:
        return iter(self._inflight.values())

    @property
    def joined(self) -> int:
        """Total requests that attached to an existing in-flight future."""
        return self._joined

    def admit(
        self,
        query: "AggregateQuery",
        table: str | None,
        loop: asyncio.AbstractEventLoop,
    ) -> tuple[CoalescedRequest, bool]:
        """Join the in-flight execution for a query, or lead a new one.

        Returns ``(request, is_leader)``: the leader is responsible for
        scheduling the execution and resolving the shared future; followers
        just await it.
        """
        key = (table, query.cache_key())
        existing = self._inflight.get(key)
        if existing is not None and not existing.future.done():
            existing.waiters += 1
            self._joined += 1
            return existing, False
        request = CoalescedRequest(key, query, table, loop.create_future())
        self._inflight[key] = request
        return request, True

    def detach(self, request: CoalescedRequest) -> None:
        """Stop offering a request for coalescing (resolution still pending).

        A no-op when the registry has already moved on (e.g. the request was
        detached by a writer and a fresh execution now owns the key).
        """
        if self._inflight.get(request.key) is request:
            del self._inflight[request.key]

    def invalidate_overlapping(self, box: "Box") -> int:
        """Detach every in-flight future whose region overlaps ``box``.

        Mirrors the result cache's box-overlap invalidation: predicates with
        no constraints cover everything and always overlap.  Detached
        executions still resolve for the waiters that already joined (they
        arrived before the write); post-write arrivals re-execute.  Returns
        the number of futures detached.
        """
        doomed = []
        for request in self._inflight.values():
            predicate = request.query.predicate
            if len(predicate) == 0 or predicate.overlaps_box(box):
                doomed.append(request)
        for request in doomed:
            del self._inflight[request.key]
        return len(doomed)

    def invalidate_all(self) -> int:
        """Detach every in-flight future; returns the count."""
        count = len(self._inflight)
        self._inflight.clear()
        return count
