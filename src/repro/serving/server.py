"""Multi-process serving: a spawn-based worker pool plus an HTTP front end.

The single-process serving tier (:class:`~repro.serving.engine.ServingEngine`
and the asyncio :class:`~repro.serving.async_engine.AsyncServingEngine`) is
bounded by one interpreter's GIL: the numpy kernels release it only in
bursts, so CPU-bound query traffic cannot use more than roughly one core.
This module is the scale-out tier:

* a :class:`SynopsisPublisher` (:mod:`repro.serving.shm`) lays the flat
  synopsis buffers out in shared memory, once;
* :class:`MPServingPool` runs one worker process per core (``spawn`` start
  method, shared with :data:`repro.distributed.parallel.SPAWN_CONTEXT`);
  each worker rehydrates zero-copy :class:`~repro.core.soa.FlatSynopsis`
  views over the shared segments — no worker ever holds a private copy of
  a synopsis, so memory stays O(one synopsis) no matter the core count;
* workers validate the publisher's epoch on every chunk and re-attach when
  a rebuild flipped it, so they never serve a torn synopsis;
* :class:`MPHTTPServer` is a small stdlib HTTP front end mapping a JSON
  protocol onto canonical :class:`~repro.query.query.AggregateQuery` /
  :class:`~repro.query.groupby.GroupByQuery` objects, behind the same
  bounded admission control (typed
  :class:`~repro.serving.scheduler.Overloaded` -> HTTP 429) as the async
  tier.

Worker-side routing mirrors :meth:`repro.serving.catalog.SynopsisCatalog.
route` — same column checks, same tightest-fit scoring — so a query
answered by the pool routes to the same synopsis the in-process engine
would pick, and (because the flat engine is bit-identical to the object
path) returns the identical :class:`~repro.result.AQPResult`.
"""

from __future__ import annotations

import json
import math
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Mapping, Sequence

from repro.distributed.parallel import SPAWN_CONTEXT
from repro.obs import Observability
from repro.obs.export import prometheus_text
from repro.query.aggregates import SKETCH_AGGREGATES
from repro.query.groupby import GroupByQuery, GroupingColumn
from repro.query.predicate import Interval, RectPredicate
from repro.query.query import AggregateQuery
from repro.result import AQPResult
from repro.serving.scheduler import Overloaded
from repro.serving.shm import EpochRegister, attach_flat_synopsis

__all__ = [
    "MPServingPool",
    "MPHTTPServer",
    "query_from_payload",
    "query_to_payload",
    "result_to_payload",
    "result_from_payload",
]


# ----------------------------------------------------------------------
# JSON protocol (the HTTP boundary; the pool itself ships pickled queries)
# ----------------------------------------------------------------------
def query_to_payload(query: AggregateQuery, table: str | None = None) -> dict:
    """Encode a canonical query as the wire-protocol JSON payload."""
    payload: dict = {
        "agg": query.agg.name,
        "value_column": query.value_column,
        "predicate": {
            column: [low, high]
            for column, low, high in query.predicate.canonical_key()
        },
    }
    if query.quantile is not None:
        payload["quantile"] = query.quantile
    if table is not None:
        payload["table"] = table
    return payload


def query_from_payload(payload: Mapping) -> tuple[AggregateQuery, str | None]:
    """Decode a wire-protocol payload into ``(query, table_name)``.

    Raises ``ValueError`` on malformed payloads (unknown aggregate, bad
    interval bounds) — the HTTP front end maps that to a 400 response.
    """
    try:
        agg = payload["agg"]
        value_column = payload["value_column"]
    except KeyError as missing:
        raise ValueError(f"query payload is missing {missing}") from None
    intervals = {}
    for column, bounds in dict(payload.get("predicate", {})).items():
        low, high = bounds
        intervals[str(column)] = Interval(
            float(low) if low is not None else -math.inf,
            float(high) if high is not None else math.inf,
        )
    query = AggregateQuery(
        agg,
        str(value_column),
        RectPredicate(intervals),
        quantile=payload.get("quantile"),
    )
    return query, payload.get("table")


def result_to_payload(result: AQPResult) -> dict:
    """Encode an :class:`AQPResult` as its JSON wire form (field-exact).

    Floats pass through ``repr``-faithful JSON encoding (NaN and the
    infinities included), so decoding with :func:`result_from_payload`
    reproduces a bit-identical result.
    """
    return {
        "estimate": result.estimate,
        "ci_half_width": result.ci_half_width,
        "variance": result.variance,
        "hard_lower": result.hard_lower,
        "hard_upper": result.hard_upper,
        "tuples_processed": result.tuples_processed,
        "tuples_skipped": result.tuples_skipped,
        "exact": result.exact,
    }


def result_from_payload(payload: Mapping) -> AQPResult:
    """Decode the JSON wire form back into an :class:`AQPResult`."""
    return AQPResult(
        estimate=float(payload["estimate"]),
        ci_half_width=float(payload["ci_half_width"]),
        variance=float(payload["variance"]),
        hard_lower=float(payload["hard_lower"]),
        hard_upper=float(payload["hard_upper"]),
        tuples_processed=int(payload["tuples_processed"]),
        tuples_skipped=int(payload["tuples_skipped"]),
        exact=bool(payload["exact"]),
    )


# ----------------------------------------------------------------------
# Worker side (module-level so the spawn pickler can reach it)
# ----------------------------------------------------------------------
#: Per-worker-process state: the attached epoch register, the epoch the
#: current attachments were made under, and the rehydrated engines.
_WORKER: dict = {}


def _worker_init(register_name: str) -> None:
    """Pool initializer: attach the epoch register in this worker process."""
    _WORKER.clear()
    _WORKER["register"] = EpochRegister.attach(register_name)
    _WORKER["epoch"] = -1
    _WORKER["engines"] = {}
    _WORKER["reattaches"] = 0


def _worker_refresh() -> int:
    """Re-attach to the current generation when the epoch moved.

    Returns the epoch the worker is serving under.  A publish can race the
    manifest read (the named segment may be unlinked between the manifest
    snapshot and the attach) — the refresh simply retries from a fresh
    snapshot; the seqlock guarantees each snapshot is internally
    consistent.
    """
    register: EpochRegister = _WORKER["register"]
    if register.epoch() == _WORKER["epoch"]:
        return _WORKER["epoch"]
    while True:
        epoch, manifest = register.read()
        engines = {}
        attached = []
        try:
            for entry in manifest.get("entries", []):
                flat, attachment = attach_flat_synopsis(entry["segment"])
                attached.append(attachment)
                engines[entry["name"]] = (entry, flat, attachment)
        except FileNotFoundError:
            for attachment in attached:
                attachment.close()
            continue  # lost the race with a publish; take a fresh snapshot
        for _, _, old in _WORKER["engines"].values():
            old.close()
        _WORKER["engines"] = engines
        _WORKER["epoch"] = epoch
        _WORKER["reattaches"] += 1
        return epoch


def _worker_route(query: AggregateQuery, table: str | None):
    """Mirror of :meth:`SynopsisCatalog.route` over the published entries.

    Same candidate filter (table, value column, constrained columns,
    sketch support — the flat engine carries no sketches, so QUANTILE /
    COUNT_DISTINCT never match) and the same tightest-fit scoring, so the
    pool and the in-process engine pick the same synopsis for any query
    both can answer.
    """
    if query.agg in SKETCH_AGGREGATES:
        return None
    constrained = {column for column, _, _ in query.predicate.canonical_key()}
    best = None
    best_score = None
    for entry, flat, _ in _WORKER["engines"].values():
        if table is not None and entry["table_name"] not in (None, table):
            continue
        if query.value_column != entry["value_column"]:
            continue
        if not constrained <= set(entry["predicate_columns"]):
            continue
        surplus = len(set(entry["predicate_columns"]) - constrained)
        score = (-surplus, entry["n_partitions"])
        if best_score is None or score > best_score:
            best, best_score = flat, score
    return best


def _worker_execute_chunk(
    items: Sequence[tuple[AggregateQuery, str | None]],
) -> tuple[list[AQPResult], dict]:
    """Execute one chunk of ``(query, table)`` pairs in this worker.

    Returns the results (input order) plus a stats delta the parent merges
    into its metrics registry: served count, the epoch the chunk ran
    under, and how many re-attach cycles this worker has performed.
    """
    epoch = _worker_refresh()
    results = []
    for query, table in items:
        flat = _worker_route(query, table)
        if flat is None:
            published = ", ".join(_WORKER["engines"]) or "<none>"
            raise LookupError(
                f"no published synopsis answers {query.agg.name} over "
                f"{query.value_column!r} (published: {published}); serve it "
                "through the in-process engine"
            )
        results.append(flat.query(query))
    return results, {
        "served": len(results),
        "epoch": epoch,
        "reattaches": _WORKER["reattaches"],
        "pid": os.getpid(),
    }


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class MPServingPool:
    """A process-per-core pool answering queries over published synopses.

    Parameters
    ----------
    register_name:
        The :attr:`SynopsisPublisher.register_name` of the owner's epoch
        register (pass ``publisher.register_name``; the pool never writes).
    n_workers:
        Worker process count (process-per-core; defaults to the machine's
        core count).
    chunk_size:
        Queries shipped per worker dispatch in :meth:`execute_batch`.
        ``None`` auto-sizes to roughly four chunks per worker, which
        amortizes the pickle/IPC round trip while keeping the pool busy.
    obs:
        Observability context; worker stats deltas merge into its metrics
        registry (``repro_mp_requests_total`` per worker dispatch,
        ``repro_mp_chunks_total``, ``repro_mp_reattach_total``) so one
        ``/metrics`` scrape covers the whole pool.

    Workers start lazily on the first query and are shut down by
    :meth:`close` (also a context manager), which the shutdown-leak check
    in CI verifies leaves no live worker processes behind.
    """

    def __init__(
        self,
        register_name: str,
        n_workers: int | None = None,
        chunk_size: int | None = None,
        obs: Observability | None = None,
    ) -> None:
        if n_workers is not None and n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self.n_workers = n_workers or (os.cpu_count() or 1)
        self.chunk_size = chunk_size
        self._register_name = register_name
        self._pool: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()
        self._closed = False
        self._obs = obs if obs is not None else Observability.disabled()
        registry = self._obs.metrics
        self._m_requests = registry.counter(
            "repro_mp_requests_total",
            "Queries answered by the multi-process serving pool.",
        )
        self._m_chunks = registry.counter(
            "repro_mp_chunks_total",
            "Chunk dispatches to multi-process serving workers.",
        )
        self._m_reattach = registry.counter(
            "repro_mp_reattach_total",
            "Worker re-attachments observed after epoch flips.",
        )
        self._seen_reattaches: dict[int, int] = {}
        self._last_epoch = 0

    @property
    def epoch(self) -> int:
        """The latest publisher epoch reported by a worker (0 before any)."""
        return self._last_epoch

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._closed:
                raise RuntimeError("pool is closed")
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.n_workers,
                    mp_context=SPAWN_CONTEXT,
                    initializer=_worker_init,
                    initargs=(self._register_name,),
                )
            return self._pool

    def _merge_stats(self, stats: dict) -> None:
        self._m_requests.inc(float(stats["served"]))
        self._m_chunks.inc()
        self._last_epoch = max(self._last_epoch, stats["epoch"])
        # Reattach counts are cumulative per worker; meter the delta.
        key = stats.get("pid", 0)
        previous = self._seen_reattaches.get(key, 0)
        if stats["reattaches"] > previous:
            self._m_reattach.inc(float(stats["reattaches"] - previous))
            self._seen_reattaches[key] = stats["reattaches"]

    def execute(
        self, query: AggregateQuery, table: str | None = None
    ) -> AQPResult:
        """Answer one query on a worker process.

        Raises ``LookupError`` when no published synopsis can answer it
        (sketch aggregates included — the flat engine carries no
        sketches); such queries belong on the in-process engine.
        """
        return self.execute_batch([query], table)[0]

    def execute_batch(
        self, queries: Sequence[AggregateQuery], table: str | None = None
    ) -> list[AQPResult]:
        """Answer a batch across the pool; results align with input order.

        The batch is split into chunks dispatched concurrently to the
        workers, so wall-clock cost is the per-chunk critical path — the
        near-linear scaling ``benchmarks/bench_mp_serving.py`` measures.
        """
        queries = list(queries)
        if not queries:
            return []
        pool = self._ensure_pool()
        chunk = self.chunk_size or max(
            1, -(-len(queries) // (self.n_workers * 4))
        )
        items = [(query, table) for query in queries]
        futures = [
            pool.submit(_worker_execute_chunk, items[start : start + chunk])
            for start in range(0, len(items), chunk)
        ]
        results: list[AQPResult] = []
        for future in futures:
            chunk_results, stats = future.result()
            self._merge_stats(stats)
            results.extend(chunk_results)
        return results

    def execute_grouped(self, groupby: GroupByQuery, table: str | None = None):
        """Answer a group-by query by fanning its cells out over the pool.

        The query is compiled without a distinct source, so every grouping
        must carry explicit bin edges or values (the pool has no fallback
        table to discover distinct values from).  Returns
        ``(plan, cell_results)`` where ``cell_results[i]`` holds one
        :class:`AQPResult` per aggregate for the i-th live cell.
        """
        plan = groupby.compile()
        queries = plan.queries()
        flat = self.execute_batch(queries, table)
        n_aggs = len(plan.aggregates)
        cells = [
            tuple(flat[start : start + n_aggs])
            for start in range(0, len(flat), n_aggs)
        ]
        return plan, cells

    def close(self) -> None:
        """Shut the worker processes down; idempotent."""
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "MPServingPool":
        """Context-manager support; workers are shut down on exit."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Shut the pool down on context exit."""
        self.close()


class _Handler(BaseHTTPRequestHandler):
    """Request handler mapping the JSON protocol onto the worker pool."""

    protocol_version = "HTTP/1.1"
    server: "MPHTTPServer"

    def log_message(self, format: str, *args: object) -> None:
        """Silence the default per-request stderr logging."""

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        return json.loads(self.rfile.read(length).decode("utf-8"))

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Serve ``/healthz`` and the Prometheus ``/metrics`` exposition."""
        if self.path == "/healthz":
            self._reply(
                200,
                {
                    "status": "ok",
                    "epoch": self.server.pool.epoch,
                    "workers": self.server.pool.n_workers,
                },
            )
        elif self.path == "/metrics":
            text = prometheus_text(self.server.obs.metrics)
            body = text.encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self._reply(404, {"error": f"no route {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """Serve ``/query`` (one aggregate) and ``/groupby`` (cell fan-out)."""
        if self.path not in ("/query", "/groupby"):
            self._reply(404, {"error": f"no route {self.path}"})
            return
        if not self.server.admit():
            rejection = Overloaded(
                self.server.pending, self.server.max_pending
            )
            self._reply(
                429,
                {
                    "error": "overloaded",
                    "detail": str(rejection),
                    "pending": rejection.pending,
                    "capacity": rejection.capacity,
                },
            )
            return
        try:
            payload = self._read_json()
            if self.path == "/query":
                query, table = query_from_payload(payload)
                result = self.server.pool.execute(query, table)
                self._reply(200, {"result": result_to_payload(result)})
            else:
                self._groupby(payload)
        except (ValueError, KeyError, TypeError) as exc:
            self._reply(400, {"error": str(exc)})
        except LookupError as exc:
            self._reply(404, {"error": str(exc)})
        finally:
            self.server.release()

    def _groupby(self, payload: Mapping) -> None:
        groupby = GroupByQuery(
            groupings=tuple(
                GroupingColumn(
                    column=str(grouping["column"]),
                    edges=(
                        tuple(grouping["edges"])
                        if grouping.get("edges") is not None
                        else None
                    ),
                    values=(
                        tuple(grouping["values"])
                        if grouping.get("values") is not None
                        else None
                    ),
                )
                for grouping in payload["groupings"]
            ),
            aggregates=tuple(
                (spec["agg"], spec["value_column"], spec.get("quantile"))
                for spec in payload["aggregates"]
            ),
        )
        plan, cells = self.server.pool.execute_grouped(
            groupby, payload.get("table")
        )
        records = [
            {
                "labels": list(plan.cells[index].labels),
                "results": [result_to_payload(result) for result in row],
            }
            for (index, _), row in zip(plan.live_cells(), cells)
        ]
        self._reply(200, {"group_columns": list(plan.group_columns), "cells": records})


class MPHTTPServer(ThreadingHTTPServer):
    """A JSON-over-HTTP front end for an :class:`MPServingPool`.

    Endpoints: ``POST /query`` (one aggregate query), ``POST /groupby``
    (explicit-binning group-by fan-out), ``GET /healthz``, and ``GET
    /metrics`` (Prometheus exposition of the pool's registry).  Admission
    is a bounded in-flight counter: past ``max_pending`` concurrent
    requests the server answers 429 with the async tier's
    :class:`~repro.serving.scheduler.Overloaded` semantics instead of
    queueing unboundedly.

    Start with :meth:`serve_in_thread`; ``close`` stops the listener (the
    pool is the caller's to close — it may outlive the front end).
    """

    daemon_threads = True

    def __init__(
        self,
        pool: MPServingPool,
        host: str = "127.0.0.1",
        port: int = 0,
        max_pending: int = 64,
        obs: Observability | None = None,
    ) -> None:
        super().__init__((host, port), _Handler)
        if max_pending <= 0:
            raise ValueError("max_pending must be positive")
        self.pool = pool
        self.max_pending = max_pending
        self.obs = obs if obs is not None else Observability.disabled()
        self._pending = 0
        self._admission = threading.Lock()
        self._thread: threading.Thread | None = None
        self._m_rejected = self.obs.metrics.counter(
            "repro_mp_http_rejected_total",
            "HTTP requests refused by admission control (429).",
        )

    @property
    def address(self) -> str:
        """The server's ``http://host:port`` base URL."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def pending(self) -> int:
        """Currently admitted (in-flight) requests."""
        return self._pending

    def admit(self) -> bool:
        """Try to admit one request; False means reject with 429."""
        with self._admission:
            if self._pending >= self.max_pending:
                self._m_rejected.inc()
                return False
            self._pending += 1
            return True

    def release(self) -> None:
        """Mark one admitted request finished."""
        with self._admission:
            self._pending -= 1

    def serve_in_thread(self) -> str:
        """Start serving on a daemon thread; returns the base URL."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.serve_forever, name="mp-http-server", daemon=True
            )
            self._thread.start()
        return self.address

    def close(self) -> None:
        """Stop the listener and join the serving thread; idempotent."""
        thread, self._thread = self._thread, None
        if thread is not None:
            self.shutdown()
            thread.join(timeout=5.0)
        self.server_close()
