"""The synopsis catalog: named synopses plus query routing.

Production AQP engines (VerdictDB being the canonical example) separate the
*synopsis store* from query execution: synopses are built once, registered
under a name with the metadata needed to decide which queries they can
answer, and a planner routes each incoming query to the best-matching
synopsis — falling back to the exact engine when nothing matches.  This
module is that store and planner for PASS synopses.

A registered synopsis can answer a query when it aggregates the query's value
column and its partitioning columns cover every column the query predicate
constrains.  Among the candidates the planner prefers the tightest fit
(fewest partitioning columns beyond what the query needs — extra dimensions
dilute the partition budget) and, tie-breaking, the synopsis with more leaf
partitions (finer partitions skip more data).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.core.pass_synopsis import PASSSynopsis
from repro.core.updates import DynamicPASS
from repro.data.table import Table
from repro.distributed.sharded import ShardedSynopsis
from repro.obs.quality import QualityScorecard, QualityStore
from repro.query.aggregates import SKETCH_AGGREGATES
from repro.query.query import AggregateQuery, ExactEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability
    from repro.obs.metrics import Counter, NullCounter
    from repro.obs.quality import QualityThresholds

__all__ = ["CatalogEntry", "SynopsisCatalog"]


@dataclass(frozen=True)
class CatalogEntry:
    """One registered synopsis and its routing metadata.

    Attributes
    ----------
    name:
        Unique catalog name of the synopsis.
    synopsis:
        The registered :class:`PASSSynopsis`, :class:`DynamicPASS`, or
        :class:`~repro.distributed.sharded.ShardedSynopsis`.
    table_name:
        Name of the table the synopsis summarizes.
    value_column:
        The aggregation column the synopsis answers queries about.
    predicate_columns:
        The columns the synopsis partitions on, i.e. the predicate columns it
        can route on.
    """

    name: str
    synopsis: PASSSynopsis | DynamicPASS | ShardedSynopsis
    table_name: str
    value_column: str
    predicate_columns: tuple[str, ...]

    @property
    def is_dynamic(self) -> bool:
        """True when the entry accepts streaming updates."""
        if isinstance(self.synopsis, ShardedSynopsis):
            return self.synopsis.supports_updates
        return isinstance(self.synopsis, DynamicPASS)

    @property
    def is_sharded(self) -> bool:
        """True when the entry answers queries by scatter-gather over shards."""
        return isinstance(self.synopsis, ShardedSynopsis)

    @property
    def pass_synopsis(self) -> PASSSynopsis:
        """The underlying static synopsis (unwrapping :class:`DynamicPASS`).

        Sharded entries have no single underlying synopsis; use
        :attr:`synopsis` (and its scatter-gather methods) instead.
        """
        if isinstance(self.synopsis, ShardedSynopsis):
            raise TypeError(
                f"synopsis {self.name!r} is sharded; query it through "
                "entry.synopsis.query / query_batch"
            )
        if isinstance(self.synopsis, DynamicPASS):
            return self.synopsis.synopsis
        return self.synopsis

    @property
    def n_partitions(self) -> int:
        """Leaf partitions of the entry (summed across shards when sharded)."""
        if isinstance(self.synopsis, ShardedSynopsis):
            return self.synopsis.n_partitions
        return self.pass_synopsis.n_partitions

    @property
    def staleness(self) -> float:
        """Update drift of the entry (0.0 for static synopses)."""
        if isinstance(self.synopsis, (DynamicPASS, ShardedSynopsis)):
            return self.synopsis.staleness
        return 0.0

    @property
    def sketch_staleness(self) -> float:
        """Sketch update drift of the entry (0.0 for static synopses)."""
        if isinstance(self.synopsis, (DynamicPASS, ShardedSynopsis)):
            return self.synopsis.sketch_staleness
        return 0.0

    @property
    def extrema_staleness(self) -> float:
        """Fraction of deletes that may have stranded a partition extremum.

        0.0 for static synopses; for sharded entries, the worst shard.
        """
        if isinstance(self.synopsis, (DynamicPASS, ShardedSynopsis)):
            return self.synopsis.extrema_staleness
        return 0.0

    @property
    def supports_sketches(self) -> bool:
        """True when the entry can answer QUANTILE / COUNT_DISTINCT queries."""
        if isinstance(self.synopsis, ShardedSynopsis):
            return self.synopsis.supports_sketches
        return self.pass_synopsis.has_sketches

    def can_answer(self, query: AggregateQuery, table_name: str | None = None) -> bool:
        """True when the entry can answer the query (column-wise).

        Sketch aggregates (QUANTILE / COUNT_DISTINCT) additionally require
        the synopsis to carry per-leaf sketches — entries built with
        ``with_sketches=False`` refuse them, so the planner falls back to
        another synopsis or the exact engine instead of erroring.
        """
        if table_name is not None and table_name != self.table_name:
            return False
        if query.value_column != self.value_column:
            return False
        if query.agg in SKETCH_AGGREGATES and not self.supports_sketches:
            return False
        constrained = {column for column, _, _ in query.predicate.canonical_key()}
        return constrained <= set(self.predicate_columns)


class SynopsisCatalog:
    """A registry of named synopses with planner-style query routing.

    Synopses are registered under unique names together with the (table,
    value column, predicate columns) they serve; tables may be registered
    alongside to provide an exact-scan fallback for queries no synopsis can
    answer.  The catalog itself is a passive store — thread safety and result
    caching live in :class:`repro.serving.engine.ServingEngine`.
    """

    def __init__(self) -> None:
        self._entries: dict[str, CatalogEntry] = {}
        self._exact_engines: dict[str, ExactEngine] = {}
        self._obs: "Observability | None" = None
        self._route_counters: dict[str, "Counter | NullCounter"] = {}
        # Private until bind_obs migrates it into the enabled context's
        # registry-backed store, so audits recorded early are never lost.
        self._quality = QualityStore(None)

    def bind_obs(self, obs: "Observability") -> None:
        """Attach an observability context: routing-decision counters.

        Called by :class:`~repro.serving.engine.ServingEngine` when it is
        constructed with an enabled context; binds sharded entries too, so
        shard-pruning counters land in the same registry, and migrates the
        quality scorecards into the context's registry-backed store so they
        flow through the Prometheus exposition.  Idempotent.
        """
        if not obs.enabled or self._obs is obs:
            return
        self._obs = obs
        self._route_counters.clear()
        obs.quality.merge_from(self._quality)
        self._quality = obs.quality
        for entry in self._entries.values():
            if entry.is_sharded:
                entry.synopsis.bind_obs(obs)
            self._register_entry_gauges(entry)

    def _register_entry_gauges(self, entry: CatalogEntry) -> None:
        """Scrape-time staleness gauges for one entry (enabled obs only).

        ``repro_synopsis_extrema_staleness`` in particular makes stranded
        extrema visible without capturing ``StaleExtremaWarning``.
        """
        if self._obs is None:
            return
        registry = self._obs.metrics
        labels = {"synopsis": entry.name}
        registry.gauge(
            "repro_synopsis_staleness",
            "Unmerged-update fraction of each registered synopsis.",
            labels,
        ).set_function(lambda: entry.staleness)
        registry.gauge(
            "repro_synopsis_sketch_staleness",
            "Unmerged-update fraction of each synopsis' sketches.",
            labels,
        ).set_function(lambda: entry.sketch_staleness)
        registry.gauge(
            "repro_synopsis_extrema_staleness",
            "Fraction of deletes that may have stranded a partition extremum.",
            labels,
        ).set_function(lambda: entry.extrema_staleness)

    def _count_route(self, target: str, n: int = 1) -> None:
        if self._obs is None:
            return
        counter = self._route_counters.get(target)
        if counter is None:
            counter = self._obs.metrics.counter(
                "repro_catalog_route_total",
                "Routing decisions by target synopsis "
                "(__exact__ = fallback scan, __none__ = unanswerable).",
                {"target": target},
            )
            self._route_counters[target] = counter
        counter.inc(float(n))

    def count_routes(self, tally: Mapping[str, int]) -> None:
        """Record many routing decisions in one pass (batch hot path).

        Batch executors route every miss up front and already hold the
        per-synopsis grouping, so they report the whole window here instead
        of paying one counter update per query (see ``route``'s ``record``
        parameter).
        """
        for target, n in tally.items():
            self._count_route(target, n)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        synopsis: PASSSynopsis | DynamicPASS | ShardedSynopsis,
        table_name: str = "table",
        predicate_columns: Sequence[str] | None = None,
    ) -> CatalogEntry:
        """Register a synopsis under a unique name.

        ``predicate_columns`` defaults to the columns of the partition tree's
        root box (the columns the synopsis was partitioned on) — for sharded
        synopses, the union of the shards' partitioning columns plus the
        shard column; the value column is always read from the synopsis
        itself.
        """
        if name in self._entries:
            raise ValueError(f"synopsis {name!r} is already registered")
        if isinstance(synopsis, ShardedSynopsis):
            value_column = synopsis.value_column
            if predicate_columns is None:
                columns: set[str] = {synopsis.shard_column}
                for shard in synopsis.shards:
                    inner = shard.synopsis if isinstance(shard, DynamicPASS) else shard
                    columns.update(inner.tree.root.box.columns)
                predicate_columns = tuple(sorted(columns))
        else:
            inner = synopsis.synopsis if isinstance(synopsis, DynamicPASS) else synopsis
            if not isinstance(inner, PASSSynopsis):
                raise TypeError(
                    "expected a PASSSynopsis, DynamicPASS, or ShardedSynopsis, "
                    f"got {type(synopsis)!r}"
                )
            value_column = inner.value_column
            if predicate_columns is None:
                predicate_columns = tuple(sorted(inner.tree.root.box.columns))
        entry = CatalogEntry(
            name=name,
            synopsis=synopsis,
            table_name=table_name,
            value_column=value_column,
            predicate_columns=tuple(predicate_columns),
        )
        self._entries[name] = entry
        if self._obs is not None:
            if entry.is_sharded:
                entry.synopsis.bind_obs(self._obs)
            self._register_entry_gauges(entry)
        return entry

    def register_table(self, table: Table, name: str | None = None) -> ExactEngine:
        """Register a table as the exact-scan fallback for its queries."""
        table_name = name or table.name
        engine = ExactEngine(table)
        self._exact_engines[table_name] = engine
        return engine

    def unregister(self, name: str) -> None:
        """Remove a synopsis from the catalog."""
        if name not in self._entries:
            raise KeyError(f"no synopsis named {name!r}")
        del self._entries[name]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def names(self) -> list[str]:
        """Names of the registered synopses, in registration order."""
        return list(self._entries)

    def get(self, name: str) -> CatalogEntry:
        """Look up an entry by name."""
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(self._entries) or "<none>"
            raise KeyError(f"no synopsis named {name!r}; registered: {known}") from None

    def staleness_of(self, name: str) -> float:
        """Update drift of a registered synopsis (0.0 when unknown).

        Hot-path helper for query-log records: one dict probe, no raising.
        """
        entry = self._entries.get(name)
        return entry.staleness if entry is not None else 0.0

    def sketch_staleness_of(self, name: str) -> float:
        """Sketch update drift of a registered synopsis (0.0 when unknown)."""
        entry = self._entries.get(name)
        return entry.sketch_staleness if entry is not None else 0.0

    def extrema_staleness_of(self, name: str) -> float:
        """Extrema-delete drift of a registered synopsis (0.0 when unknown)."""
        entry = self._entries.get(name)
        return entry.extrema_staleness if entry is not None else 0.0

    # ------------------------------------------------------------------
    # Quality
    # ------------------------------------------------------------------
    @property
    def quality(self) -> QualityStore:
        """The quality scorecard store (registry-backed once obs is bound)."""
        return self._quality

    def scorecard(self, name: str) -> QualityScorecard:
        """The quality scorecard of a registered synopsis.

        Created on first use with live staleness providers bound from the
        entry, so scorecard snapshots always reflect the synopsis' current
        sample / sketch / extrema drift without a refresh protocol.
        """
        entry = self.get(name)
        card = self._quality.scorecard(name)
        card.bind_providers(
            staleness=lambda: entry.staleness,
            sketch_staleness=lambda: entry.sketch_staleness,
            extrema_staleness=lambda: entry.extrema_staleness,
        )
        return card

    def health(self, thresholds: "QualityThresholds | None" = None) -> dict:
        """Catalog-level quality rollup: worst synopsis state wins.

        Ensures every registered synopsis has a scorecard first, so a
        synopsis that never got audited still contributes its staleness
        signals to the rollup.
        """
        for name in self._entries:
            self.scorecard(name)
        return self._quality.health(thresholds)

    def entries(self) -> list[CatalogEntry]:
        """All registered entries, in registration order."""
        return list(self._entries.values())

    def exact_engine(self, table_name: str | None = None) -> ExactEngine | None:
        """The fallback engine for a table (or the sole registered table)."""
        if table_name is not None:
            return self._exact_engines.get(table_name)
        if len(self._exact_engines) == 1:
            return next(iter(self._exact_engines.values()))
        return None

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def route(
        self,
        query: AggregateQuery,
        table_name: str | None = None,
        record: bool = True,
    ) -> CatalogEntry | None:
        """The best-matching synopsis for a query, or None.

        Candidates must aggregate the query's value column and partition on a
        superset of the constrained predicate columns.  The best candidate is
        the tightest fit: fewest surplus partitioning columns, then the most
        leaf partitions, then registration order.

        ``record=False`` skips the per-decision routing counter; batch
        callers route every miss in a loop and report the grouped tally via
        :meth:`count_routes` instead.
        """
        constrained = {column for column, _, _ in query.predicate.canonical_key()}
        best: CatalogEntry | None = None
        best_score: tuple[int, int] | None = None
        for entry in self._entries.values():
            if not entry.can_answer(query, table_name):
                continue
            surplus = len(set(entry.predicate_columns) - constrained)
            score = (-surplus, entry.n_partitions)
            if best_score is None or score > best_score:
                best, best_score = entry, score
        if record and self._obs is not None:
            if best is not None:
                self._count_route(best.name)
            elif self.exact_engine(table_name) is not None:
                self._count_route("__exact__")
            else:
                self._count_route("__none__")
        return best
