"""Per-synopsis serving telemetry, registry-backed.

The serving engine records, for every registered synopsis (and for the exact
fallback), how many queries it answered, how often the result cache hit, and
the observed latency distribution.  Since the unified observability layer
(:mod:`repro.obs`) landed, these counters are **the same objects** that the
Prometheus / JSON exporters scrape: when an
:class:`~repro.obs.Observability` registry is attached, ``record_hit`` /
``record_miss`` / ``record_invalidations`` write straight into registry
counters and histograms (``repro_serving_*``), and :meth:`snapshot` reads
them back — one write path, no per-exporter adapters.  Without a registry
the same counter classes are used standalone, so the snapshot API behaves
identically either way.

Latencies are additionally kept in a fixed-size ring buffer so snapshots can
report *exact* recent-window percentiles (the registry histogram reports
bucket-interpolated ones over all time).  Percentiles are computed over the
filled prefix of the ring buffer only — a partially-filled window must never
dilute the distribution with its zero initializer (regression-tested in
``tests/test_obs_integration.py``).
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass

import numpy as np

from repro.obs.metrics import Counter, Histogram, MetricsRegistry

__all__ = ["ServingStats", "StatsSnapshot"]

#: Default number of latency observations retained per synopsis.
DEFAULT_LATENCY_WINDOW = 8192


@dataclass(frozen=True)
class StatsSnapshot:
    """An immutable snapshot of one synopsis' serving counters.

    Attributes
    ----------
    queries:
        Total queries routed to the synopsis (hits + misses).
    cache_hits / cache_misses:
        Result-cache outcomes.
    hit_rate:
        ``cache_hits / queries`` (0.0 before any traffic).
    p50_latency_ms / p95_latency_ms / p99_latency_ms:
        Exact latency percentiles over the retained window, in milliseconds;
        NaN before any miss was measured (cache hits are not timed).
    invalidations:
        Cached results dropped because a dynamic update touched their region.
    staleness:
        The synopsis' update-drift ratio at snapshot time (0.0 for static
        synopses; see :attr:`repro.core.updates.DynamicPASS.staleness`).
    """

    queries: int
    cache_hits: int
    cache_misses: int
    hit_rate: float
    p50_latency_ms: float
    p95_latency_ms: float
    p99_latency_ms: float
    invalidations: int
    staleness: float

    def as_dict(self) -> dict[str, float | int]:
        """Field-name-keyed dict view; the exporters' uniform interface.

        Every snapshot type in the serving stack (:class:`StatsSnapshot`,
        :class:`~repro.serving.scheduler.SchedulerStats`,
        :class:`~repro.serving.async_engine.AsyncServingStats`,
        :class:`~repro.distributed.router.ShardUpdateStats`) exposes the
        same ``as_dict()`` contract: plain snake_case keys, units suffixed
        (``*_ms``), scalar values only.
        """
        return asdict(self)


class ServingStats:
    """Thread-safe serving counters for one synopsis.

    Parameters
    ----------
    latency_window:
        Number of most-recent latency observations retained for the exact
        percentile estimates.
    registry:
        When given, counters and the latency histogram live in this metrics
        registry under ``repro_serving_*`` with a ``synopsis`` label; when
        None, standalone (unexported) instances of the same classes are
        used.
    synopsis:
        The ``synopsis`` label value used with a registry.
    """

    def __init__(
        self,
        latency_window: int = DEFAULT_LATENCY_WINDOW,
        registry: MetricsRegistry | None = None,
        synopsis: str = "",
    ) -> None:
        if latency_window <= 0:
            raise ValueError("latency_window must be positive")
        self._lock = threading.Lock()
        self._latencies = np.zeros(latency_window, dtype=float)
        self._latency_count = 0
        if registry is not None:
            labels = {"synopsis": synopsis}
            self._hits = registry.counter(
                "repro_serving_cache_hits_total",
                "Queries answered from the result cache.",
                labels,
            )
            self._misses = registry.counter(
                "repro_serving_cache_misses_total",
                "Queries executed against the synopsis.",
                labels,
            )
            self._invalidations = registry.counter(
                "repro_serving_invalidations_total",
                "Cached results dropped by dynamic-update box overlap.",
                labels,
            )
            self._latency_histogram: Histogram | None = registry.histogram(
                "repro_serving_query_latency_seconds",
                "Latency of queries that executed against the synopsis.",
                labels,
            )
        else:
            self._hits = Counter("repro_serving_cache_hits_total")
            self._misses = Counter("repro_serving_cache_misses_total")
            self._invalidations = Counter("repro_serving_invalidations_total")
            self._latency_histogram = None

    def record_hit(self) -> None:
        """Count a query answered from the result cache."""
        self._hits.inc()

    def record_hits(self, n: int) -> None:
        """Count ``n`` cache hits in one counter update (batch hot path)."""
        if n > 0:
            self._hits.inc(float(n))

    def record_miss(self, latency_seconds: float) -> None:
        """Count a query that executed against the synopsis."""
        self._misses.inc()
        if self._latency_histogram is not None:
            self._latency_histogram.observe(latency_seconds)
        with self._lock:
            slot = self._latency_count % self._latencies.shape[0]
            self._latencies[slot] = latency_seconds
            self._latency_count += 1

    def record_misses(self, n: int, latency_seconds: float) -> None:
        """Count ``n`` misses sharing one amortized latency (batch hot path).

        The vectorized batch path divides a window's execution time evenly
        across its misses, so all ``n`` observations carry the same value —
        one counter update, one histogram update, and one ring-buffer fill
        replace ``n`` of each.
        """
        if n <= 0:
            return
        self._misses.inc(float(n))
        if self._latency_histogram is not None:
            self._latency_histogram.observe_n(latency_seconds, n)
        with self._lock:
            window = self._latencies.shape[0]
            count = self._latency_count
            for _ in range(min(n, window)):
                self._latencies[count % window] = latency_seconds
                count += 1
            self._latency_count = count + max(n - window, 0)

    def record_invalidations(self, count: int) -> None:
        """Count cached results dropped by a dynamic update."""
        self._invalidations.inc(count)

    def snapshot(self, staleness: float = 0.0) -> StatsSnapshot:
        """An immutable snapshot of the counters (plus the given staleness).

        Percentiles are computed over the *filled prefix* of the latency
        ring buffer: before the window wraps, only ``latency_count``
        observations exist and the zero-initialized remainder must not be
        fed to ``np.percentile``.
        """
        with self._lock:
            window = min(self._latency_count, self._latencies.shape[0])
            if window:
                p50, p95, p99 = np.percentile(
                    self._latencies[:window], [50.0, 95.0, 99.0]
                )
                p50_ms, p95_ms, p99_ms = (
                    float(p50) * 1e3,
                    float(p95) * 1e3,
                    float(p99) * 1e3,
                )
            else:
                p50_ms = p95_ms = p99_ms = float("nan")
        hits = int(self._hits.value)
        misses = int(self._misses.value)
        queries = hits + misses
        return StatsSnapshot(
            queries=queries,
            cache_hits=hits,
            cache_misses=misses,
            hit_rate=hits / queries if queries else 0.0,
            p50_latency_ms=p50_ms,
            p95_latency_ms=p95_ms,
            p99_latency_ms=p99_ms,
            invalidations=int(self._invalidations.value),
            staleness=staleness,
        )
