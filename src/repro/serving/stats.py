"""Per-synopsis serving telemetry.

The serving engine records, for every registered synopsis (and for the exact
fallback), how many queries it answered, how often the result cache hit, and
the observed latency distribution.  Latencies are kept in a fixed-size ring
buffer so a long-running server's telemetry footprint stays bounded while the
percentiles still reflect recent traffic.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

__all__ = ["ServingStats", "StatsSnapshot"]

#: Default number of latency observations retained per synopsis.
DEFAULT_LATENCY_WINDOW = 8192


@dataclass(frozen=True)
class StatsSnapshot:
    """An immutable snapshot of one synopsis' serving counters.

    Attributes
    ----------
    queries:
        Total queries routed to the synopsis (hits + misses).
    cache_hits / cache_misses:
        Result-cache outcomes.
    hit_rate:
        ``cache_hits / queries`` (0.0 before any traffic).
    p50_latency_ms / p99_latency_ms:
        Latency percentiles over the retained window, in milliseconds;
        NaN before any miss was measured (cache hits are not timed).
    invalidations:
        Cached results dropped because a dynamic update touched their region.
    staleness:
        The synopsis' update-drift ratio at snapshot time (0.0 for static
        synopses; see :attr:`repro.core.updates.DynamicPASS.staleness`).
    """

    queries: int
    cache_hits: int
    cache_misses: int
    hit_rate: float
    p50_latency_ms: float
    p99_latency_ms: float
    invalidations: int
    staleness: float


class ServingStats:
    """Thread-safe serving counters for one synopsis.

    Parameters
    ----------
    latency_window:
        Number of most-recent latency observations retained for the
        percentile estimates.
    """

    def __init__(self, latency_window: int = DEFAULT_LATENCY_WINDOW) -> None:
        if latency_window <= 0:
            raise ValueError("latency_window must be positive")
        self._lock = threading.Lock()
        self._latencies = np.zeros(latency_window, dtype=float)
        self._latency_count = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._invalidations = 0

    def record_hit(self) -> None:
        """Count a query answered from the result cache."""
        with self._lock:
            self._cache_hits += 1

    def record_miss(self, latency_seconds: float) -> None:
        """Count a query that executed against the synopsis."""
        with self._lock:
            self._cache_misses += 1
            slot = self._latency_count % self._latencies.shape[0]
            self._latencies[slot] = latency_seconds
            self._latency_count += 1

    def record_invalidations(self, count: int) -> None:
        """Count cached results dropped by a dynamic update."""
        with self._lock:
            self._invalidations += count

    def snapshot(self, staleness: float = 0.0) -> StatsSnapshot:
        """An immutable snapshot of the counters (plus the given staleness)."""
        with self._lock:
            queries = self._cache_hits + self._cache_misses
            window = min(self._latency_count, self._latencies.shape[0])
            if window:
                p50, p99 = np.percentile(self._latencies[:window], [50.0, 99.0])
                p50_ms, p99_ms = float(p50) * 1e3, float(p99) * 1e3
            else:
                p50_ms = p99_ms = float("nan")
            return StatsSnapshot(
                queries=queries,
                cache_hits=self._cache_hits,
                cache_misses=self._cache_misses,
                hit_rate=self._cache_hits / queries if queries else 0.0,
                p50_latency_ms=p50_ms,
                p99_latency_ms=p99_ms,
                invalidations=self._invalidations,
                staleness=staleness,
            )
