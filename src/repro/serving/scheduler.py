"""Micro-batch scheduling with bounded-queue admission control.

The :class:`MicroBatchScheduler` sits between request arrival and execution
in the async serving tier.  Incoming coalesced requests accumulate in a
*batch window* — bounded by a time budget (``batch_window`` seconds) and a
size budget (``max_batch`` requests) — and each sealed window dispatches as
one batch through the vectorized serving path, so a window's worth of
queries costs one lock acquisition and one shared frontier + mask pass per
touched synopsis instead of one per query.

Two further serving-tier concerns live here:

* **Backpressure** — the scheduler tracks every admitted-but-unresolved
  request; past ``max_pending`` it rejects new work with a typed
  :class:`Overloaded` error instead of queueing unboundedly.  Open-loop
  arrival processes (the workloads :func:`~repro.evaluation.harness.
  evaluate_async_workload` generates) can exceed service capacity
  indefinitely; shedding load early keeps tail latency of admitted requests
  bounded.
* **Write serialization** — streaming updates submit through
  :meth:`submit_write`.  A write seals the currently-open batch window
  first (requests that arrived before the write stay ordered before it) and
  then runs as its own queue item, so the single drain loop gives every
  reader batch and every write a definite serialization order.

The scheduler is event-loop-local: all methods must be called from the
owning loop's thread, so its counters need no locks.
"""

from __future__ import annotations

import asyncio
from dataclasses import asdict, dataclass
from typing import Awaitable, Callable, TypeVar

from repro.obs import Observability
from repro.serving.coalesce import CoalescedRequest

__all__ = ["Overloaded", "SchedulerStats", "MicroBatchScheduler"]

T = TypeVar("T")


class Overloaded(RuntimeError):
    """Typed admission-control rejection: the serving queue is full.

    Attributes
    ----------
    pending:
        Outstanding (admitted but unresolved) items at rejection time.
    capacity:
        The scheduler's ``max_pending`` bound.
    """

    def __init__(self, pending: int, capacity: int) -> None:
        super().__init__(
            f"serving tier overloaded: {pending} pending requests at "
            f"capacity {capacity}; retry with backoff"
        )
        self.pending = pending
        self.capacity = capacity


@dataclass(frozen=True)
class SchedulerStats:
    """An immutable snapshot of one scheduler's queue telemetry.

    Attributes
    ----------
    submitted:
        Requests admitted into batch windows (coalesced joiners never reach
        the scheduler).
    rejected:
        Requests (and writes) refused with :class:`Overloaded`.
    batches / dispatched:
        Sealed windows, and the total requests they carried.
    writes:
        Updates serialized through the queue.
    pending:
        Currently outstanding items (buffered, queued, or executing).
    peak_pending:
        High-water mark of ``pending``.
    max_batch_size / mean_batch_size:
        Size of the largest sealed window, and the mean over all windows
        (0.0 before any batch).
    """

    submitted: int
    rejected: int
    batches: int
    dispatched: int
    writes: int
    pending: int
    peak_pending: int
    max_batch_size: int
    mean_batch_size: float

    def as_dict(self) -> dict[str, float | int]:
        """Field-name-keyed dict view (the serving stack's uniform
        ``as_dict()`` contract — see
        :meth:`repro.serving.stats.StatsSnapshot.as_dict`)."""
        return asdict(self)


#: Internal queue items: a sealed batch of requests, or one serialized write.
_BatchItem = tuple[str, object]


class MicroBatchScheduler:
    """Accumulates requests into micro-batches and serializes writes.

    Parameters
    ----------
    dispatch:
        Async callable executing one sealed batch; it owns resolving (or
        failing) each request's future.  Called from the drain loop, one
        batch at a time.
    max_batch:
        Seal the open window as soon as it holds this many requests.
    batch_window:
        Seconds an open window waits for more requests before sealing
        (0 seals on the next event-loop tick, which still batches requests
        submitted in the same tick).
    max_pending:
        Bound on outstanding items; beyond it :meth:`submit` and
        :meth:`submit_write` raise :class:`Overloaded`.
    obs:
        The shared :class:`~repro.obs.Observability` context.  When enabled,
        the loop-local counters additionally mirror into registry metrics
        (``repro_scheduler_*``) on each event, a ``repro_scheduler_pending``
        gauge reads the live queue depth, and sealed window sizes feed a
        batch-size histogram.  The snapshot API is unchanged either way.
    """

    def __init__(
        self,
        dispatch: Callable[[list[CoalescedRequest]], Awaitable[None]],
        max_batch: int = 64,
        batch_window: float = 0.002,
        max_pending: int = 4096,
        obs: Observability | None = None,
    ) -> None:
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if batch_window < 0:
            raise ValueError("batch_window must be non-negative")
        if max_pending <= 0:
            raise ValueError("max_pending must be positive")
        self._dispatch = dispatch
        self._max_batch = max_batch
        self._batch_window = batch_window
        self._max_pending = max_pending
        self._obs = obs if obs is not None else Observability.disabled()
        registry = self._obs.metrics
        self._m_submitted = registry.counter(
            "repro_scheduler_submitted_total",
            "Leader requests admitted into batch windows.",
        )
        self._m_rejected = registry.counter(
            "repro_scheduler_rejected_total",
            "Submissions refused by admission control (Overloaded).",
        )
        self._m_batches = registry.counter(
            "repro_scheduler_batches_total", "Batch windows sealed for dispatch."
        )
        self._m_writes = registry.counter(
            "repro_scheduler_writes_total", "Writes serialized through the queue."
        )
        self._m_batch_size = registry.histogram(
            "repro_scheduler_batch_size",
            "Requests per sealed batch window.",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0),
        )
        if self._obs.enabled:
            registry.gauge(
                "repro_scheduler_pending",
                "Admitted-but-unresolved items (buffered, queued, executing).",
            ).set_function(lambda: float(self._pending))

        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: asyncio.Queue[_BatchItem] = asyncio.Queue()
        self._buffer: list[CoalescedRequest] = []
        self._timer: asyncio.TimerHandle | None = None
        self._drain_task: asyncio.Task[None] | None = None

        self._pending = 0
        self._peak_pending = 0
        self._submitted = 0
        self._rejected = 0
        self._batches = 0
        self._dispatched = 0
        self._writes = 0
        self._max_batch_size = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the drain loop on the running event loop (idempotent)."""
        if self._drain_task is not None and not self._drain_task.done():
            return
        self._loop = asyncio.get_running_loop()
        self._drain_task = self._loop.create_task(self._drain())

    async def stop(self) -> None:
        """Seal the open window, drain every queued item, stop the loop."""
        if self._drain_task is None:
            return
        self._seal()
        await self._queue.join()
        self._drain_task.cancel()
        try:
            await self._drain_task
        except asyncio.CancelledError:
            pass
        self._drain_task = None

    @property
    def running(self) -> bool:
        """True while the drain loop is active."""
        return self._drain_task is not None and not self._drain_task.done()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, request: CoalescedRequest) -> None:
        """Admit a leader request into the open batch window.

        Raises :class:`Overloaded` when the pending bound is hit; the caller
        is responsible for detaching the request from its coalescer.
        """
        self._admission_check()
        self._pending += 1
        self._peak_pending = max(self._peak_pending, self._pending)
        self._submitted += 1
        self._buffer.append(request)
        if len(self._buffer) >= self._max_batch:
            self._seal()
        elif self._timer is None:
            assert self._loop is not None, "scheduler not started"
            self._timer = self._loop.call_later(self._batch_window, self._seal)

    def submit_write(
        self,
        apply: Callable[[], Awaitable[T]],
        on_applied: Callable[[T], None] | None = None,
    ) -> "asyncio.Future[T]":
        """Serialize a write through the queue, behind the open window.

        ``apply`` is awaited by the drain loop; ``on_applied`` then runs —
        still inside the drain loop, before any later batch or write — so
        writers can atomically invalidate in-flight coalesced futures the
        moment the update is visible.  Returns a future resolving to
        ``apply``'s result.
        """
        self._admission_check()
        assert self._loop is not None, "scheduler not started"
        self._seal()
        self._pending += 1
        self._peak_pending = max(self._peak_pending, self._pending)
        self._writes += 1
        self._m_writes.inc()
        future: asyncio.Future[T] = self._loop.create_future()
        self._queue.put_nowait(("write", (apply, on_applied, future)))
        return future

    def _admission_check(self) -> None:
        if self._pending >= self._max_pending:
            self._rejected += 1
            self._m_rejected.inc()
            raise Overloaded(self._pending, self._max_pending)

    # ------------------------------------------------------------------
    # Window / drain machinery
    # ------------------------------------------------------------------
    def _seal(self) -> None:
        """Close the open batch window and queue it for dispatch."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._buffer:
            batch = self._buffer
            self._buffer = []
            self._batches += 1
            self._dispatched += len(batch)
            self._max_batch_size = max(self._max_batch_size, len(batch))
            # The submitted counter is advanced here, once per sealed window,
            # rather than per ``submit`` call — same totals, one update.
            self._m_submitted.inc(float(len(batch)))
            self._m_batches.inc()
            self._m_batch_size.observe(float(len(batch)))
            self._queue.put_nowait(("batch", batch))

    async def _drain(self) -> None:
        while True:
            kind, payload = await self._queue.get()
            try:
                if kind == "batch":
                    requests = payload
                    assert isinstance(requests, list)
                    try:
                        await self._dispatch(requests)
                    except Exception as exc:
                        for request in requests:
                            if not request.future.done():
                                request.future.set_exception(exc)
                    finally:
                        self._pending -= len(requests)
                else:
                    apply, on_applied, future = payload  # type: ignore
                    try:
                        result = await apply()
                        if on_applied is not None:
                            on_applied(result)
                    except Exception as exc:
                        if not future.done():
                            future.set_exception(exc)
                    else:
                        if not future.done():
                            future.set_result(result)
                    finally:
                        self._pending -= 1
            finally:
                self._queue.task_done()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def snapshot(self) -> SchedulerStats:
        """An immutable snapshot of the queue counters."""
        mean_size = self._dispatched / self._batches if self._batches else 0.0
        return SchedulerStats(
            submitted=self._submitted,
            rejected=self._rejected,
            batches=self._batches,
            dispatched=self._dispatched,
            writes=self._writes,
            pending=self._pending,
            peak_pending=self._peak_pending,
            max_batch_size=self._max_batch_size,
            mean_batch_size=mean_size,
        )
