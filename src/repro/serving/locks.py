"""A reader-writer lock for the serving engine.

Query serving is read-heavy: many threads answer queries from the same
synopses while occasional dynamic updates mutate tree statistics and leaf
samples in place.  Python's standard library offers no shared/exclusive lock,
so this module implements a small writer-preferring one on top of a condition
variable: any number of readers may hold the lock together, writers get
exclusive access, and arriving writers block new readers so a steady query
stream cannot starve updates.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = ["ReadWriteLock"]


class ReadWriteLock:
    """A writer-preferring shared/exclusive lock.

    Use the :meth:`read_locked` / :meth:`write_locked` context managers::

        lock = ReadWriteLock()
        with lock.read_locked():
            ...  # shared with other readers
        with lock.write_locked():
            ...  # exclusive

    The lock is not reentrant: a thread must not acquire it again (in either
    mode) while already holding it.  Re-entrant acquisition is detected and
    raises ``RuntimeError`` immediately — a reader re-acquiring while a
    writer waits (or a thread "upgrading" read to write) would otherwise
    deadlock silently, because arriving writers block new readers.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        self._reader_idents: set[int] = set()
        self._writer_ident: int | None = None

    def acquire_read(self) -> None:
        """Block until shared access is granted."""
        ident = threading.get_ident()
        with self._condition:
            self._check_reentrancy(ident, "read")
            while self._writer_active or self._writers_waiting:
                self._condition.wait()
            self._active_readers += 1
            self._reader_idents.add(ident)

    def release_read(self) -> None:
        """Release shared access."""
        with self._condition:
            self._active_readers -= 1
            self._reader_idents.discard(threading.get_ident())
            if self._active_readers == 0:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        """Block until exclusive access is granted."""
        ident = threading.get_ident()
        with self._condition:
            self._check_reentrancy(ident, "write")
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
            self._writer_ident = ident

    def release_write(self) -> None:
        """Release exclusive access."""
        with self._condition:
            self._writer_active = False
            self._writer_ident = None
            self._condition.notify_all()

    def _check_reentrancy(self, ident: int, mode: str) -> None:
        """Reject re-entrant acquisition (caller holds the condition)."""
        if ident == self._writer_ident:
            raise RuntimeError(
                f"ReadWriteLock is not reentrant: thread already holds the "
                f"write lock and tried to acquire it for {mode}"
            )
        if ident in self._reader_idents:
            raise RuntimeError(
                f"ReadWriteLock is not reentrant: thread already holds the "
                f"read lock and tried to acquire it for {mode}"
            )

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """Context manager holding the lock in shared mode."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """Context manager holding the lock in exclusive mode."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
