"""The group-by planner: compile, prune, and dispatch grouped queries.

:class:`GroupByPlanner` is the serving-side front end for
:class:`~repro.query.groupby.GroupByQuery`.  It fills the three gaps between
the declarative group-by form and the single-aggregate batch executors:

1. **Distinct-value resolution** — groupings that discover their distinct
   values at compile time pull them from the catalog's registered fallback
   table.
2. **Empty-cell pruning** — before anything dispatches, each group cell's
   predicate is checked against the routed synopsis' partition-tree frontier
   statistics (per shard for sharded entries).  A cell whose frontier
   contains zero tuples is provably empty and is answered locally with SQL
   empty-group semantics, costing no mask work, no cache slots, and no
   scatter-gather fan-out.
3. **Dispatch** — the surviving cell-major batch runs through
   :meth:`~repro.serving.engine.ServingEngine.execute_batch`, so grouped
   traffic inherits the per-group result cache (every compiled query's
   canonical cache key embeds its group cell's predicate — and, for
   QUANTILE aggregates, the quantile parameter), the vectorized shared-mask
   execution, and the exact-scan fallback.  Sketch aggregates ride the same
   plan: a ``P95(value)`` spec compiles into per-cell QUANTILE queries the
   routed synopsis answers from its mergeable per-leaf sketches.

The planner is a stateless strategy object over a catalog; the thread-safe
entry point for applications is
:meth:`repro.serving.engine.ServingEngine.execute_grouped`, which holds the
engine's read lock around the pruning pass.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.batching import frontier_count
from repro.core.updates import DynamicPASS
from repro.query.groupby import (
    GroupByPlan,
    GroupByQuery,
    GroupedResult,
    execute_plan,
)
from repro.query.query import AggregateQuery
from repro.result import AQPResult
from repro.serving.catalog import CatalogEntry, SynopsisCatalog

__all__ = ["GroupByPlanner"]


class GroupByPlanner:
    """Compile-prune-dispatch planning for grouped queries over a catalog."""

    def __init__(self, catalog: SynopsisCatalog) -> None:
        self._catalog = catalog

    @property
    def catalog(self) -> SynopsisCatalog:
        """The catalog the planner routes against."""
        return self._catalog

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile(self, groupby: GroupByQuery, table: str | None = None) -> GroupByPlan:
        """Compile a group-by query, resolving distinct values from the catalog.

        Distinct-value discovery reads the registered fallback table for
        ``table`` (or the sole registered table).  Groupings with explicit
        bin edges or values compile without touching any data.
        """
        engine = self._catalog.exact_engine(table)
        source = engine.table if engine is not None else None
        return groupby.compile(distinct_source=source)

    # ------------------------------------------------------------------
    # Frontier-statistics pruning
    # ------------------------------------------------------------------
    def route(self, plan: GroupByPlan, table: str | None = None) -> CatalogEntry | None:
        """The catalog entry ALL of the plan's compiled queries route to.

        Group cells share predicate columns by construction, so one
        representative query per distinct value column routes the whole
        plan.  When aggregates over different value columns route to
        different entries (or some route nowhere), there is no single tree
        to consult and ``None`` is returned — pruning is then skipped and
        every compiled query routes individually at dispatch time.
        """
        live = plan.live_cells()
        if not live:
            return None
        cell = live[0][1]
        entry: CatalogEntry | None = None
        seen: set[str] = set()
        for spec in plan.aggregates:
            if spec.value_column in seen:
                continue
            seen.add(spec.value_column)
            routed = self._catalog.route(plan.cell_query(cell, spec), table)
            if routed is None or (entry is not None and routed.name != entry.name):
                return None
            entry = routed
        return entry

    def analyze(
        self, plan: GroupByPlan, table: str | None = None
    ) -> tuple[set[int], int]:
        """Pruned cell indices and population, routing the plan once.

        The hot-path combination of :meth:`prune_empty_cells` and
        :meth:`population` — hold the serving engine's read lock while
        calling it when updates may run concurrently.
        """
        entry = self.route(plan, table)
        pruned = self._prune_for_entry(plan, entry)
        return pruned, self._population_for_entry(entry, table)

    def prune_empty_cells(
        self, plan: GroupByPlan, table: str | None = None
    ) -> set[int]:
        """Indices of group cells that provably contain no tuples.

        Each live cell's predicate runs an MCF lookup over the routed
        synopsis' partition tree (every surviving shard's tree for sharded
        entries); a frontier whose covered and partial nodes hold zero
        tuples cannot match anything.  Entries that route to the exact-scan
        fallback are never pruned — there is no tree to consult.

        Callers serving live traffic must hold the serving engine's read
        lock: the lookup walks tree statistics that dynamic updates mutate.
        """
        return self._prune_for_entry(plan, self.route(plan, table))

    def _prune_for_entry(
        self, plan: GroupByPlan, entry: CatalogEntry | None
    ) -> set[int]:
        if entry is None:
            return set()
        empty: set[int] = set()
        if entry.is_sharded:
            sharded = entry.synopsis
            trees = [
                (shard.synopsis if isinstance(shard, DynamicPASS) else shard).tree
                for shard in sharded.shards
            ]
            for index, cell in plan.live_cells():
                representative = plan.cell_query(cell, plan.aggregates[0])
                count = 0
                for shard_index in sharded.surviving_shards(representative):
                    count += frontier_count(
                        trees[shard_index].minimal_coverage_frontier(cell.predicate)
                    )
                    if count:
                        break
                if count == 0:
                    empty.add(index)
            return empty
        tree = entry.pass_synopsis.tree
        for index, cell in plan.live_cells():
            if frontier_count(tree.minimal_coverage_frontier(cell.predicate)) == 0:
                empty.add(index)
        return empty

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def population(self, plan: GroupByPlan, table: str | None = None) -> int:
        """Rows the plan aggregates over (for pruned-cell skip accounting).

        Like :meth:`prune_empty_cells`, read this under the serving engine's
        lock when updates may run concurrently.
        """
        return self._population_for_entry(self.route(plan, table), table)

    def _population_for_entry(
        self, entry: CatalogEntry | None, table: str | None
    ) -> int:
        if entry is not None:
            return entry.synopsis.population_size
        engine = self._catalog.exact_engine(table)
        return engine.table.n_rows if engine is not None else 0

    def execute(
        self,
        plan: GroupByPlan,
        run_batch: Callable[[list[AggregateQuery]], Sequence[AQPResult]],
        table: str | None = None,
        pruned: set[int] | None = None,
        population: int | None = None,
    ) -> GroupedResult:
        """Dispatch a plan through a batch executor, pruning empty cells.

        ``pruned`` and ``population`` override the planner's own routing
        passes — the serving engine computes both under its read lock so the
        dispatch itself touches the catalog only through ``run_batch``;
        when ``None`` the planner computes them here (single-threaded use).
        """
        if pruned is None:
            pruned = self.prune_empty_cells(plan, table)
        if population is None:
            population = self.population(plan, table)
        return execute_plan(plan, run_batch, population=population, skip=pruned)
