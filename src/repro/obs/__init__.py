"""Unified observability for the serving stack: metrics, traces, query log.

One :class:`Observability` object is shared by every layer of a serving
deployment — the synchronous :class:`~repro.serving.engine.ServingEngine`,
the asyncio tier, the micro-batch scheduler, the catalog's router, the
distributed shard router, and the vectorized execution core all record into
the same three instruments:

* a **metrics registry** (:mod:`repro.obs.metrics`) of counters, gauges, and
  fixed-bucket latency histograms, exported as Prometheus text or JSON;
* a **tracer** (:mod:`repro.obs.tracing`) whose spans decompose one query
  into per-stage durations (coalesce → enqueue → batch window → plan
  compile → frontier descent → mask/reduceat execute → cache store) and
  carry tree statistics such as ``nodes_visited`` and frontier sizes;
* a **structured query log** (:mod:`repro.obs.querylog`) with one bounded
  record per request — the substrate workload-adaptive repartitioning mines.

Wiring is explicit and optional::

    obs = Observability()
    engine = ServingEngine(catalog, obs=obs)
    async with AsyncServingEngine(engine) as tier:   # inherits engine's obs
        await tier.execute(query)
    print(obs.prometheus_text())
    for span in obs.tracer.slowest(5):
        print(span.render())

Passing no ``obs`` leaves a layer on the shared disabled singleton
(:meth:`Observability.disabled`), where every instrument call is a no-op on
a preallocated null object — the instrumentation overhead of a disabled
stack is a handful of attribute accesses per query, measured and gated by
``bench_async_serving.py``'s ``obs_overhead_pct`` metric.
"""

from __future__ import annotations

from repro.obs.export import (
    ExpositionError,
    json_snapshot,
    prometheus_text,
    validate_exposition,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.quality import (
    QualityScorecard,
    QualityStore,
    QualityThresholds,
)
from repro.obs.querylog import NullQueryLog, QueryLog, QueryLogRecord
from repro.obs.tracing import NullSpan, NullTracer, Span, Tracer

__all__ = [
    "Observability",
    "MetricsRegistry",
    "NullRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "Tracer",
    "NullTracer",
    "Span",
    "NullSpan",
    "QueryLog",
    "NullQueryLog",
    "QueryLogRecord",
    "QualityScorecard",
    "QualityStore",
    "QualityThresholds",
    "prometheus_text",
    "validate_exposition",
    "json_snapshot",
    "ExpositionError",
]


class Observability:
    """The shared observability context of one serving deployment.

    Parameters
    ----------
    enabled:
        False builds the object on the no-op instruments (prefer the shared
        :meth:`disabled` singleton on hot paths).
    max_traces:
        Finished root spans retained by the tracer.
    query_log_capacity:
        Records retained by the structured query log.
    trace_sample_rate:
        Fraction of serving requests that get a per-request span tree
        (head sampling, rounded to a deterministic 1-in-N period).  Metrics
        and the query log always cover every request; only the span tree —
        the expensive instrument — is sampled.  The default traces one
        request in 64 (a deliberately serving-scale default — span trees
        are for drill-down, not accounting — and what keeps measured
        instrumentation overhead inside the benchmark's 5% gate); pass
        ``1.0`` for full-fidelity tracing in tests and debugging sessions.
    """

    __slots__ = ("_enabled", "_metrics", "_tracer", "_query_log", "_quality")

    _disabled_singleton: "Observability | None" = None

    def __init__(
        self,
        enabled: bool = True,
        max_traces: int = 512,
        query_log_capacity: int = 2048,
        trace_sample_rate: float = 1.0 / 64.0,
    ) -> None:
        if not 0.0 < trace_sample_rate <= 1.0:
            raise ValueError("trace_sample_rate must be in (0, 1]")
        self._enabled = enabled
        if enabled:
            self._metrics: MetricsRegistry | NullRegistry = MetricsRegistry()
            self._tracer: Tracer | NullTracer = Tracer(
                max_traces=max_traces,
                sample_every=max(1, round(1.0 / trace_sample_rate)),
            )
            self._query_log: QueryLog | NullQueryLog = QueryLog(
                capacity=query_log_capacity
            )
            self._quality = QualityStore(self._metrics)
        else:
            self._metrics = NullRegistry()
            self._tracer = NullTracer()
            self._query_log = NullQueryLog()
            self._quality = QualityStore(None)

    @classmethod
    def disabled(cls) -> "Observability":
        """The shared no-op instance layers default to when no obs is wired."""
        if cls._disabled_singleton is None:
            cls._disabled_singleton = cls(enabled=False)
        return cls._disabled_singleton

    @property
    def enabled(self) -> bool:
        """True when real instruments back this object."""
        return self._enabled

    @property
    def metrics(self) -> MetricsRegistry | NullRegistry:
        """The metrics registry."""
        return self._metrics

    @property
    def tracer(self) -> Tracer | NullTracer:
        """The span tracer."""
        return self._tracer

    @property
    def query_log(self) -> QueryLog | NullQueryLog:
        """The structured query log."""
        return self._query_log

    @property
    def quality(self) -> QualityStore:
        """The per-synopsis quality scorecard store."""
        return self._quality

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def prometheus_text(self) -> str:
        """The metrics registry in Prometheus text exposition format."""
        return prometheus_text(self._metrics)

    def json_snapshot(self, slowest: int = 5, tail: int = 50) -> dict:
        """Metrics + slowest traces + query-log tail as a JSON-ready dict."""
        return json_snapshot(self, slowest=slowest, tail=tail)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self._enabled else "disabled"
        return f"Observability({state})"
