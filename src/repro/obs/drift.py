"""Workload-drift detection: box-histogram fingerprints over the query log.

PASS partitions are optimal only for the workload the partitioner saw at
build time — once live traffic asks different boxes, the variance-optimal
allocation silently stops being optimal.  This module makes that drift a
measured signal:

* :class:`WorkloadFingerprint` compresses a set of predicate boxes into
  per-column histograms over the synopsis' key domains.  A box spreads its
  traffic weight fractionally across the bins it overlaps; a column the box
  does not constrain lands in a dedicated "unconstrained" slot, so a shift
  from range-heavy to full-scan traffic registers as drift too.
* :class:`WorkloadDriftDetector` mines the query log's weighted boxes
  (coalesced stampedes count with their full ``coalesced_waiters`` weight),
  rebins a sliding window onto the build-time fingerprint's edges, and
  scores the divergence as the mean per-column total-variation distance
  (0 = identical traffic shape, 1 = disjoint).

Scores land on the per-synopsis scorecards / drift gauges, and a score over
the rebuild threshold is *logged* as a repartition recommendation — never
auto-executed; rebuild policy stays with the operator (and the future
self-tuning catalog, which consumes exactly this report shape).  Build-time
fingerprints persist alongside the npz synopsis via
``serving/persistence.py`` so a reloaded catalog keeps its baseline.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.obs.quality import QualityStore

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.obs.querylog import QueryLog

__all__ = [
    "DriftReport",
    "WorkloadDriftDetector",
    "WorkloadFingerprint",
]

logger = logging.getLogger(__name__)

#: A predicate box in canonical form: ``(column, low, high)`` triples.
Box = tuple[tuple[str, float, float], ...]

#: Query-log outcomes that represent real served traffic worth mining.
_MINED_OUTCOMES = frozenset({"cache_hit", "miss", "coalesced"})


def _clip_domain(low: float, high: float) -> tuple[float, float]:
    """Replace infinite domain edges with a finite, slightly padded span."""
    if not np.isfinite(low):
        low = -1e18 if not np.isfinite(high) else high - 1.0
    if not np.isfinite(high):
        high = 1e18 if not np.isfinite(low) else low + 1.0
    if high <= low:
        low, high = low - 0.5, high + 0.5
    return float(low), float(high)


class WorkloadFingerprint:
    """Per-column traffic histograms summarizing a set of query boxes.

    ``edges[col]`` are the ``n_bins + 1`` histogram edges over the column's
    domain; ``mass[col]`` is the traffic weight attributed to each bin plus
    the weight of boxes that left the column unconstrained in
    ``unconstrained[col]``.  Fingerprints with the same edges are directly
    comparable via :meth:`distance`.
    """

    __slots__ = ("_edges", "_mass", "_unconstrained", "_total")

    def __init__(
        self,
        edges: Mapping[str, np.ndarray],
        mass: Mapping[str, np.ndarray],
        unconstrained: Mapping[str, float],
        total_weight: float,
    ) -> None:
        self._edges = {col: np.asarray(e, dtype=float) for col, e in edges.items()}
        self._mass = {col: np.asarray(m, dtype=float) for col, m in mass.items()}
        self._unconstrained = {col: float(unconstrained.get(col, 0.0))
                               for col in self._edges}
        self._total = float(total_weight)
        for col, edge in self._edges.items():
            if edge.ndim != 1 or edge.shape[0] < 2:
                raise ValueError(f"column {col!r} needs at least two edges")
            if self._mass[col].shape[0] != edge.shape[0] - 1:
                raise ValueError(f"column {col!r}: mass/edge length mismatch")

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_boxes(
        cls,
        boxes: Sequence[Box],
        domains: Mapping[str, tuple[float, float]],
        *,
        n_bins: int = 16,
        weights: Sequence[float] | None = None,
    ) -> "WorkloadFingerprint":
        """Fingerprint ``boxes`` over the given per-column ``domains``.

        ``domains`` maps each key column to its ``(low, high)`` value range
        (typically the partition tree's root box); infinite edges are
        clipped.  ``weights`` default to 1 per box — pass the query log's
        coalesced-waiter weights to fingerprint true traffic.
        """
        if n_bins <= 0:
            raise ValueError(f"n_bins must be positive, got {n_bins}")
        if not domains:
            raise ValueError("domains must name at least one column")
        if weights is not None and len(weights) != len(boxes):
            raise ValueError("weights must match boxes one-to-one")
        edges = {
            col: np.linspace(*_clip_domain(low, high), n_bins + 1)
            for col, (low, high) in domains.items()
        }
        fingerprint = cls(
            edges,
            {col: np.zeros(n_bins) for col in edges},
            {col: 0.0 for col in edges},
            0.0,
        )
        fingerprint._accumulate(boxes, weights)
        return fingerprint

    def like(
        self,
        boxes: Sequence[Box],
        weights: Sequence[float] | None = None,
    ) -> "WorkloadFingerprint":
        """A new fingerprint of ``boxes`` binned on *this* one's edges.

        This is how a live window becomes comparable to the build-time
        baseline: identical edges make :meth:`distance` a pure histogram
        divergence with no re-gridding error.
        """
        if weights is not None and len(weights) != len(boxes):
            raise ValueError("weights must match boxes one-to-one")
        window = WorkloadFingerprint(
            self._edges,
            {col: np.zeros(self._edges[col].shape[0] - 1) for col in self._edges},
            {col: 0.0 for col in self._edges},
            0.0,
        )
        window._accumulate(boxes, weights)
        return window

    def _accumulate(
        self, boxes: Sequence[Box], weights: Sequence[float] | None
    ) -> None:
        for index, box in enumerate(boxes):
            weight = 1.0 if weights is None else float(weights[index])
            if weight <= 0.0:
                continue
            constrained = {col: (low, high) for col, low, high in box}
            for col, edge in self._edges.items():
                bounds = constrained.get(col)
                if bounds is None:
                    self._unconstrained[col] += weight
                    continue
                self._mass[col] += weight * _bin_overlap(edge, *bounds)
            self._total += weight

    # -- comparison --------------------------------------------------------

    @property
    def columns(self) -> list[str]:
        """Fingerprinted column names, sorted."""
        return sorted(self._edges)

    @property
    def total_weight(self) -> float:
        """Total traffic weight accumulated."""
        return self._total

    def distance(self, other: "WorkloadFingerprint") -> float:
        """Mean per-column total-variation distance to ``other`` (0..1).

        Both fingerprints must share edges (build one with :meth:`like`).
        An empty fingerprint on either side scores 0 — no traffic is no
        evidence of drift.
        """
        if self.columns != other.columns:
            raise ValueError(
                f"fingerprints cover different columns: "
                f"{self.columns} vs {other.columns}"
            )
        if self._total <= 0.0 or other._total <= 0.0:
            return 0.0
        distances = []
        for col in self.columns:
            if not np.array_equal(self._edges[col], other._edges[col]):
                raise ValueError(f"column {col!r}: edge grids differ")
            mine = np.append(self._mass[col], self._unconstrained[col])
            theirs = np.append(other._mass[col], other._unconstrained[col])
            mine_sum, theirs_sum = mine.sum(), theirs.sum()
            if mine_sum <= 0.0 or theirs_sum <= 0.0:
                distances.append(0.0 if mine_sum == theirs_sum else 1.0)
                continue
            tv = 0.5 * float(np.abs(mine / mine_sum - theirs / theirs_sum).sum())
            distances.append(min(max(tv, 0.0), 1.0))
        return float(np.mean(distances)) if distances else 0.0

    def hot_ranges(
        self, top: int = 3
    ) -> dict[str, list[tuple[float, float, float]]]:
        """Per column, the ``top`` hottest bins as ``(low, high, share)``.

        ``share`` is the bin's fraction of the column's constrained traffic
        mass; zero-mass bins are omitted.  This is the per-column summary a
        repartitioner (or an operator) reads to see *where* traffic moved.
        """
        result: dict[str, list[tuple[float, float, float]]] = {}
        for col in self.columns:
            mass = self._mass[col]
            total = float(mass.sum())
            if total <= 0.0:
                result[col] = []
                continue
            order = np.argsort(mass)[::-1][:top]
            edge = self._edges[col]
            result[col] = [
                (float(edge[i]), float(edge[i + 1]), float(mass[i] / total))
                for i in order
                if mass[i] > 0.0
            ]
        return result

    # -- persistence -------------------------------------------------------

    def to_arrays(self) -> tuple[dict, dict[str, np.ndarray]]:
        """``(header, arrays)`` for npz persistence next to the synopsis."""
        header = {
            "kind": "workload_fingerprint",
            "columns": self.columns,
            "unconstrained": dict(self._unconstrained),
            "total_weight": self._total,
        }
        arrays: dict[str, np.ndarray] = {}
        for col in self.columns:
            arrays[f"fingerprint/edges/{col}"] = self._edges[col]
            arrays[f"fingerprint/mass/{col}"] = self._mass[col]
        return header, arrays

    @classmethod
    def from_arrays(
        cls, header: Mapping[str, object], arrays: Mapping[str, np.ndarray]
    ) -> "WorkloadFingerprint":
        """Rebuild a fingerprint persisted by :meth:`to_arrays`."""
        if header.get("kind") != "workload_fingerprint":
            raise ValueError(f"not a workload fingerprint header: {header!r}")
        columns = list(header["columns"])  # type: ignore[call-overload]
        unconstrained = dict(header["unconstrained"])  # type: ignore[call-overload]
        return cls(
            {col: arrays[f"fingerprint/edges/{col}"] for col in columns},
            {col: arrays[f"fingerprint/mass/{col}"] for col in columns},
            {col: float(unconstrained.get(col, 0.0)) for col in columns},
            float(header["total_weight"]),  # type: ignore[arg-type]
        )

    def as_dict(self) -> dict:
        """A JSON-ready summary (edges, normalized mass, hot ranges)."""
        total = self._total
        per_column = {}
        for col in self.columns:
            mass = self._mass[col]
            per_column[col] = {
                "edges": [float(e) for e in self._edges[col]],
                "mass": [float(m) for m in mass],
                "unconstrained": self._unconstrained[col],
            }
        return {
            "total_weight": total,
            "columns": per_column,
            "hot_ranges": self.hot_ranges(),
        }


def _bin_overlap(edges: np.ndarray, low: float, high: float) -> np.ndarray:
    """Fraction of unit mass a ``[low, high]`` range leaves in each bin.

    Mass is distributed proportionally to overlap length; a point query
    (``low == high``) drops its whole mass in the containing bin.  Ranges
    are clipped to the edge grid, with out-of-domain remainders attributed
    to the boundary bins so shifted traffic still registers.
    """
    n_bins = edges.shape[0] - 1
    mass = np.zeros(n_bins)
    low, high = float(low), float(high)
    low = min(max(low, edges[0]), edges[-1])
    high = min(max(high, edges[0]), edges[-1])
    if high < low:
        low, high = high, low
    if high == low:
        index = min(int(np.searchsorted(edges, low, side="right")) - 1, n_bins - 1)
        mass[max(index, 0)] = 1.0
        return mass
    overlap = np.minimum(edges[1:], high) - np.maximum(edges[:-1], low)
    overlap = np.maximum(overlap, 0.0)
    span = overlap.sum()
    if span <= 0.0:
        return mass
    return overlap / span


@dataclass(frozen=True)
class DriftReport:
    """One synopsis' drift verdict for a mined window."""

    synopsis: str
    score: float
    n_records: int
    weight: float
    hot_ranges: Mapping[str, list[tuple[float, float, float]]]
    recommend_rebuild: bool

    def as_dict(self) -> dict:
        """A JSON-ready view of the report."""
        return {
            "synopsis": self.synopsis,
            "score": self.score,
            "n_records": self.n_records,
            "weight": self.weight,
            "hot_ranges": {
                col: [list(entry) for entry in ranges]
                for col, ranges in self.hot_ranges.items()
            },
            "recommend_rebuild": self.recommend_rebuild,
        }


class WorkloadDriftDetector:
    """Scores live query-log windows against build-time fingerprints.

    ``baselines`` maps synopsis name to its build-time
    :class:`WorkloadFingerprint`.  Each :meth:`observe` call mines the
    query log's retained records (traffic-weighted: coalesced summaries
    count ``1 + coalesced_waiters``), keeps the trailing ``window`` records
    per synopsis, and reports a drift score per baseline.  Scores flow into
    the given :class:`~repro.obs.quality.QualityStore` (and from there into
    the Prometheus exposition); a score at or above ``threshold`` logs a
    rebuild recommendation — policy, not action.
    """

    def __init__(
        self,
        baselines: Mapping[str, WorkloadFingerprint],
        *,
        window: int = 512,
        threshold: float = 0.35,
        quality: QualityStore | None = None,
        hot_top: int = 3,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self._baselines = dict(baselines)
        self._window = window
        self._threshold = threshold
        self._quality = quality
        self._hot_top = hot_top

    @property
    def baselines(self) -> dict[str, WorkloadFingerprint]:
        """The build-time fingerprints keyed by synopsis name."""
        return dict(self._baselines)

    def observe(self, query_log: "QueryLog") -> dict[str, DriftReport]:
        """Mine the log and score each baselined synopsis' recent traffic."""
        mined: dict[str, tuple[list[Box], list[float]]] = {}
        for record, weight in query_log.weighted_records():
            name = record.synopsis
            if name not in self._baselines:
                continue
            if record.outcome not in _MINED_OUTCOMES:
                continue
            boxes, box_weights = mined.setdefault(name, ([], []))
            boxes.append(record.predicate_box)
            box_weights.append(float(weight))

        reports: dict[str, DriftReport] = {}
        for name, baseline in self._baselines.items():
            boxes, box_weights = mined.get(name, ([], []))
            boxes = boxes[-self._window:]
            box_weights = box_weights[-self._window:]
            if boxes:
                window_fp = baseline.like(boxes, box_weights)
                score = baseline.distance(window_fp)
                hot = window_fp.hot_ranges(self._hot_top)
                weight = window_fp.total_weight
            else:
                score, hot, weight = 0.0, {}, 0.0
            recommend = bool(boxes) and score >= self._threshold
            report = DriftReport(
                synopsis=name,
                score=score,
                n_records=len(boxes),
                weight=weight,
                hot_ranges=hot,
                recommend_rebuild=recommend,
            )
            reports[name] = report
            if self._quality is not None:
                self._quality.scorecard(name).set_drift_score(score)
            if recommend:
                logger.warning(
                    "workload drift on synopsis %r: score %.3f >= %.3f over "
                    "%d records (weight %.0f); recommend rebuild/repartition "
                    "(not auto-executed). hot ranges: %s",
                    name,
                    score,
                    self._threshold,
                    len(boxes),
                    weight,
                    {col: ranges[:1] for col, ranges in hot.items()},
                )
        return reports
